//! `crashtest` — the durability fault-injection harness.
//!
//! Runs a deterministic mixed retrieve/update/checkpoint workload on a
//! WAL-attached engine over a [`FaultyDisk`], kills the data disk at a
//! randomized injected write (clean drop or torn page), recovers the
//! surviving store from the log, and verifies every live page
//! byte-identically against an *oracle*: the identical run allowed to
//! finish the failing write, then flushed — the exact state the crashed
//! run would have reached. Recovery is then run a second time to prove
//! redo idempotence.
//!
//! ```text
//! cargo run -p cor-bench --release --bin crashtest [--points N]
//!     [--seed S]    workload + sampling seed (default 42)
//!     [--points N]  injected crash points (default 100)
//!     [--smoke]     fixed seed, 6 crash points — the CI gate
//!     [--logical]   logical verification through the lifecycle API:
//!                   crash points rotate over all four strategy backends
//!                   (standard, clustered, levels, procedural), each
//!                   crash is recovered by `EngineBuilder::open_on`, and
//!                   the reopened engine's *query answers* and
//!                   IoStats-visible structure are checked against a
//!                   fail-stop oracle's — not just page bytes
//! ```
//!
//! A report lands in `results/crashtest/report.{txt,json}` (logical mode:
//! `report-logical.{txt,json}`); exit status is non-zero if any crash
//! point fails verification.

use complexobj::procedural::ProcCaching;
use complexobj::{CacheConfig, ClusterAssignment, Query, RetAttr, RetrieveQuery, Strategy};
use cor_obs::flight::{self, FlightKind};
use cor_obs::FlightEvent;
use cor_pagestore::{
    AioConfig, AioEngine, DiskError, DiskManager, FaultMode, FaultyDisk, IoStats, MemDisk, PageId,
    TicketStatus, PAGE_SIZE,
};
use cor_relational::Oid;
use cor_wal::{recover, FsyncPolicy, MemLogStore, RecoveryStats, Wal, WalConfig};
use cor_workload::{
    generate, generate_matrix, generate_sequence, rng_for, Engine, EngineSpec, GeneratedDb, Params,
    SeedStream, ENGINE_CATALOG_VERSION,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Checkpoint every this many queries, so crash points land before,
/// between, and after checkpoints (exercising DPT redo horizons and
/// segment GC).
const CHECKPOINT_EVERY: usize = 16;

fn params(seed: u64) -> Params {
    Params {
        parent_card: 150,
        num_top: 5,
        sequence_len: 60,
        buffer_pages: 12,
        size_cache: 20,
        pr_update: 0.4,
        seed,
        ..Params::paper_default()
    }
}

struct Rig {
    faulty: Arc<FaultyDisk<Arc<MemDisk>>>,
    store: Arc<MemLogStore>,
    engine: Engine,
}

fn build_rig(generated: &GeneratedDb, p: &Params) -> Rig {
    let disk = Arc::new(MemDisk::new());
    let faulty = Arc::new(FaultyDisk::new(disk));
    let store = Arc::new(MemLogStore::new());
    let wal = Arc::new(Wal::new(
        store.clone(),
        WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 64 * 1024,
        },
    ));
    let engine = Engine::open_durable(
        &generated.spec,
        Engine::builder()
            .pool_pages(p.buffer_pages)
            .cache(CacheConfig {
                capacity: p.size_cache,
                ..CacheConfig::default()
            })
            .disk(faulty.clone())
            .wal(wal),
    )
    .expect("durable engine builds on a fresh store");
    Rig {
        faulty,
        store,
        engine,
    }
}

thread_local! {
    static IN_WORKLOAD: Cell<bool> = const { Cell::new(false) };
}

/// Install a panic hook that stays silent for panics raised inside
/// [`run_workload`] and delegates to the default hook everywhere else.
/// Access-layer scan iterators `.expect()` their pool reads, so a disk
/// killed mid-query surfaces as a panic rather than an `Err` — for this
/// harness that panic *is* the simulated process death and should not
/// spam a backtrace per crash point.
fn install_quiet_hook() {
    let default = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if !IN_WORKLOAD.with(|f| f.get()) {
            default(info);
        }
    }));
}

/// Run the workload until it finishes or the disk dies. Returns how many
/// queries completed. A query that panics (dead disk reached through an
/// infallible scan path) counts the same as one that returns `Err`: the
/// run stops there. The `.expect` sites fire on an already-returned
/// `Result`, after page guards are dropped, so the pool remains usable —
/// the oracle still flushes after its single injected failure.
fn run_workload(engine: &Engine, sequence: &[Query], strategy: Strategy) -> usize {
    IN_WORKLOAD.with(|f| f.set(true));
    let mut completed = sequence.len();
    for (i, q) in sequence.iter().enumerate() {
        let ok = panic::catch_unwind(AssertUnwindSafe(|| match q {
            Query::Retrieve(r) => engine.retrieve(strategy, r).is_ok(),
            Query::Update(u) => engine.update(u).is_ok(),
        }))
        .unwrap_or(false);
        if !ok {
            completed = i;
            break;
        }
        if (i + 1) % CHECKPOINT_EVERY == 0 && engine.checkpoint().is_err() {
            completed = i + 1;
            break;
        }
    }
    IN_WORKLOAD.with(|f| f.set(false));
    completed
}

struct PointResult {
    nth_write: u64,
    mode: &'static str,
    queries_done: usize,
    stats: RecoveryStats,
    pages_compared: u32,
    pages_excluded: usize,
    failures: Vec<String>,
    flight: Vec<FlightEvent>,
}

/// How many trailing flight events each crash point keeps as its black
/// box in the report.
const FLIGHT_TAIL: usize = 12;

fn mode_tag(mode_name: &str) -> u64 {
    u64::from(mode_name == "torn-page")
}

/// The black box for the point just run: the journal tail since the
/// `PointMark` stamped at its start (everything, ring permitting, that
/// the engines did around the injected fault), capped at [`FLIGHT_TAIL`]
/// most recent events.
fn point_flight_tail(point: u64) -> Vec<FlightEvent> {
    let events = flight::snapshot();
    let start = events
        .iter()
        .rposition(|e| e.kind == FlightKind::PointMark && e.a == point)
        .map(|i| i + 1)
        .unwrap_or(0);
    let tail = &events[start..];
    tail[tail.len().saturating_sub(FLIGHT_TAIL)..].to_vec()
}

fn json_flight(events: &[FlightEvent]) -> String {
    events
        .iter()
        .map(|e| {
            format!(
                "{{\"kind\":\"{}\",\"t_ns\":{},\"a\":{},\"b\":{},\"c\":{}}}",
                e.kind.name(),
                e.t_ns,
                e.a,
                e.b,
                e.c
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Attach the point's flight tail; an empty black box at an injected
/// fault is itself a failure (the recorder must witness every crash).
fn attach_flight(point: u64, failures: &mut Vec<String>) -> Vec<FlightEvent> {
    let tail = point_flight_tail(point);
    if tail.is_empty() {
        failures.push("flight recorder empty at injected fault".into());
    }
    tail
}

fn run_point(
    generated: &GeneratedDb,
    p: &Params,
    sequence: &[Query],
    nth: u64,
    mode: FaultMode,
    mode_name: &'static str,
) -> PointResult {
    // Oracle: the identical run, but the injected write *lands* before
    // the op fails (FailStop), so flushing afterwards materializes the
    // exact state the log describes at the crash instant.
    let oracle = build_rig(generated, p);
    oracle.faulty.arm(nth, FaultMode::FailStop);
    let oracle_done = run_workload(&oracle.engine, sequence, Strategy::DfsCache);
    let freed = oracle.engine.pool().free_page_ids();
    oracle
        .engine
        .pool()
        .flush_all()
        .expect("oracle flush after disarmed fail-stop");
    let oracle_disk: Arc<MemDisk> = oracle.faulty.inner().clone();

    // Faulty run: same ops, same nth write, but the disk dies there.
    let rig = build_rig(generated, p);
    rig.faulty.arm(nth, mode);
    flight::record(FlightKind::FaultInjected, nth, mode_tag(mode_name), 0);
    let queries_done = run_workload(&rig.engine, sequence, Strategy::DfsCache);
    let Rig {
        faulty,
        store,
        engine,
    } = rig;
    drop(engine); // dirty frames are lost with the "process"
    store.crash(); // and so is the log's unsynced tail (none: fsync Always)

    let mut failures = Vec::new();
    if queries_done != oracle_done {
        failures.push(format!(
            "divergence: faulty run served {queries_done} queries, oracle {oracle_done}"
        ));
    }

    let disk: &Arc<MemDisk> = faulty.inner();
    let stats = match recover(disk, store.as_ref()) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("recovery failed: {e}"));
            RecoveryStats::default()
        }
    };

    let mut pages_compared = 0;
    if failures.is_empty() {
        if disk.num_pages() != oracle_disk.num_pages() {
            failures.push(format!(
                "page count: recovered {} vs oracle {}",
                disk.num_pages(),
                oracle_disk.num_pages()
            ));
        }
        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        for pid in 0..disk.num_pages().min(oracle_disk.num_pages()) {
            // Pages on the free list at the crash instant hold garbage by
            // definition; every live page must match the oracle exactly.
            if freed.contains(&pid) {
                continue;
            }
            disk.read_page(pid, &mut a)
                .expect("recovered page readable");
            oracle_disk
                .read_page(pid, &mut b)
                .expect("oracle page readable");
            if a != b {
                failures.push(format!("page {pid} differs from oracle"));
            } else {
                pages_compared += 1;
            }
        }

        // Redo idempotence: a second recovery pass must be a no-op.
        let before: Vec<[u8; PAGE_SIZE]> = (0..disk.num_pages())
            .map(|pid| {
                let mut buf = [0u8; PAGE_SIZE];
                disk.read_page(pid, &mut buf).unwrap();
                buf
            })
            .collect();
        match recover(disk, store.as_ref()) {
            Ok(_) => {
                for (pid, prev) in before.iter().enumerate() {
                    disk.read_page(pid as u32, &mut a).unwrap();
                    if &a != prev {
                        failures.push(format!("double recovery changed page {pid}"));
                    }
                }
            }
            Err(e) => failures.push(format!("second recovery failed: {e}")),
        }
    }

    PointResult {
        nth_write: nth,
        mode: mode_name,
        queries_done,
        stats,
        pages_compared,
        pages_excluded: freed.len(),
        failures,
        flight: Vec::new(),
    }
}

// ===================== logical verification mode =====================

/// The four strategy backends the logical leg rotates over, with the
/// strategy used to drive each one's workload.
const BACKENDS: [(BackendKind, &str, Strategy); 4] = [
    (BackendKind::Standard, "standard", Strategy::DfsCache),
    (BackendKind::Clustered, "clustered", Strategy::DfsClust),
    (BackendKind::Levels, "levels", Strategy::Dfs),
    (BackendKind::Proc, "proc", Strategy::Dfs),
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum BackendKind {
    Standard,
    Clustered,
    Levels,
    Proc,
}

fn logical_spec(kind: BackendKind, p: &Params, generated: &GeneratedDb) -> EngineSpec {
    match kind {
        BackendKind::Standard => EngineSpec::Standard(generated.spec.clone()),
        BackendKind::Clustered => {
            let parents: Vec<(u64, Vec<Oid>)> = generated
                .spec
                .parents
                .iter()
                .map(|o| (o.key, o.children.clone()))
                .collect();
            let mut rng = rng_for(p.seed, SeedStream::Cluster);
            EngineSpec::Clustered(
                generated.spec.clone(),
                ClusterAssignment::random(&parents, &mut rng),
            )
        }
        BackendKind::Levels => {
            EngineSpec::Levels(vec![generated.spec.clone(), generated.spec.clone()])
        }
        BackendKind::Proc => EngineSpec::Procedural(
            generate_matrix(p).proc_spec,
            ProcCaching::OutsideValues(p.size_cache),
        ),
    }
}

/// Build a lifecycle engine (`EngineBuilder::create_on`) over a faulty
/// mem-disk — unlike [`build_rig`], the store gets a persistent catalog
/// and is reopenable by `open_on` with no spec.
fn build_logical_rig(spec: &EngineSpec, p: &Params) -> Rig {
    let disk = Arc::new(MemDisk::new());
    let faulty = Arc::new(FaultyDisk::new(disk));
    let store = Arc::new(MemLogStore::new());
    let engine = Engine::builder()
        .pool_pages(p.buffer_pages)
        .cache(CacheConfig {
            capacity: p.size_cache,
            ..CacheConfig::default()
        })
        .wal_config(WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 64 * 1024,
        })
        .create_on(faulty.clone(), store.clone(), spec)
        .expect("lifecycle create on a fresh store");
    Rig {
        faulty,
        store,
        engine,
    }
}

/// The fixed verification suite: range retrieves over several windows and
/// both ret attributes, answers canonicalized by sorting. Returns one
/// string per probe so mismatches name the query that diverged.
fn probe_answers(engine: &Engine, strategy: Strategy) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (lo, hi) in [(0u64, 9u64), (40, 59), (0, 149)] {
        for attr in [RetAttr::Ret1, RetAttr::Ret2] {
            let q = RetrieveQuery { lo, hi, attr };
            let mut v = engine
                .retrieve(strategy, &q)
                .map_err(|e| format!("retrieve {lo}..{hi} {attr:?}: {e}"))?
                .values;
            v.sort_unstable();
            out.push(format!("{lo}-{hi}-{attr:?}:{v:?}"));
        }
    }
    Ok(out)
}

/// Deep structural snapshot for OID-backed engines: the encoded catalog
/// payload of every level (file roots, allocator counters, schemas and
/// reconciled cache directories). Empty for procedural engines, whose
/// structure is covered by answers + sequence I/O + cache counters.
fn structural_snapshot(engine: &Engine) -> Vec<Vec<u8>> {
    engine
        .levels()
        .iter()
        .map(|db| {
            let mut e = complexobj::persist::Enc::default();
            db.save_state().encode(&mut e);
            e.0
        })
        .collect()
}

struct LogicalResult {
    backend: &'static str,
    nth_write: u64,
    mode: &'static str,
    queries_done: usize,
    stats: RecoveryStats,
    probes: usize,
    failures: Vec<String>,
    flight: Vec<FlightEvent>,
}

fn run_logical_point(
    backend: (BackendKind, &'static str, Strategy),
    p: &Params,
    generated: &GeneratedDb,
    sequence: &[Query],
    verify_sequence: &[Query],
    fault: (u64, FaultMode, &'static str),
) -> LogicalResult {
    let (kind, backend_name, strategy) = backend;
    let (nth, mode, mode_name) = fault;
    let spec = logical_spec(kind, p, generated);

    // Oracle: identical run, the injected write lands (fail-stop), then
    // everything is flushed — the state the log describes at the crash.
    // It is reopened through the very same lifecycle door as the crashed
    // run, so both sides perform identical open-time reconciliation.
    let oracle = build_logical_rig(&spec, p);
    oracle.faulty.arm(nth, FaultMode::FailStop);
    let oracle_done = run_workload(&oracle.engine, sequence, strategy);
    oracle
        .engine
        .pool()
        .flush_all()
        .expect("oracle flush after disarmed fail-stop");
    let oracle_disk: Arc<MemDisk> = oracle.faulty.inner().clone();
    let oracle_store = oracle.store.clone();
    drop(oracle.engine);

    // Crashed run: same ops, same nth write, disk dies there.
    let rig = build_logical_rig(&spec, p);
    rig.faulty.arm(nth, mode);
    flight::record(FlightKind::FaultInjected, nth, mode_tag(mode_name), 0);
    let queries_done = run_workload(&rig.engine, sequence, strategy);
    let Rig {
        faulty,
        store,
        engine,
    } = rig;
    drop(engine); // dirty frames die with the "process"
    store.crash(); // unsynced log tail too (none: fsync Always)
    let disk: Arc<MemDisk> = faulty.inner().clone();

    let mut failures = Vec::new();
    if queries_done != oracle_done {
        failures.push(format!(
            "divergence: crashed run served {queries_done} queries, oracle {oracle_done}"
        ));
    }

    // Recovery stats for the report; open_on replays again (idempotent).
    let stats = match recover(disk.as_ref(), store.as_ref()) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("recovery failed: {e}"));
            RecoveryStats::default()
        }
    };

    let mut probes = 0;
    if failures.is_empty() {
        let reopen = |d: Arc<MemDisk>, s: Arc<MemLogStore>| {
            Engine::builder()
                .open_on(d, s)
                .map_err(|e| format!("open failed: {e}"))
        };
        match (reopen(disk, store), reopen(oracle_disk, oracle_store)) {
            (Ok(recovered), Ok(oracle_eng)) => {
                // 1. Retrieval answers.
                match (
                    probe_answers(&recovered, strategy),
                    probe_answers(&oracle_eng, strategy),
                ) {
                    (Ok(a), Ok(b)) => {
                        probes = a.len();
                        for (x, y) in a.iter().zip(&b) {
                            if x != y {
                                failures.push(format!("answer diverged: {x} vs oracle {y}"));
                            }
                        }
                    }
                    (Err(e), _) => failures.push(format!("recovered probe: {e}")),
                    (_, Err(e)) => failures.push(format!("oracle probe: {e}")),
                }
                // 2. A measured sequence: logical results AND the paper's
                // cost metric must match (identical pages + identical
                // open ⇒ identical I/O), both sides run identically.
                match (
                    recovered.run_sequence(strategy, verify_sequence),
                    oracle_eng.run_sequence(strategy, verify_sequence),
                ) {
                    (Ok(a), Ok(b)) => {
                        if (
                            a.total_io,
                            a.par_io,
                            a.child_io,
                            a.update_io,
                            a.values_returned,
                        ) != (
                            b.total_io,
                            b.par_io,
                            b.child_io,
                            b.update_io,
                            b.values_returned,
                        ) {
                            failures.push(format!(
                                "sequence stats diverged: io {}/{}/{}/{} values {} vs oracle io {}/{}/{}/{} values {}",
                                a.total_io, a.par_io, a.child_io, a.update_io, a.values_returned,
                                b.total_io, b.par_io, b.child_io, b.update_io, b.values_returned,
                            ));
                        }
                        probes += 1;
                    }
                    (Err(e), _) => failures.push(format!("recovered sequence: {e}")),
                    (_, Err(e)) => failures.push(format!("oracle sequence: {e}")),
                }
                // 3. Structural state (OID backends): encoded snapshots —
                // file roots, allocators, schemas, cache directories —
                // must be byte-equal after the identical verify load.
                let a = structural_snapshot(&recovered);
                let b = structural_snapshot(&oracle_eng);
                if a != b {
                    failures.push("structural snapshot diverged from oracle".into());
                } else {
                    probes += a.len();
                }
            }
            (Err(e), _) => failures.push(format!("recovered store: {e}")),
            (_, Err(e)) => failures.push(format!("oracle store: {e}")),
        }
    }

    LogicalResult {
        backend: backend_name,
        nth_write: nth,
        mode: mode_name,
        queries_done,
        stats,
        probes,
        failures,
        flight: Vec::new(),
    }
}

fn run_logical(seed: u64, points: usize) -> bool {
    let p = params(seed);
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    // The verify sequence reuses a deterministic prefix of the workload:
    // retrieves and updates both sides apply identically post-recovery.
    let verify_sequence: Vec<Query> = sequence.iter().take(12).cloned().collect();

    // Per-backend write budgets from a dry run each.
    let mut budgets = [0u64; 4];
    for (i, (kind, name, strategy)) in BACKENDS.iter().enumerate() {
        let spec = logical_spec(*kind, &p, &generated);
        let dry = build_logical_rig(&spec, &p);
        let base = dry.faulty.writes_observed();
        let done = run_workload(&dry.engine, &sequence, *strategy);
        assert_eq!(done, sequence.len(), "{name}: dry run must complete");
        // Budget stops at the end of the workload — the final flush is
        // not part of it, so the oracle's fail-stop always fires while
        // queries are still running and its flush stays fault-free.
        budgets[i] = dry.faulty.writes_observed() - base;
        assert!(budgets[i] > 0, "{name}: workload issues no writes");
    }

    eprintln!(
        "crashtest --logical: seed {seed}, {} queries, {points} crash points over {} backends \
         (write budgets: standard={} clustered={} levels={} proc={})",
        sequence.len(),
        BACKENDS.len(),
        budgets[0],
        budgets[1],
        budgets[2],
        budgets[3],
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_47E5_7000_0002);
    let mut results: Vec<LogicalResult> = Vec::with_capacity(points);
    for i in 0..points {
        let b = i % BACKENDS.len();
        let nth = rng.random_range(1..=budgets[b]);
        let (mode, mode_name) = if i % 2 == 0 {
            (FaultMode::CrashDrop, "crash-drop")
        } else {
            (
                FaultMode::CrashTorn {
                    keep: rng.random_range(1..PAGE_SIZE),
                },
                "torn-page",
            )
        };
        flight::record(FlightKind::PointMark, i as u64, 0, 0);
        let mut r = run_logical_point(
            BACKENDS[b],
            &p,
            &generated,
            &sequence,
            &verify_sequence,
            (nth, mode, mode_name),
        );
        r.flight = attach_flight(i as u64, &mut r.failures);
        if !r.failures.is_empty() {
            eprintln!(
                "  point {i}: {} write {} ({}) FAILED: {}",
                r.backend,
                r.nth_write,
                r.mode,
                r.failures.join("; ")
            );
        }
        results.push(r);
    }

    let failed: Vec<&LogicalResult> = results.iter().filter(|r| !r.failures.is_empty()).collect();
    let mut txt = String::new();
    txt.push_str(&format!(
        "crashtest --logical  seed={seed}  queries={}  catalog_version={ENGINE_CATALOG_VERSION}\n\
         points={}  passed={}  failed={}\n",
        sequence.len(),
        results.len(),
        results.len() - failed.len(),
        failed.len(),
    ));
    for (kind, name, _) in &BACKENDS {
        let of_kind: Vec<&LogicalResult> = results.iter().filter(|r| r.backend == *name).collect();
        let ok = of_kind.iter().filter(|r| r.failures.is_empty()).count();
        txt.push_str(&format!("  {name}: {ok}/{} ok\n", of_kind.len()));
        let _ = kind;
    }
    txt.push_str("\npoint  backend    write  mode        queries  redo  probes  status\n");
    for (i, r) in results.iter().enumerate() {
        txt.push_str(&format!(
            "{:>5}  {:<9}  {:>5}  {:<10}  {:>7}  {:>4}  {:>6}  {}\n",
            i,
            r.backend,
            r.nth_write,
            r.mode,
            r.queries_done,
            r.stats.images_applied + r.stats.deltas_applied,
            r.probes,
            if r.failures.is_empty() { "ok" } else { "FAIL" },
        ));
    }

    let json_points: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"backend\":\"{}\",\"nth_write\":{},\"mode\":\"{}\",\"queries_done\":{},\
                 \"records_scanned\":{},\"probes\":{},\"failures\":[{}],\"flight\":[{}]}}",
                r.backend,
                r.nth_write,
                r.mode,
                r.queries_done,
                r.stats.records_scanned,
                r.probes,
                r.failures
                    .iter()
                    .map(|f| format!("\"{}\"", f.replace('"', "'")))
                    .collect::<Vec<_>>()
                    .join(","),
                json_flight(&r.flight),
            )
        })
        .collect();
    let json = format!(
        "{{\"schema_version\":1,\"catalog_version\":{ENGINE_CATALOG_VERSION},\"mode\":\"logical\",\
         \"seed\":{seed},\"queries\":{},\"points\":{},\"passed\":{},\"failed\":{},\
         \"points_detail\":[{}]}}\n",
        sequence.len(),
        results.len(),
        results.len() - failed.len(),
        failed.len(),
        json_points.join(","),
    );

    std::fs::create_dir_all("results/crashtest").expect("results dir");
    std::fs::write("results/crashtest/report-logical.txt", &txt).expect("write txt report");
    std::fs::write("results/crashtest/report-logical.json", &json).expect("write json report");
    std::fs::write("results/crashtest/flight-logical.json", flight::dump_json())
        .expect("write flight dump");
    print!("{txt}");
    eprintln!("report: results/crashtest/report-logical.{{txt,json}}");
    failed.is_empty()
}

/// Pre-flight for the async submission path over a faulty store: a read
/// fault that fires while a batch is in flight must poison the ticket —
/// every harvest surface yields the error, and a failed page's buffer is
/// never touched with partial bytes — while the batch's healthy runs
/// still deliver exact page images. After a crash fault kills the disk,
/// every subsequent submission must come back `Crashed`.
///
/// `FaultyDisk` leaves [`DiskManager::raw_read_fd`] at `None`, so these
/// submissions always execute on the portable thread-pool backend and
/// tick the same per-page fault ordinals as the synchronous path.
fn aio_fault_preflight() -> Vec<String> {
    let mut bad = Vec::new();
    let faulty = Arc::new(FaultyDisk::new(Arc::new(MemDisk::new())));
    let mut images: Vec<(PageId, [u8; PAGE_SIZE])> = Vec::new();
    for i in 0..12u8 {
        let pid = faulty.allocate_page().expect("preflight allocate");
        let page = [i ^ 0x5A; PAGE_SIZE];
        faulty.write_page(pid, &page).expect("preflight write");
        images.push((pid, page));
    }
    let stats = Arc::new(IoStats::default());
    let engine = AioEngine::new(
        faulty.clone() as Arc<dyn DiskManager>,
        Arc::clone(&stats),
        AioConfig::with_depth(4),
    );

    // Three separated runs in one batch. FaultyDisk reads page-at-a-time
    // even under read_pages, so the 5th read of the batch — wherever the
    // pool's worker interleaving places it — fires mid-flight.
    let ids: Vec<PageId> = images
        .iter()
        .map(|(p, _)| *p)
        .filter(|p| *p != images[4].0 && *p != images[8].0)
        .collect();
    faulty.arm(5, FaultMode::ShortRead);
    let ticket = engine.submit(&ids);
    if ticket.wait().is_ok() {
        bad.push("aio preflight: in-flight read fault did not poison the ticket".into());
    }
    if ticket.poll() != TicketStatus::Poisoned {
        bad.push(format!(
            "aio preflight: poll reports {:?} on a failed batch",
            ticket.poll()
        ));
    }
    if faulty.faults_fired() != 1 {
        bad.push(format!(
            "aio preflight: expected exactly one injected fault, saw {}",
            faulty.faults_fired()
        ));
    }
    let mut failed_pages = 0usize;
    for c in ticket.into_completions() {
        let mut buf = [0xEEu8; PAGE_SIZE];
        match c.wait_into(&mut buf) {
            Ok(()) => {
                let want = images
                    .iter()
                    .find(|(p, _)| *p == c.page_id())
                    .map(|(_, img)| img)
                    .expect("completion for a requested page");
                if buf != *want {
                    bad.push(format!(
                        "aio preflight: page {} harvested with wrong bytes",
                        c.page_id()
                    ));
                }
            }
            Err(_) => {
                failed_pages += 1;
                if buf != [0xEEu8; PAGE_SIZE] {
                    bad.push(format!(
                        "aio preflight: failed completion for page {} left partial bytes",
                        c.page_id()
                    ));
                }
            }
        }
    }
    if failed_pages == 0 {
        bad.push("aio preflight: no per-page completion reported the fault".into());
    }

    // Kill the store (CrashDrop on the next write), then submit again:
    // the dead disk must fail every run with `Crashed`.
    faulty.arm(1, FaultMode::CrashDrop);
    let garbage = [0u8; PAGE_SIZE];
    if faulty.write_page(images[0].0, &garbage).is_ok() {
        bad.push("aio preflight: armed CrashDrop write unexpectedly succeeded".into());
    }
    let ticket = engine.submit(&ids);
    match ticket.wait() {
        Err(DiskError::Crashed) => {}
        other => bad.push(format!(
            "aio preflight: submission on a dead disk returned {other:?}, \
             expected Err(Crashed)"
        )),
    }
    if ticket.poll() != TicketStatus::Poisoned {
        bad.push("aio preflight: dead-disk ticket is not poisoned".into());
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let logical = args.iter().any(|a| a == "--logical");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let seed = if smoke {
        42
    } else {
        flag("--seed").unwrap_or(42)
    };
    let points = if smoke {
        6
    } else {
        flag("--points").unwrap_or(100) as usize
    };

    // Order matters: the flight dump hook must sit *below* the quiet
    // hook, so simulated process deaths inside the workload stay silent
    // (the quiet hook swallows them before the chain reaches the dump)
    // while any real harness panic still dumps the black box.
    flight::install_panic_dump();
    flight::enable(true);
    install_quiet_hook();
    let preflight = aio_fault_preflight();
    if !preflight.is_empty() {
        for f in &preflight {
            eprintln!("crashtest FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("crashtest: aio fault preflight OK (poisoned tickets, no partial bytes)");
    if logical {
        if !run_logical(seed, points) {
            std::process::exit(1);
        }
        return;
    }
    let p = params(seed);
    let generated = generate(&p);
    let sequence = generate_sequence(&p);

    // Dry run: how many data-page writes does the full workload issue?
    // Crash points are sampled from that budget (1-based, post-build).
    let dry = build_rig(&generated, &p);
    let base = dry.faulty.writes_observed();
    let done = run_workload(&dry.engine, &sequence, Strategy::DfsCache);
    assert_eq!(done, sequence.len(), "dry run must complete");
    // Budget stops at the end of the workload (no final flush) so the
    // oracle's fail-stop always fires while queries are still running.
    let budget = dry.faulty.writes_observed() - base;
    assert!(budget > 0, "workload issues no writes — nothing to test");
    drop(dry);

    eprintln!(
        "crashtest: seed {seed}, {} queries, {budget} workload writes, {points} crash points",
        sequence.len()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_47E5_7000_0001);
    let mut results: Vec<PointResult> = Vec::with_capacity(points);
    for i in 0..points {
        let nth = rng.random_range(1..=budget);
        // Alternate clean write loss with torn pages (a random prefix of
        // the new bytes lands over the old page).
        let (mode, name) = if i % 2 == 0 {
            (FaultMode::CrashDrop, "crash-drop")
        } else {
            (
                FaultMode::CrashTorn {
                    keep: rng.random_range(1..PAGE_SIZE),
                },
                "torn-page",
            )
        };
        flight::record(FlightKind::PointMark, i as u64, 0, 0);
        let mut r = run_point(&generated, &p, &sequence, nth, mode, name);
        r.flight = attach_flight(i as u64, &mut r.failures);
        if !r.failures.is_empty() {
            eprintln!(
                "  point {i}: write {} ({}) FAILED: {}",
                r.nth_write,
                r.mode,
                r.failures.join("; ")
            );
        }
        results.push(r);
    }

    let failed: Vec<&PointResult> = results.iter().filter(|r| !r.failures.is_empty()).collect();
    let total_redo: u64 = results
        .iter()
        .map(|r| r.stats.images_applied + r.stats.deltas_applied)
        .sum();
    let total_skip: u64 = results.iter().map(|r| r.stats.deltas_skipped).sum();
    let torn_points = results.iter().filter(|r| r.mode == "torn-page").count();
    let with_ckpt = results
        .iter()
        .filter(|r| r.stats.checkpoint_lsn.is_some())
        .count();

    let mut txt = String::new();
    txt.push_str(&format!(
        "crashtest  seed={seed}  queries={}  workload_writes={budget}\n\
         points={}  crash_drop={}  torn_page={torn_points}\n\
         passed={}  failed={}\n\
         recovered_with_checkpoint={with_ckpt}\n\
         records_redone={total_redo}  deltas_skipped={total_skip}\n",
        sequence.len(),
        results.len(),
        results.len() - torn_points,
        results.len() - failed.len(),
        failed.len(),
    ));
    txt.push_str("\npoint  write  mode        queries  redo  compared  excluded  status\n");
    for (i, r) in results.iter().enumerate() {
        txt.push_str(&format!(
            "{:>5}  {:>5}  {:<10}  {:>7}  {:>4}  {:>8}  {:>8}  {}\n",
            i,
            r.nth_write,
            r.mode,
            r.queries_done,
            r.stats.images_applied + r.stats.deltas_applied,
            r.pages_compared,
            r.pages_excluded,
            if r.failures.is_empty() { "ok" } else { "FAIL" },
        ));
    }

    let json_points: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"nth_write\":{},\"mode\":\"{}\",\"queries_done\":{},\
                 \"records_scanned\":{},\"images_applied\":{},\"deltas_applied\":{},\
                 \"deltas_skipped\":{},\"checkpoint_lsn\":{},\"pages_compared\":{},\
                 \"pages_excluded\":{},\"failures\":[{}],\"flight\":[{}]}}",
                r.nth_write,
                r.mode,
                r.queries_done,
                r.stats.records_scanned,
                r.stats.images_applied,
                r.stats.deltas_applied,
                r.stats.deltas_skipped,
                r.stats
                    .checkpoint_lsn
                    .map_or("null".into(), |l| l.to_string()),
                r.pages_compared,
                r.pages_excluded,
                r.failures
                    .iter()
                    .map(|f| format!("\"{}\"", f.replace('"', "'")))
                    .collect::<Vec<_>>()
                    .join(","),
                json_flight(&r.flight),
            )
        })
        .collect();
    let json = format!(
        "{{\"schema_version\":1,\"seed\":{seed},\"queries\":{},\"workload_writes\":{budget},\
         \"points\":{},\"passed\":{},\"failed\":{},\"points_detail\":[{}]}}\n",
        sequence.len(),
        results.len(),
        results.len() - failed.len(),
        failed.len(),
        json_points.join(","),
    );

    std::fs::create_dir_all("results/crashtest").expect("results dir");
    std::fs::write("results/crashtest/report.txt", &txt).expect("write txt report");
    std::fs::write("results/crashtest/report.json", &json).expect("write json report");
    std::fs::write("results/crashtest/flight.json", flight::dump_json())
        .expect("write flight dump");
    print!("{txt}");
    eprintln!("report: results/crashtest/report.{{txt,json}}");

    if !failed.is_empty() {
        std::process::exit(1);
    }
}
