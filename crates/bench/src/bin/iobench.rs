//! `iobench` — batched vs page-at-a-time I/O, measured end to end.
//!
//! Runs the batched-path strategies (BFS, DFSCLUST, DFSCACHE) over the
//! same generated database twice per backend — once with the default
//! page-at-a-time knobs and once with multi-page fetch + readahead — on
//! both [`MemDisk`](cor_pagestore::MemDisk) (pure pool/CPU path) and
//! [`FileDisk`](cor_pagestore::FileDisk) (positioned preads against a
//! real file), with a cold pool before every query so the I/O path is
//! actually exercised. Reports throughput and latency quantiles per leg
//! and writes the whole comparison to `BENCH_io.json` (repo root).
//!
//! ```text
//! cargo run --release -p cor-bench --bin iobench [--scale F | --full]
//!     [--json FILE]   output path (default BENCH_io.json)
//!     [--batch N]     keys per probe window when batching (default 16)
//!     [--readahead N] pages per scan prefetch window (default 32)
//!     [--smoke]       tiny database + invariant gate, exit 1 on:
//!                     results differing between modes, batched mode
//!                     reading more pages, or any batch counter moving
//!                     with the knobs off (the batch-1 identity)
//! ```
//!
//! Batching is a physical optimisation only: both modes must return the
//! same values and read the same pages (batched mode may read fewer of
//! them twice, never more). `iobench` asserts both on every run.
//!
//! On top of the batched comparison, the file-backed legs of BFS and
//! DFSCLUST are swept across async submission queue depths 1/4/16
//! (`cor-aio`). The sweep gates its own invariants: the depth-1 leg
//! must be byte-identical to the synchronous batched leg — same
//! checksum, reads, and batch counters, with every `aio_*` counter at
//! zero — and deeper queues must return identical results while handing
//! the disk no more submissions than the synchronous path read pages.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use complexobj::{ExecOptions, IoOptions, Query, Strategy};
use cor_bench::BenchConfig;
use cor_pagestore::{
    BatchIoSnapshot, BufferPool, DiskError, DiskManager, FileDisk, PageBuf, PageId,
};
use cor_workload::{
    build_for_strategy_on, fnum, format_table, generate, generate_sequence, Engine, GeneratedDb,
    Params,
};

/// Which disk backs the pool for one leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disk {
    Mem,
    File,
    /// FileDisk plus a fixed per-submission latency (see [`SeekDisk`]).
    FileSeek,
}

impl Disk {
    fn name(self) -> &'static str {
        match self {
            Disk::Mem => "memdisk",
            Disk::File => "filedisk",
            Disk::FileSeek => "filedisk_seek",
        }
    }
}

/// [`FileDisk`] with a fixed latency charged per physical read
/// submission — the seek-plus-rotation cost the paper's I/O counts stand
/// for. A dev box's page cache serves a 2 KB pread in about a
/// microsecond, hiding the device cost that makes submission counts
/// matter; this wrapper restores it, so the batched path's coalescing
/// shows up in wall time the way it would on a device. Writes are not
/// delayed: they happen outside the timed window (build and pre-query
/// flush) and would only slow the benchmark down.
struct SeekDisk {
    inner: FileDisk,
    seek: std::time::Duration,
}

impl DiskManager for SeekDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        std::thread::sleep(self.seek);
        self.inner.read_page(id, buf)
    }

    fn read_pages(&self, ids: &[PageId], bufs: &mut [&mut PageBuf]) -> Result<usize, DiskError> {
        let runs = self.inner.read_pages(ids, bufs)?;
        std::thread::sleep(self.seek * runs as u32);
        Ok(runs)
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        self.inner.write_page(id, buf)
    }

    fn allocate_page(&self) -> Result<PageId, DiskError> {
        self.inner.allocate_page()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn sync(&self) -> Result<(), DiskError> {
        self.inner.sync()
    }
}

/// One (strategy, disk, mode) measurement.
struct Leg {
    /// Name of the pool's active async backend ("sync" at depth 1).
    backend: &'static str,
    retrieves: usize,
    /// Order-insensitive digest of every returned value, for the
    /// results-identical invariant.
    checksum: u64,
    reads: u64,
    batch: BatchIoSnapshot,
    pool_hits: u64,
    pool_misses: u64,
    mean_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    /// Retrieves per second over the measured (in-query) time.
    qps: f64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_leg(
    params: &Params,
    generated: &GeneratedDb,
    strategy: Strategy,
    disk: Disk,
    seek: std::time::Duration,
    opts: &ExecOptions,
    scratch: &mut Vec<PathBuf>,
) -> Leg {
    let builder = BufferPool::builder()
        .capacity(params.buffer_pages)
        .shards(params.shards)
        .queue_depth(opts.io.queue_depth)
        .telemetry(true);
    let builder = match disk {
        Disk::Mem => builder,
        Disk::File | Disk::FileSeek => {
            let path = std::env::temp_dir().join(format!(
                "cor-iobench-{}-{}.pages",
                std::process::id(),
                scratch.len()
            ));
            let _ = std::fs::remove_file(&path);
            let fd = FileDisk::open(&path).expect("scratch page file opens");
            scratch.push(path);
            if disk == Disk::FileSeek {
                builder.disk(Box::new(SeekDisk { inner: fd, seek }))
            } else {
                builder.disk(Box::new(fd))
            }
        }
    };
    let pool = Arc::new(builder.build());
    let db = build_for_strategy_on(pool, params, generated, strategy).expect("database builds");
    let engine = Engine::builder().wrap_database(db).with_options(*opts);
    let stats = engine.pool().stats().clone();
    let io_before = stats.snapshot();
    let batch_before = stats.batch_snapshot();

    let sequence = generate_sequence(params);
    let mut checksum = 0u64;
    let mut retrieves = 0usize;
    let mut lat: Vec<u64> = Vec::new();
    for q in &sequence {
        let Query::Retrieve(r) = q else { continue };
        // Cold pool per query: every leg pays its page faults through
        // the backend under test instead of the warm frame table.
        engine.pool().flush_and_clear().expect("pool flushes");
        let t = Instant::now();
        let out = engine.retrieve(strategy, r).expect("retrieve runs");
        lat.push(t.elapsed().as_nanos() as u64);
        retrieves += 1;
        for v in out.values {
            checksum = checksum.wrapping_add((v as u64) ^ (v as u64).rotate_left(17));
        }
    }

    let reads = stats.snapshot().since(&io_before).reads;
    let batch = stats.batch_snapshot().since(&batch_before);
    let (mut pool_hits, mut pool_misses) = (0, 0);
    for shard in engine.pool().telemetry().into_iter().flatten() {
        pool_hits += shard.hits;
        pool_misses += shard.misses;
    }
    let total_ns: u64 = lat.iter().sum();
    lat.sort_unstable();
    Leg {
        backend: engine.pool().aio_backend().name(),
        retrieves,
        checksum,
        reads,
        batch,
        pool_hits,
        pool_misses,
        mean_ns: total_ns / (retrieves.max(1) as u64),
        p50_ns: quantile(&lat, 0.50),
        p99_ns: quantile(&lat, 0.99),
        qps: if total_ns > 0 {
            retrieves as f64 * 1e9 / total_ns as f64
        } else {
            0.0
        },
    }
}

/// Invariants that hold for every (strategy, disk) pair; violated ones
/// come back as messages.
fn check_pair(strategy: Strategy, disk: Disk, off: &Leg, on: &Leg) -> Vec<String> {
    let ctx = format!("{} on {}", strategy.name(), disk.name());
    let mut bad = Vec::new();
    if off.checksum != on.checksum || off.retrieves != on.retrieves {
        bad.push(format!("{ctx}: batched results differ from unbatched"));
    }
    if off.batch != BatchIoSnapshot::default() {
        bad.push(format!(
            "{ctx}: batch counters moved with the knobs off ({:?})",
            off.batch
        ));
    }
    // The physical claim: batching must shrink disk submissions. Pages
    // outside the batched path cost one submission each; batched pages
    // cost their coalesced runs.
    let on_submissions = on.reads - on.batch.batch_reads.min(on.reads) + on.batch.coalesced_runs;
    if on_submissions > off.reads {
        bad.push(format!(
            "{ctx}: batching issued more disk submissions ({on_submissions} > {})",
            off.reads
        ));
    }
    // Readahead may speculatively read past a range scan's end, but every
    // wasted page must be one that was deliberately prefetched and never
    // demanded — speculation is bounded, never open-ended. The 1% slack
    // covers replacement divergence: admitting a batch in one pass
    // touches the LRU in a different order than page-at-a-time faults,
    // so a tiny pool can re-fault a handful of pages differently.
    let wasted = on.reads.saturating_sub(off.reads);
    let unconsumed = on
        .batch
        .prefetch_issued
        .saturating_sub(on.batch.prefetch_hits);
    let slack = off.reads / 100 + 16;
    if wasted > unconsumed + slack {
        bad.push(format!(
            "{ctx}: {wasted} extra pages read but only {unconsumed} unconsumed \
             prefetches (+{slack} slack)"
        ));
    }
    if on.batch.batch_reads == 0 && on.batch.prefetch_issued == 0 {
        bad.push(format!("{ctx}: knobs on but no batched I/O recorded"));
    }
    bad
}

/// Invariants for one (strategy, disk) queue-depth sweep.
///
/// Depth 1 never constructs an async engine, so that leg must be
/// **byte-identical** to the synchronous batched leg: same checksum,
/// same reads, same batch counters, every `aio_*` counter zero. Deeper
/// queues must return identical results and may only *overlap*
/// submissions, never multiply them: the runs handed to the async
/// engine are bounded by the pages the synchronous path read one by
/// one.
fn check_sweep(
    strategy: Strategy,
    disk: Disk,
    off: &Leg,
    on: &Leg,
    sweep: &[(usize, Leg)],
) -> Vec<String> {
    let ctx = format!("{} on {}", strategy.name(), disk.name());
    let mut bad = Vec::new();
    for (depth, leg) in sweep {
        if leg.checksum != off.checksum || leg.retrieves != off.retrieves {
            bad.push(format!(
                "{ctx} depth {depth}: results differ from synchronous run"
            ));
        }
        if *depth <= 1 {
            if leg.reads != on.reads || leg.batch != on.batch {
                bad.push(format!(
                    "{ctx} depth 1: not byte-identical to the synchronous batched leg \
                     (reads {} vs {}, batch {:?} vs {:?})",
                    leg.reads, on.reads, leg.batch, on.batch
                ));
            }
            if leg.batch.aio_submitted != 0
                || leg.batch.aio_completed != 0
                || leg.batch.aio_in_flight_peak != 0
            {
                bad.push(format!(
                    "{ctx} depth 1: aio counters moved ({:?})",
                    leg.batch
                ));
            }
        } else {
            if leg.batch.aio_submitted == 0 {
                bad.push(format!(
                    "{ctx} depth {depth}: no async submissions recorded"
                ));
            }
            if leg.batch.aio_submitted > off.reads {
                bad.push(format!(
                    "{ctx} depth {depth}: more async submissions ({}) than synchronous \
                     reads ({})",
                    leg.batch.aio_submitted, off.reads
                ));
            }
            if leg.batch.aio_completed > leg.batch.aio_submitted {
                bad.push(format!(
                    "{ctx} depth {depth}: harvested {} of {} submissions",
                    leg.batch.aio_completed, leg.batch.aio_submitted
                ));
            }
        }
    }
    bad
}

fn json_leg(l: &Leg) -> String {
    format!(
        "{{\"retrieves\":{},\"reads\":{},\"throughput_qps\":{:.3},\
         \"mean_us\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3},\
         \"batch_reads\":{},\"coalesced_runs\":{},\
         \"prefetch_issued\":{},\"prefetch_hits\":{},\
         \"aio_submitted\":{},\"aio_completed\":{},\"aio_in_flight_peak\":{},\
         \"pool_hits\":{},\"pool_misses\":{}}}",
        l.retrieves,
        l.reads,
        l.qps,
        l.mean_ns as f64 / 1e3,
        l.p50_ns as f64 / 1e3,
        l.p99_ns as f64 / 1e3,
        l.batch.batch_reads,
        l.batch.coalesced_runs,
        l.batch.prefetch_issued,
        l.batch.prefetch_hits,
        l.batch.aio_submitted,
        l.batch.aio_completed,
        l.batch.aio_in_flight_peak,
        l.pool_hits,
        l.pool_misses,
    )
}

fn main() {
    let cfg = BenchConfig::from_args();
    let smoke = cfg.has_flag("--smoke");
    let mut json_path = PathBuf::from("BENCH_io.json");
    let mut io = IoOptions {
        batch: 16,
        readahead: 32,
        queue_depth: 1,
    };
    let mut seek_us: u64 = 100;
    let mut it = cfg.rest.iter().peekable();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--smoke" => {}
            "--json" => json_path = value("--json").into(),
            "--batch" => {
                io.batch = value("--batch").parse().unwrap_or_else(|_| {
                    eprintln!("error: --batch needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--readahead" => {
                io.readahead = value("--readahead").parse().unwrap_or_else(|_| {
                    eprintln!("error: --readahead needs an integer");
                    std::process::exit(2);
                })
            }
            "--seek-us" => {
                seek_us = value("--seek-us").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seek-us needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let params = if smoke {
        Params {
            parent_card: 200,
            num_top: 10,
            sequence_len: 12,
            size_cache: 20,
            buffer_pages: 64,
            shards: 2,
            pr_update: 0.0,
            ..Params::paper_default()
        }
    } else {
        let base = cfg.base_params();
        Params {
            pr_update: 0.0,
            // Select enough objects that BFS's planner picks the merge
            // join and the cluster scans span many leaves — the batched
            // paths this benchmark exists to measure.
            num_top: (base.parent_card / 10).max(base.num_top),
            // The paper's 20-page buffer is smaller than a readahead
            // window, so prefetched pages would be evicted before they
            // are demanded. Give the pool room to hold in-flight
            // windows; the paper-faithful figures keep their own sizes.
            // Keep a single shard: sharding scatters consecutive page
            // ids, which turns contiguous windows into singleton runs.
            buffer_pages: base.buffer_pages.max(256),
            ..base
        }
    };
    println!(
        "iobench — batched vs page-at-a-time I/O{}\n\
         |ParentRel| = {}, buffer = {} pages x {} shards, {} queries, \
         batch = {}, readahead = {}\n",
        if smoke { " (smoke)" } else { "" },
        params.parent_card,
        params.buffer_pages,
        params.shards,
        params.sequence_len,
        io.batch,
        io.readahead,
    );

    let off_opts = ExecOptions::default();
    let on_opts = ExecOptions {
        io,
        ..ExecOptions::default()
    };
    let strategies = [Strategy::Bfs, Strategy::DfsClust, Strategy::DfsCache];
    // The sweep covers the two readahead-driven strategies on the
    // file-backed disks — the legs where submission overlap can matter.
    const SWEEP_DEPTHS: [usize; 3] = [1, 4, 16];
    let generated = generate(&params);
    let mut scratch: Vec<PathBuf> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut sweep_rows: Vec<Vec<String>> = Vec::new();
    let mut json_strategies: Vec<String> = Vec::new();
    let mut json_sweep: Vec<String> = Vec::new();
    let mut aio_backend: &'static str = "sync";
    let seek = std::time::Duration::from_micros(seek_us);
    for strategy in strategies {
        let mut json_disks: Vec<String> = Vec::new();
        for disk in [Disk::Mem, Disk::File, Disk::FileSeek] {
            let off = run_leg(
                &params,
                &generated,
                strategy,
                disk,
                seek,
                &off_opts,
                &mut scratch,
            );
            let on = run_leg(
                &params,
                &generated,
                strategy,
                disk,
                seek,
                &on_opts,
                &mut scratch,
            );
            failures.extend(check_pair(strategy, disk, &off, &on));
            let speedup = if off.qps > 0.0 { on.qps / off.qps } else { 0.0 };
            rows.push(vec![
                strategy.name().to_string(),
                disk.name().to_string(),
                fnum(off.qps),
                fnum(on.qps),
                format!("{speedup:.2}x"),
                fnum(off.p99_ns as f64 / 1e3),
                fnum(on.p99_ns as f64 / 1e3),
                on.batch.batch_reads.to_string(),
                on.batch.coalesced_runs.to_string(),
                on.batch.prefetch_issued.to_string(),
            ]);
            json_disks.push(format!(
                "\"{}\":{{\"unbatched\":{},\"batched\":{},\"speedup\":{:.4}}}",
                disk.name(),
                json_leg(&off),
                json_leg(&on),
                speedup,
            ));

            let swept = matches!(disk, Disk::File | Disk::FileSeek)
                && matches!(strategy, Strategy::Bfs | Strategy::DfsClust);
            if !swept {
                continue;
            }
            let sweep: Vec<(usize, Leg)> = SWEEP_DEPTHS
                .iter()
                .map(|&depth| {
                    let opts = ExecOptions {
                        io: IoOptions {
                            queue_depth: depth,
                            ..io
                        },
                        ..ExecOptions::default()
                    };
                    let leg = run_leg(
                        &params,
                        &generated,
                        strategy,
                        disk,
                        seek,
                        &opts,
                        &mut scratch,
                    );
                    (depth, leg)
                })
                .collect();
            failures.extend(check_sweep(strategy, disk, &off, &on, &sweep));
            let base_qps = sweep
                .iter()
                .find(|(d, _)| *d == 1)
                .map(|(_, l)| l.qps)
                .unwrap_or(0.0);
            for (depth, leg) in &sweep {
                if *depth > 1 {
                    aio_backend = leg.backend;
                }
                let vs_d1 = if base_qps > 0.0 {
                    leg.qps / base_qps
                } else {
                    0.0
                };
                // A deeper queue losing to depth 1 on a leg without
                // artificial seek latency means the submission overlap
                // is not paying for its bookkeeping there: the page
                // cache serves preads too fast to hide anything behind.
                // Flagged (not failed): the wall-clock win needs the
                // device cost to be real — an O_DIRECT backend that
                // bypasses the page cache is the follow-on that would
                // make these legs behave like `filedisk_seek`.
                let regressed = *depth > 1 && disk != Disk::FileSeek && vs_d1 < 1.0;
                if regressed {
                    eprintln!(
                        "iobench WARN: {} on {} at depth {depth} ran {vs_d1:.2}x \
                         vs depth 1 (no seek latency to hide; see the O_DIRECT \
                         note in docs/benchmarks.md)",
                        strategy.name(),
                        disk.name(),
                    );
                }
                sweep_rows.push(vec![
                    strategy.name().to_string(),
                    disk.name().to_string(),
                    depth.to_string(),
                    leg.backend.to_string(),
                    fnum(leg.qps),
                    fnum(leg.p99_ns as f64 / 1e3),
                    leg.batch.aio_submitted.to_string(),
                    leg.batch.aio_completed.to_string(),
                    leg.batch.aio_in_flight_peak.to_string(),
                    format!("{vs_d1:.2}x"),
                ]);
                json_sweep.push(format!(
                    "{{\"strategy\":\"{}\",\"disk\":\"{}\",\"queue_depth\":{},\
                     \"backend\":\"{}\",\"speedup_vs_depth1\":{:.4},\
                     \"regressed\":{},\"leg\":{}}}",
                    strategy.name(),
                    disk.name(),
                    depth,
                    leg.backend,
                    vs_d1,
                    regressed,
                    json_leg(leg),
                ));
            }
        }
        json_strategies.push(format!(
            "{{\"strategy\":\"{}\",{}}}",
            strategy.name(),
            json_disks.join(",")
        ));
    }
    for path in &scratch {
        let _ = std::fs::remove_file(path);
    }

    println!(
        "{}",
        format_table(
            &[
                "Strategy",
                "Disk",
                "off q/s",
                "on q/s",
                "speedup",
                "off p99us",
                "on p99us",
                "batched",
                "runs",
                "prefetch",
            ],
            &rows,
        )
    );
    println!(
        "queue-depth sweep (async backend: {aio_backend})\n{}",
        format_table(
            &[
                "Strategy",
                "Disk",
                "depth",
                "backend",
                "q/s",
                "p99us",
                "submitted",
                "harvested",
                "peak",
                "vs d=1",
            ],
            &sweep_rows,
        )
    );

    let json = format!(
        "{{\"schema_version\":3,\"catalog_version\":{},\
         \"metrics_schema_version\":{},\"scale\":{},\"smoke\":{},\
         \"aio_backend\":\"{}\",\
         \"params\":{{\"parent_card\":{},\"num_top\":{},\"sequence_len\":{},\
         \"buffer_pages\":{},\"shards\":{},\"seed\":{},\"policy\":\"{}\"}},\
         \"io_options\":{{\"batch\":{},\"readahead\":{},\"seek_us\":{}}},\
         \"strategies\":[{}],\"queue_sweep\":[{}]}}\n",
        cor_workload::ENGINE_CATALOG_VERSION,
        cor_workload::METRICS_SCHEMA_VERSION,
        cfg.scale,
        smoke,
        aio_backend,
        params.parent_card,
        params.num_top,
        params.sequence_len,
        params.buffer_pages,
        params.shards,
        params.seed,
        cor_pagestore::ReplacementPolicy::default().name(),
        io.batch,
        io.readahead,
        seek_us,
        json_strategies.join(","),
        json_sweep.join(",")
    );
    if let Some(dir) = json_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, json) {
        Ok(()) => eprintln!("wrote {}", json_path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!(
            "iobench{}: OK ({} strategies x 3 disks + {} queue-depth legs validated)",
            if smoke { " smoke" } else { "" },
            strategies.len(),
            sweep_rows.len(),
        );
    } else {
        for f in &failures {
            eprintln!("iobench FAIL: {f}");
        }
        std::process::exit(1);
    }
}
