//! Figure 3: DFS vs BFS vs BFSNODUP, average I/O per retrieve as a
//! function of NumTop, with ShareFactor = 5 and no caching or clustering.
//!
//! Paper's shape: DFS "is a loser when NumTop exceeds 50 or so"; at low
//! NumTop BFS is slightly worse than DFS (temporary-formation cost);
//! BFSNODUP "is not much better than simple BFS".
//!
//! ```text
//! cargo run -p cor-bench --release --bin fig3 [--scale F | --full]
//! ```

use complexobj::Strategy;
use cor_bench::{num_top_sweep, BenchConfig};
use cor_workload::{fnum, format_ascii_plot, format_table, parallel_map, run_point, Params};

fn main() {
    let cfg = BenchConfig::from_args();
    let base = cfg.base_params();
    println!(
        "Figure 3 — DFS / BFS / BFSNODUP vs NumTop (ShareFactor=5, Pr(UPDATE)=0)\n\
         scale {} => |ParentRel| = {}, buffer = {} pages, {} retrieves per point\n",
        cfg.scale, base.parent_card, base.buffer_pages, base.sequence_len
    );

    let strategies = [Strategy::Dfs, Strategy::Bfs, Strategy::BfsNoDup];
    let sweep = num_top_sweep(base.parent_card);
    let points: Vec<(u64, Strategy)> = sweep
        .iter()
        .flat_map(|&n| strategies.iter().map(move |&s| (n, s)))
        .collect();

    let results = parallel_map(
        points.clone(),
        cor_workload::default_threads(),
        |&(n, s)| {
            let p = Params {
                num_top: n,
                use_factor: 5,
                overlap_factor: 1,
                pr_update: 0.0,
                ..base.clone()
            };
            run_point(&p, s).expect("point runs").avg_retrieve_io()
        },
    );

    let mut rows = Vec::new();
    for (i, &n) in sweep.iter().enumerate() {
        let at = |j: usize| results[i * strategies.len() + j];
        rows.push(vec![n.to_string(), fnum(at(0)), fnum(at(1)), fnum(at(2))]);
    }
    println!(
        "{}",
        format_table(&["NumTop", "DFS", "BFS", "BFSNODUP"], &rows)
    );
    cfg.maybe_write_csv(&["NumTop", "DFS", "BFS", "BFSNODUP"], &rows);

    // The paper's log-log rendering (Figure 3's shape at a glance).
    let series: Vec<(char, Vec<(f64, f64)>)> = [('D', 0usize), ('B', 1), ('N', 2)]
        .into_iter()
        .map(|(label, j)| {
            (
                label,
                sweep
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| (n as f64, results[i * 3 + j]))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        format_ascii_plot(
            "avg I/O per retrieve vs NumTop (D=DFS, B=BFS, N=BFSNODUP, *=overlap):",
            &series,
            true,
            true,
            60,
            16,
        )
    );

    // Headline checks against the paper's claims.
    let idx_of = |target: u64| {
        sweep
            .iter()
            .position(|&n| n >= target)
            .unwrap_or(sweep.len() - 1)
    };
    let hi = idx_of(base.parent_card / 10); // NumTop ~ card/10, well past the crossover
    let dfs_hi = results[hi * 3];
    let bfs_hi = results[hi * 3 + 1];
    println!(
        "at NumTop={}: DFS/BFS = {:.2} (paper: DFS loses large) {}",
        sweep[hi],
        dfs_hi / bfs_hi,
        if dfs_hi > bfs_hi {
            "[OK]"
        } else {
            "[MISMATCH]"
        }
    );
    let lo_dfs = results[0];
    let lo_bfs = results[1];
    println!(
        "at NumTop={}: BFS/DFS = {:.2} (paper: BFS slightly worse at low NumTop) {}",
        sweep[0],
        lo_bfs / lo_dfs,
        if lo_bfs >= lo_dfs {
            "[OK]"
        } else {
            "[MISMATCH]"
        }
    );
    let nd_ratio: f64 = (0..sweep.len())
        .map(|i| results[i * 3 + 2] / results[i * 3 + 1])
        .sum::<f64>()
        / sweep.len() as f64;
    println!(
        "mean BFSNODUP/BFS = {:.2} (paper: not much better than BFS) {}",
        nd_ratio,
        if nd_ratio > 0.7 { "[OK]" } else { "[MISMATCH]" }
    );
}
