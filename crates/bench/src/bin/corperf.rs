//! `corperf` — the perf-regression observatory: one canonical suite,
//! a stamped trajectory, and a CI gate.
//!
//! Runs every strategy over a fixed retrieve-only workload on
//! [`MemDisk`](cor_pagestore::MemDisk) (plus the batched BFS/DFSCLUST
//! legs), median-of-K per leg, and appends one stamped record to a
//! `BENCH_core.json` trajectory. Two invariants gate the run:
//!
//! 1. **Determinism** — every rep of a leg must return the same values
//!    and perform the same I/O (cold pool + fixed seed + MemDisk leaves
//!    nothing to vary). A drifting rep is a correctness bug, not noise.
//! 2. **No regressions** — with `--smoke`, reads/writes/values per leg
//!    must equal the committed baseline *exactly* (I/O counts are
//!    machine-independent), and median wall time may not exceed 4x the
//!    previous trajectory record for that leg (floored at 5 ms so
//!    micro-legs never flake).
//!
//! ```text
//! cargo run --release -p cor-bench --bin corperf [--scale F | --full]
//!     [--smoke]          tiny suite + the exact-I/O baseline gate
//!     [--json FILE]      trajectory path (default BENCH_core.json)
//!     [--baseline FILE]  baseline path (default results/corperf/baseline.json)
//!     [--reps K]         reps per leg (default 3 smoke, 5 otherwise)
//!     [--rebaseline]     rewrite the baseline from this run, skip the gate
//! ```
//!
//! Records carry `schema_version`, `catalog_version` and
//! `metrics_schema_version` so a trajectory spanning format changes
//! stays interpretable.

use std::path::PathBuf;
use std::time::Instant;

use complexobj::{ExecOptions, IoOptions, Query, Strategy};
use cor_bench::BenchConfig;
use cor_workload::{
    fnum, format_table, generate, generate_sequence, Engine, GeneratedDb, Params,
    ENGINE_CATALOG_VERSION, METRICS_SCHEMA_VERSION,
};

/// Trajectory/baseline record format version.
const PERF_SCHEMA_VERSION: u32 = 1;
/// Wall-time regression tolerance vs the previous trajectory record.
const WALL_TOLERANCE: u64 = 4;
/// Legs faster than this never trip the wall gate. Smoke legs run in a
/// couple of milliseconds, where scheduler noise and machine differences
/// dominate; the exact-I/O gate is the sensitive detector, wall time is
/// a backstop against catastrophic (order-of-magnitude) slowdowns.
const WALL_FLOOR_NS: u64 = 5_000_000;

/// One suite entry: a strategy plus the I/O knobs it runs under.
struct LegSpec {
    name: String,
    strategy: Strategy,
    opts: ExecOptions,
}

/// Median-of-K measurement of one leg.
struct LegResult {
    name: String,
    /// The pool's active async submission backend ("sync" at the
    /// default queue depth of 1).
    backend: &'static str,
    retrieves: u64,
    values: u64,
    checksum: u64,
    reads: u64,
    writes: u64,
    wall_ns: u64,
}

fn suite() -> Vec<LegSpec> {
    let mut legs: Vec<LegSpec> = Strategy::ALL
        .iter()
        .map(|&s| LegSpec {
            name: s.name().to_string(),
            strategy: s,
            opts: ExecOptions::default(),
        })
        .collect();
    // The batched path is a separate performance surface: same answers,
    // different physical I/O plan.
    for s in [Strategy::Bfs, Strategy::DfsClust] {
        legs.push(LegSpec {
            name: format!("{}+batch", s.name()),
            strategy: s,
            opts: ExecOptions {
                io: IoOptions {
                    batch: 16,
                    readahead: 32,
                    queue_depth: 1,
                },
                ..ExecOptions::default()
            },
        });
    }
    legs
}

/// Run one leg `reps` times and take the median wall. Every rep gets a
/// freshly built engine and a cold pool — caches (the paper's value
/// cache carries eviction state) start identical, so answers and I/O
/// must agree across reps; divergence is a bug, not noise.
fn run_leg(
    params: &Params,
    generated: &GeneratedDb,
    spec: &LegSpec,
    reps: usize,
) -> Result<LegResult, String> {
    let sequence = generate_sequence(params);

    let mut agreed: Option<(u64, u64, u64, u64, u64)> = None;
    let mut walls: Vec<u64> = Vec::with_capacity(reps);
    let mut backend: &'static str = "sync";
    for rep in 0..reps {
        let engine = Engine::builder()
            .build_workload(params, generated, spec.strategy)
            .map_err(|e| format!("{}: engine build failed: {e}", spec.name))?
            .with_options(spec.opts);
        backend = engine.pool().aio_backend().name();
        let stats = engine.pool().stats().clone();
        engine
            .pool()
            .flush_and_clear()
            .map_err(|e| format!("{}: pool flush failed: {e}", spec.name))?;
        let io_before = stats.snapshot();
        let (mut retrieves, mut values, mut checksum) = (0u64, 0u64, 0u64);
        let t0 = Instant::now();
        for q in &sequence {
            let Query::Retrieve(r) = q else { continue };
            let out = engine
                .retrieve(spec.strategy, r)
                .map_err(|e| format!("{}: retrieve failed: {e}", spec.name))?;
            retrieves += 1;
            for v in out.values {
                values += 1;
                checksum = checksum.wrapping_add((v as u64) ^ (v as u64).rotate_left(17));
            }
        }
        walls.push(t0.elapsed().as_nanos() as u64);
        let io = stats.snapshot().since(&io_before);
        let sig = (retrieves, values, checksum, io.reads, io.writes);
        match agreed {
            None => agreed = Some(sig),
            Some(prev) if prev != sig => {
                return Err(format!(
                    "{}: rep {rep} diverged: {sig:?} vs rep 0 {prev:?}",
                    spec.name
                ));
            }
            Some(_) => {}
        }
    }
    let (retrieves, values, checksum, reads, writes) = agreed.expect("reps >= 1");
    walls.sort_unstable();
    Ok(LegResult {
        name: spec.name.clone(),
        backend,
        retrieves,
        values,
        checksum,
        reads,
        writes,
        wall_ns: walls[walls.len() / 2],
    })
}

/// The integer right after `"key":`, scanning from byte offset `from`.
/// Same targeted-scan idiom the explain replay reader uses: this binary
/// only ever reads JSON it wrote itself.
fn field_u64(s: &str, key: &str, from: usize) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = s[from..].find(&pat)? + from + pat.len();
    let rest = &s[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_record(
    params: &Params,
    smoke: bool,
    reps: usize,
    ts_secs: u64,
    legs: &[LegResult],
) -> String {
    let legs_json: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "{{\"leg\":\"{}\",\"aio_backend\":\"{}\",\"retrieves\":{},\
                 \"values\":{},\"checksum\":{},\
                 \"reads\":{},\"writes\":{},\"wall_ns\":{}}}",
                l.name, l.backend, l.retrieves, l.values, l.checksum, l.reads, l.writes, l.wall_ns
            )
        })
        .collect();
    format!(
        "{{\"ts\":{ts_secs},\"schema_version\":{PERF_SCHEMA_VERSION},\
         \"catalog_version\":{ENGINE_CATALOG_VERSION},\
         \"metrics_schema_version\":{METRICS_SCHEMA_VERSION},\
         \"smoke\":{smoke},\"reps\":{reps},\
         \"params\":{{\"parent_card\":{},\"num_top\":{},\"sequence_len\":{},\
         \"size_cache\":{},\"buffer_pages\":{},\"shards\":{},\"seed\":{}}},\
         \"legs\":[{}]}}",
        params.parent_card,
        params.num_top,
        params.sequence_len,
        params.size_cache,
        params.buffer_pages,
        params.shards,
        params.seed,
        legs_json.join(",")
    )
}

/// Append `record` to the `{"schema_version":1,"runs":[...]}` trajectory
/// at `path`, creating it if missing. Purely textual: the file is ours.
fn append_trajectory(path: &std::path::Path, record: &str) -> Result<(), String> {
    let fresh = format!("{{\"schema_version\":{PERF_SCHEMA_VERSION},\"runs\":[\n{record}\n]}}\n");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix("]}") {
                Some(head) if trimmed.contains("\"runs\":[") => {
                    format!("{},\n{record}\n]}}\n", head.trim_end())
                }
                _ => {
                    eprintln!(
                        "warning: {} is not a corperf trajectory, starting fresh",
                        path.display()
                    );
                    fresh
                }
            }
        }
        Err(_) => fresh,
    };
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, body).map_err(|e| format!("failed to write {}: {e}", path.display()))
}

/// Gate legs against the committed baseline: reads/writes/values and the
/// value checksum must match exactly. Only applies when the baseline was
/// captured with the same parameters (seed included).
fn check_baseline(baseline: &str, params: &Params, legs: &[LegResult]) -> Vec<String> {
    let mut bad = Vec::new();
    let same_params = [
        ("parent_card", params.parent_card),
        ("num_top", params.num_top),
        ("sequence_len", params.sequence_len as u64),
        ("seed", params.seed),
    ]
    .iter()
    .all(|&(key, want)| field_u64(baseline, key, 0) == Some(want));
    if !same_params {
        bad.push("baseline parameters differ from this run (re-capture with --rebaseline)".into());
        return bad;
    }
    for leg in legs {
        let pat = format!("\"leg\":\"{}\"", leg.name);
        let Some(at) = baseline.find(&pat) else {
            bad.push(format!("{}: missing from baseline", leg.name));
            continue;
        };
        for (key, got) in [
            ("retrieves", leg.retrieves),
            ("values", leg.values),
            ("checksum", leg.checksum),
            ("reads", leg.reads),
            ("writes", leg.writes),
        ] {
            let want = field_u64(baseline, key, at);
            if want != Some(got) {
                bad.push(format!(
                    "{}: {key} = {got}, baseline {}",
                    leg.name,
                    want.map_or("missing".into(), |w| w.to_string())
                ));
            }
        }
    }
    bad
}

/// The most recent wall time recorded for `leg` in the trajectory text
/// (the last occurrence is the newest run).
fn previous_wall(trajectory: &str, leg: &str) -> Option<u64> {
    let pat = format!("\"leg\":\"{leg}\"");
    let at = trajectory.rfind(&pat)?;
    field_u64(trajectory, "wall_ns", at)
}

fn main() {
    let cfg = BenchConfig::from_args();
    let smoke = cfg.has_flag("--smoke");
    let rebaseline = cfg.has_flag("--rebaseline");
    let mut json_path = PathBuf::from("BENCH_core.json");
    let mut baseline_path = PathBuf::from("results/corperf/baseline.json");
    let mut reps: usize = if smoke { 3 } else { 5 };
    let mut it = cfg.rest.iter().peekable();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--smoke" | "--rebaseline" => {}
            "--json" => json_path = value("--json").into(),
            "--baseline" => baseline_path = value("--baseline").into(),
            "--reps" => {
                reps = value("--reps").parse().unwrap_or(0);
                if reps == 0 {
                    eprintln!("error: --reps needs a positive integer");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let params = if smoke {
        Params {
            parent_card: 200,
            num_top: 10,
            sequence_len: 40,
            size_cache: 20,
            buffer_pages: 64,
            shards: 2,
            pr_update: 0.0,
            ..Params::paper_default()
        }
    } else {
        let base = cfg.base_params();
        Params {
            pr_update: 0.0,
            num_top: (base.parent_card / 10).max(base.num_top),
            buffer_pages: base.buffer_pages.max(256),
            ..base
        }
    };
    let legs_spec = suite();
    println!(
        "corperf — perf-regression observatory{}\n\
         |ParentRel| = {}, {} queries, {} legs x {} reps (median wall)\n",
        if smoke { " (smoke)" } else { "" },
        params.parent_card,
        params.sequence_len,
        legs_spec.len(),
        reps,
    );

    let generated = generate(&params);
    let mut legs: Vec<LegResult> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for spec in &legs_spec {
        match run_leg(&params, &generated, spec, reps) {
            Ok(leg) => legs.push(leg),
            Err(e) => failures.push(e),
        }
    }

    let trajectory = std::fs::read_to_string(&json_path).unwrap_or_default();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for leg in &legs {
        let prev = previous_wall(&trajectory, &leg.name);
        if let Some(prev) = prev {
            let allowed = WALL_TOLERANCE * prev.max(WALL_FLOOR_NS);
            if leg.wall_ns > allowed {
                failures.push(format!(
                    "{}: wall {:.2}ms exceeds {}x previous {:.2}ms",
                    leg.name,
                    leg.wall_ns as f64 / 1e6,
                    WALL_TOLERANCE,
                    prev as f64 / 1e6,
                ));
            }
        }
        rows.push(vec![
            leg.name.clone(),
            leg.retrieves.to_string(),
            leg.values.to_string(),
            leg.reads.to_string(),
            leg.writes.to_string(),
            fnum(leg.wall_ns as f64 / 1e6),
            prev.map_or_else(|| "-".into(), |p| fnum(p as f64 / 1e6)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["Leg", "Retr", "Values", "Reads", "Writes", "wall ms", "prev ms"],
            &rows,
        )
    );
    cfg.maybe_write_csv(
        &[
            "Leg", "Retr", "Values", "Reads", "Writes", "wall_ms", "prev_ms",
        ],
        &rows,
    );

    let ts_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = json_record(&params, smoke, reps, ts_secs, &legs);

    if rebaseline {
        if let Some(dir) = baseline_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&baseline_path, format!("{record}\n")) {
            Ok(()) => eprintln!("rebaselined {}", baseline_path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", baseline_path.display());
                std::process::exit(1);
            }
        }
    } else if smoke {
        match std::fs::read_to_string(&baseline_path) {
            Ok(baseline) => failures.extend(check_baseline(&baseline, &params, &legs)),
            Err(_) => failures.push(format!(
                "no baseline at {} (capture one with --rebaseline)",
                baseline_path.display()
            )),
        }
    }

    if let Err(e) = append_trajectory(&json_path, &record) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    eprintln!("appended run to {}", json_path.display());

    if failures.is_empty() {
        println!(
            "corperf{}: OK ({} legs, I/O exact{})",
            if smoke { " smoke" } else { "" },
            legs.len(),
            if smoke && !rebaseline {
                ", baseline matched"
            } else {
                ""
            }
        );
    } else {
        for f in &failures {
            eprintln!("corperf FAIL: {f}");
        }
        std::process::exit(1);
    }
}
