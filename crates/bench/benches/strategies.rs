//! Criterion microbenchmarks over the query-processing strategies: one
//! fixed database, wall-clock per retrieve at representative NumTop
//! values. The figure binaries measure I/O; these measure CPU+structure
//! overheads at a small scale where everything is memory-resident.

use complexobj::{ExecOptions, RetAttr, RetrieveQuery, Strategy};
use cor_workload::{generate, Engine, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn params() -> Params {
    Params {
        parent_card: 1000,
        use_factor: 5,
        overlap_factor: 1,
        size_cache: 100,
        buffer_pages: 64,
        ..Params::paper_default()
    }
}

fn bench_strategies(c: &mut Criterion) {
    let p = params();
    let generated = generate(&p);

    let mut g = c.benchmark_group("retrieve");
    for num_top in [1u64, 20, 200] {
        for strategy in Strategy::ALL {
            let engine = Engine::builder()
                .build_workload(&p, &generated, strategy)
                .expect("engine builds");
            let query = RetrieveQuery {
                lo: 100,
                hi: 100 + num_top - 1,
                attr: RetAttr::Ret1,
            };
            g.throughput(Throughput::Elements(num_top));
            g.bench_with_input(
                BenchmarkId::new(strategy.name(), num_top),
                &query,
                |b, q| {
                    b.iter(|| {
                        black_box(
                            engine
                                .retrieve(strategy, q)
                                .expect("query runs")
                                .values
                                .len(),
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let p = params();
    let generated = generate(&p);

    let mut g = c.benchmark_group("update");
    for (name, strategy, maintain) in [
        ("plain", Strategy::Bfs, false),
        ("with_cache_invalidation", Strategy::DfsCache, true),
        ("clustered", Strategy::DfsClust, false),
    ] {
        let engine = Engine::builder()
            .build_workload(&p, &generated, strategy)
            .expect("engine builds");
        if maintain {
            // Warm the cache so invalidations actually happen.
            let q = RetrieveQuery {
                lo: 0,
                hi: 400,
                attr: RetAttr::Ret1,
            };
            engine.retrieve(strategy, &q).unwrap();
        }
        let update = complexobj::UpdateQuery {
            targets: (0..10)
                .map(|i| cor_relational::Oid::new(complexobj::database::CHILD_REL_BASE, i * 97))
                .collect(),
            new_ret1: 42,
        };
        g.throughput(Throughput::Elements(update.targets.len() as u64));
        g.bench_function(name, |b| {
            b.iter(|| black_box(engine.update(&update).unwrap()))
        });
    }
    g.finish();
}

fn bench_representations(c: &mut Criterion) {
    use complexobj::procedural::ProcCaching;
    use complexobj::ValueDatabase;
    use cor_workload::{generate_matrix, make_pool};

    let p = Params {
        parent_card: 500,
        size_cache: 50,
        buffer_pages: 64,
        ..params()
    };
    let spec = generate_matrix(&p);
    let query = RetrieveQuery {
        lo: 100,
        hi: 119,
        attr: RetAttr::Ret1,
    };

    let mut g = c.benchmark_group("representation");
    g.throughput(Throughput::Elements(query.hi - query.lo + 1));

    let value_db = ValueDatabase::build(make_pool(&p), &spec.oid_spec).unwrap();
    g.bench_function("value_based", |b| {
        b.iter(|| black_box(value_db.run_retrieve(&query).unwrap().values.len()))
    });

    let proc_db = Engine::builder()
        .pool_pages(p.buffer_pages)
        .build_procedural(&spec.proc_spec, ProcCaching::None)
        .unwrap();
    g.bench_function("procedural_exec", |b| {
        b.iter(|| {
            black_box(
                proc_db
                    .retrieve(Strategy::Dfs, &query)
                    .unwrap()
                    .values
                    .len(),
            )
        })
    });

    let proc_cached = Engine::builder()
        .pool_pages(p.buffer_pages)
        .build_procedural(&spec.proc_spec, ProcCaching::OutsideValues(p.size_cache))
        .unwrap();
    proc_cached.retrieve(Strategy::Dfs, &query).unwrap(); // warm
    g.bench_function("procedural_cached", |b| {
        b.iter(|| {
            black_box(
                proc_cached
                    .retrieve(Strategy::Dfs, &query)
                    .unwrap()
                    .values
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    use complexobj::multilevel::{bfs_multilevel, dfs_multilevel, MultiDotQuery};
    use cor_workload::{build_hierarchy, HierarchyParams};

    let hp = HierarchyParams {
        levels: 2,
        top_card: 500,
        fan_out: 4,
        use_factor: 4,
        buffer_pages: 64,
        ..HierarchyParams::default()
    };
    let levels = build_hierarchy(&hp).unwrap();
    let q = MultiDotQuery {
        lo: 50,
        hi: 59,
        attr: RetAttr::Ret1,
    };

    let mut g = c.benchmark_group("multilevel_3dot");
    g.bench_function("dfs", |b| {
        b.iter(|| black_box(dfs_multilevel(&levels, &q).unwrap().values.len()))
    });
    g.bench_function("bfs", |b| {
        b.iter(|| {
            black_box(
                bfs_multilevel(&levels, &q, false, &ExecOptions::default())
                    .unwrap()
                    .values
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_quel_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("quel");
    g.bench_function("parse_retrieve", |b| {
        b.iter(|| {
            black_box(
                complexobj::parse_quel(
                    "retrieve (ParentRel.children.ret2) where 100 <= ParentRel.OID <= 149",
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("parse_replace", |b| {
        b.iter(|| {
            black_box(
                complexobj::parse_quel(
                    "replace child10 (ret1 = 42) where child10.OID in (3, 7, 9, 11, 13)",
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_updates,
    bench_representations,
    bench_multilevel,
    bench_quel_parse
);
criterion_main!(benches);
