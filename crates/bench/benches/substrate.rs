//! Criterion microbenchmarks for the storage substrate: the operations
//! whose I/O costs the figure reproductions are built from.

use cor_access::{external_sort, BTreeFile, HashFile, HeapFile, IsamIndex, DEFAULT_FILL};
use cor_pagestore::{BufferPool, PageMut, PAGE_SIZE};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::builder().capacity(frames).build())
}

fn key8(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn bench_slotted_page(c: &mut Criterion) {
    let mut g = c.benchmark_group("slotted_page");
    g.bench_function("insert_until_full", |b| {
        b.iter_batched(
            || [0u8; PAGE_SIZE],
            |mut buf| {
                let mut p = PageMut::new(&mut buf);
                p.init();
                let rec = [7u8; 100];
                while p.insert(&rec).is_ok() {}
                black_box(p.view().live_count())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    let n = 10_000u64;

    g.throughput(Throughput::Elements(n));
    g.bench_function("bulk_load_10k", |b| {
        b.iter(|| {
            let entries: Vec<_> = (0..n).map(|k| (key8(k), vec![1u8; 90])).collect();
            let t = BTreeFile::bulk_load(pool(64), 8, entries, DEFAULT_FILL).unwrap();
            black_box(t.len())
        })
    });

    let p = pool(1024);
    let entries: Vec<_> = (0..n).map(|k| (key8(k), vec![1u8; 90])).collect();
    let tree = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();

    g.throughput(Throughput::Elements(1));
    g.bench_function("get_warm", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let k = rng.random_range(0..n);
            black_box(tree.get(&key8(k)).unwrap())
        })
    });

    g.bench_function("get_cold", |b| {
        // Buffer too small for the tree: every probe faults pages.
        let p = pool(4);
        let entries: Vec<_> = (0..n).map(|k| (key8(k), vec![1u8; 90])).collect();
        let tree = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let k = rng.random_range(0..n);
            black_box(tree.get(&key8(k)).unwrap())
        })
    });

    g.throughput(Throughput::Elements(n));
    g.bench_function("full_scan_10k", |b| {
        b.iter(|| black_box(tree.scan_all().count()))
    });

    g.throughput(Throughput::Elements(1000));
    g.bench_function("insert_1k_random", |b| {
        b.iter_batched(
            || BTreeFile::create(pool(64), 8).unwrap(),
            |t| {
                let mut rng = StdRng::seed_from_u64(3);
                for _ in 0..1000 {
                    let k = rng.random_range(0..u64::MAX);
                    t.insert(&key8(k), &[5u8; 90]).unwrap();
                }
                black_box(t.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_hash_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_file");
    let p = pool(512);
    let h = HashFile::create(Arc::clone(&p), 256).unwrap();
    for k in 0..2000u64 {
        h.put(&key8(k), &[9u8; 300]).unwrap();
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("get_hit", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(h.get(&key8(rng.random_range(0..2000))).unwrap()))
    });
    g.bench_function("get_miss", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(h.get(&key8(rng.random_range(10_000..20_000))).unwrap()))
    });
    g.bench_function("put_delete_cycle", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            let k = key8(rng.random_range(50_000..60_000));
            h.put(&k, &[1u8; 300]).unwrap();
            h.delete(&k).unwrap()
        })
    });
    g.finish();
}

fn bench_isam(c: &mut Criterion) {
    let mut g = c.benchmark_group("isam");
    let p = pool(1024);
    let entries: Vec<_> = (0..50_000u64)
        .map(|k| (key8(k), (k * 2).to_le_bytes().to_vec()))
        .collect();
    let idx = IsamIndex::build(Arc::clone(&p), 8, entries).unwrap();
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup_50k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(idx.lookup(&key8(rng.random_range(0..50_000))).unwrap()))
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("external_sort");
    let records: Vec<Vec<u8>> = {
        let mut rng = StdRng::seed_from_u64(8);
        (0..20_000)
            .map(|_| rng.random_range(0..u64::MAX).to_be_bytes().to_vec())
            .collect()
    };
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("in_memory_20k", |b| {
        let p = pool(64);
        b.iter(|| {
            black_box(
                external_sort(&p, records.clone().into_iter(), usize::MAX, false)
                    .unwrap()
                    .count(),
            )
        })
    });
    g.bench_function("spilled_20k", |b| {
        let p = pool(64);
        b.iter(|| {
            black_box(
                external_sort(&p, records.clone().into_iter(), 8 * 1024, false)
                    .unwrap()
                    .count(),
            )
        })
    });
    g.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap_file");
    g.throughput(Throughput::Elements(5000));
    g.bench_function("append_5k", |b| {
        b.iter_batched(
            || HeapFile::create(pool(64)).unwrap(),
            |h| {
                for i in 0..5000u32 {
                    h.append(&i.to_le_bytes()).unwrap();
                }
                black_box(h.len())
            },
            BatchSize::SmallInput,
        )
    });
    let heap = HeapFile::create(pool(64)).unwrap();
    for i in 0..5000u32 {
        heap.append(&i.to_le_bytes()).unwrap();
    }
    g.bench_function("scan_5k", |b| b.iter(|| black_box(heap.scan().count())));
    g.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    let p = pool(64);
    let pids: Vec<_> = (0..256).map(|_| p.allocate_page().unwrap()).collect();
    for &pid in &pids {
        p.write(pid, |mut pg| pg.init()).unwrap();
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_hit", |b| {
        b.iter(|| p.read(pids[0], |pg| black_box(pg.slot_count())).unwrap())
    });
    g.bench_function("read_miss_evict", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            let pid = pids[rng.random_range(0..pids.len())];
            p.read(pid, |pg| black_box(pg.slot_count())).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_slotted_page,
    bench_btree,
    bench_hash_file,
    bench_isam,
    bench_sort,
    bench_heap,
    bench_buffer_pool
);
criterion_main!(benches);
