//! Multi-threaded buffer pool benchmarks: page-access throughput of the
//! lock-striped pool under the classic access patterns at 1–16 threads.
//!
//! Three workloads, each measured at shards = 1 (the paper's single
//! global buffer) and shards = 8:
//!
//! * **seq_scan** — every thread scans the whole store in order; the
//!   store is 4x the pool so most accesses miss and evict.
//! * **repeated** — every thread hammers a small resident hot set; all
//!   hits, so the frame-table latch is the only cost and the shard
//!   speedup is visible directly.
//! * **random_k** — every thread reads uniformly random pages (its own
//!   seed); a hit/miss mix that approximates index-probe traffic.
//!
//! Reported throughput is total page accesses per second across all
//! threads (one `iter` = every thread completing its op quota).
//!
//! ```text
//! cargo bench -p cor-bench --bench pool
//! ```

use cor_pagestore::{BufferPool, PageId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

/// Pool pages. Small enough that seq_scan thrashes, large enough that
/// the repeated hot set stays resident in every shard configuration.
const CAPACITY: usize = 128;
/// Backing store pages (4x the pool: a sequential scan always misses).
const NUM_PAGES: usize = 512;
/// Hot-set size for the repeated-access workload (fits in the pool).
const HOT_SET: usize = 32;
/// Page reads each thread performs per measured iteration.
const OPS_PER_THREAD: usize = 1_000;

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const SHARD_COUNTS: [usize; 2] = [1, 8];

/// Build a pool with `shards` shards over a fresh in-memory store and
/// fill `NUM_PAGES` pages with one record each.
fn build_pool(shards: usize) -> (Arc<BufferPool>, Vec<PageId>) {
    let pool = Arc::new(
        BufferPool::builder()
            .capacity(CAPACITY)
            .shards(shards)
            .build(),
    );
    let pids: Vec<PageId> = (0..NUM_PAGES)
        .map(|i| {
            let pid = pool.allocate_page().expect("store extends");
            pool.write(pid, |mut p| {
                p.init();
                p.insert(&(i as u64).to_le_bytes()).expect("record fits");
            })
            .expect("page writes");
            pid
        })
        .collect();
    (pool, pids)
}

/// Run `threads` workers, each reading the pages `plan` yields for its
/// index, and return the number of records seen (a live result so the
/// reads cannot be optimized away).
fn run_workers(
    pool: &BufferPool,
    threads: usize,
    plan: impl Fn(usize) -> Vec<PageId> + Sync,
) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let plan = &plan;
                scope.spawn(move || {
                    let mut seen = 0usize;
                    for pid in plan(t) {
                        seen += pool
                            .read(pid, |view| view.live_count())
                            .expect("page reads");
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .sum()
    })
}

/// Sequential scan: thread `t` starts at a stagger offset and walks the
/// whole store in order, wrapping around.
fn seq_plan(pids: &[PageId], t: usize) -> Vec<PageId> {
    let stagger = (t * pids.len()) / 16;
    (0..OPS_PER_THREAD)
        .map(|i| pids[(stagger + i) % pids.len()])
        .collect()
}

/// Repeated access: every thread loops over the same small hot set.
fn hot_plan(pids: &[PageId], _t: usize) -> Vec<PageId> {
    (0..OPS_PER_THREAD).map(|i| pids[i % HOT_SET]).collect()
}

/// Random-K: thread `t` reads uniformly random pages from its own
/// deterministic stream.
fn random_plan(pids: &[PageId], t: usize) -> Vec<PageId> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + t as u64);
    (0..OPS_PER_THREAD)
        .map(|_| pids[rng.random_range(0..pids.len())])
        .collect()
}

fn bench_workload(
    c: &mut Criterion,
    name: &str,
    plan: impl Fn(&[PageId], usize) -> Vec<PageId> + Sync,
) {
    let mut g = c.benchmark_group(name);
    for shards in SHARD_COUNTS {
        let (pool, pids) = build_pool(shards);
        for threads in THREAD_COUNTS {
            g.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
            g.bench_function(
                BenchmarkId::new(format!("s{shards}"), format!("x{threads}")),
                |b| b.iter(|| black_box(run_workers(&pool, threads, |t| plan(&pids, t)))),
            );
        }
    }
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    bench_workload(c, "pool_seq_scan", seq_plan);
    bench_workload(c, "pool_repeated", hot_plan);
    bench_workload(c, "pool_random_k", random_plan);
}

criterion_group!(pool, bench_pool);
criterion_main!(pool);
