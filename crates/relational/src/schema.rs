//! Relation schemas and tuples.

use crate::value::{Value, ValueType};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

/// An ordered list of columns describing one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names — schemas are static program data.
    pub fn new(columns: &[(&str, ValueType)]) -> Self {
        let cols: Vec<Column> = columns
            .iter()
            .map(|(n, t)| Column {
                name: n.to_string(),
                ty: *t,
            })
            .collect();
        for (i, c) in cols.iter().enumerate() {
            assert!(
                !cols[..i].iter().any(|p| p.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Schema { columns: cols }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column called `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Does `tuple` conform to this schema (arity and types)?
    pub fn admits(&self, tuple: &Tuple) -> bool {
        tuple.values().len() == self.arity()
            && tuple
                .values()
                .iter()
                .zip(&self.columns)
                .all(|(v, c)| v.value_type() == c.ty)
    }
}

/// A row: an ordered list of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Replace the value at column `idx`.
    pub fn set(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Project onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;

    fn person_schema() -> Schema {
        Schema::new(&[
            ("oid", ValueType::Oid),
            ("name", ValueType::Str),
            ("age", ValueType::Int),
        ])
    }

    #[test]
    fn column_lookup() {
        let s = person_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("age"), Some(2));
        assert_eq!(s.column_index("absent"), None);
        assert_eq!(s.columns()[1].name, "name");
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_panic() {
        Schema::new(&[("a", ValueType::Int), ("a", ValueType::Str)]);
    }

    #[test]
    fn admits_checks_arity_and_types() {
        let s = person_schema();
        let good = Tuple::new(vec![
            Value::Oid(Oid::new(1, 1)),
            Value::from("Mary"),
            Value::Int(62),
        ]);
        assert!(s.admits(&good));
        let short = Tuple::new(vec![Value::Int(1)]);
        assert!(!s.admits(&short));
        let wrong_ty = Tuple::new(vec![Value::Int(1), Value::from("Mary"), Value::Int(62)]);
        assert!(!s.admits(&wrong_ty));
    }

    #[test]
    fn projection() {
        let t = Tuple::new(vec![Value::Int(1), Value::from("x"), Value::Int(3)]);
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut t = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        t.set(1, Value::Int(99));
        assert_eq!(t.get(1).as_int(), Some(99));
    }
}
