//! Simple selection predicates.
//!
//! The paper's retrieve queries are range selections on `ParentRel.OID`
//! (`val1 <= ParentRel.OID <= val2`); examples also use equality and
//! comparison predicates on attributes (e.g. `person.age >= 60`). This
//! module provides a small composable predicate tree covering those shapes.

use crate::schema::Tuple;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A predicate over tuples.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true (full scan).
    True,
    /// Compare column `col` against a constant.
    Cmp {
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Constant operand.
        value: Value,
    },
    /// Both sides must hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either side must hold.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col op value` shorthand.
    pub fn cmp(col: usize, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            col,
            op,
            value: value.into(),
        }
    }

    /// `lo <= col <= hi` shorthand (the paper's OID-range selections).
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate::And(
            Box::new(Predicate::cmp(col, CmpOp::Ge, lo)),
            Box::new(Predicate::cmp(col, CmpOp::Le, hi)),
        )
    }

    /// Conjunction shorthand.
    pub fn and(self, rhs: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction shorthand.
    pub fn or(self, rhs: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(rhs))
    }

    /// Evaluate against a tuple. Comparisons between values of different
    /// types are false (mirroring a strictly-typed system; queries in this
    /// workspace are always well-typed).
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, value } => {
                let lhs = tuple.get(*col);
                if lhs.value_type() != value.value_type() {
                    return false;
                }
                op.eval(lhs.cmp(value))
            }
            Predicate::And(a, b) => a.eval(tuple) && b.eval(tuple),
            Predicate::Or(a, b) => a.eval(tuple) || b.eval(tuple),
            Predicate::Not(p) => !p.eval(tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(age: i64, name: &str) -> Tuple {
        Tuple::new(vec![Value::Int(age), Value::from(name)])
    }

    #[test]
    fn comparisons() {
        let t = row(62, "Mary");
        assert!(Predicate::cmp(0, CmpOp::Ge, 60).eval(&t));
        assert!(!Predicate::cmp(0, CmpOp::Lt, 60).eval(&t));
        assert!(Predicate::cmp(1, CmpOp::Eq, "Mary").eval(&t));
        assert!(Predicate::cmp(1, CmpOp::Ne, "Paul").eval(&t));
    }

    #[test]
    fn between_matches_paper_range_queries() {
        let p = Predicate::between(0, 10, 20);
        assert!(!p.eval(&row(9, "")));
        assert!(p.eval(&row(10, "")));
        assert!(p.eval(&row(20, "")));
        assert!(!p.eval(&row(21, "")));
    }

    #[test]
    fn boolean_combinators() {
        let elders_or_children =
            Predicate::cmp(0, CmpOp::Ge, 60).or(Predicate::cmp(0, CmpOp::Le, 15));
        assert!(elders_or_children.eval(&row(62, "")));
        assert!(elders_or_children.eval(&row(8, "")));
        assert!(!elders_or_children.eval(&row(30, "")));

        let not = Predicate::Not(Box::new(Predicate::True));
        assert!(!not.eval(&row(0, "")));
    }

    #[test]
    fn type_mismatch_is_false() {
        let t = row(1, "x");
        assert!(!Predicate::cmp(0, CmpOp::Eq, "1").eval(&t));
        assert!(!Predicate::cmp(1, CmpOp::Eq, 1).eval(&t));
    }
}
