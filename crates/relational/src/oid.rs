//! Object identifiers.
//!
//! The paper (Sec. 2.2) uses "the simplest OID's that provide location
//! transparency — the concatenation of the relation identifier and the
//! primary key of a tuple". [`Oid`] is exactly that: a 16-bit relation id
//! concatenated with a 64-bit primary key.
//!
//! OIDs order first by relation, then by key, and the byte encoding
//! ([`Oid::to_key_bytes`]) is big-endian so that *byte-wise* comparison of
//! encoded keys matches the logical order — the property B-trees and merge
//! joins rely on.

/// Identifier of a relation within a database.
pub type RelId = u16;

/// A location-transparent object identifier: relation id + primary key.
///
/// ```
/// use cor_relational::Oid;
///
/// let oid = Oid::new(10, 7643);
/// let bytes = oid.to_key_bytes();           // byte-comparable encoding
/// assert_eq!(Oid::from_key_bytes(&bytes), Some(oid));
/// assert!(bytes < Oid::new(10, 7644).to_key_bytes()); // order preserved
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid {
    /// The relation holding the object.
    pub rel: RelId,
    /// The object's primary key within that relation.
    pub key: u64,
}

/// Encoded size of an [`Oid`] in bytes.
pub const OID_BYTES: usize = 10;

impl Oid {
    /// Construct an OID.
    pub const fn new(rel: RelId, key: u64) -> Self {
        Oid { rel, key }
    }

    /// Byte-comparable encoding (big-endian rel, then big-endian key).
    pub fn to_key_bytes(&self) -> [u8; OID_BYTES] {
        let mut out = [0u8; OID_BYTES];
        out[..2].copy_from_slice(&self.rel.to_be_bytes());
        out[2..].copy_from_slice(&self.key.to_be_bytes());
        out
    }

    /// Decode from the byte-comparable encoding.
    pub fn from_key_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != OID_BYTES {
            return None;
        }
        let rel = u16::from_be_bytes([bytes[0], bytes[1]]);
        let mut k = [0u8; 8];
        k.copy_from_slice(&bytes[2..]);
        Some(Oid {
            rel,
            key: u64::from_be_bytes(k),
        })
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.rel, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip() {
        let oid = Oid::new(7, 123_456_789);
        assert_eq!(Oid::from_key_bytes(&oid.to_key_bytes()), Some(oid));
    }

    #[test]
    fn byte_order_matches_logical_order() {
        let cases = [
            Oid::new(0, 0),
            Oid::new(0, 1),
            Oid::new(0, u64::MAX),
            Oid::new(1, 0),
            Oid::new(1, 500),
            Oid::new(u16::MAX, u64::MAX),
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(
                    a.cmp(b),
                    a.to_key_bytes().as_slice().cmp(b.to_key_bytes().as_slice()),
                    "byte order disagrees for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn bad_lengths_rejected() {
        assert_eq!(Oid::from_key_bytes(&[0u8; 9]), None);
        assert_eq!(Oid::from_key_bytes(&[0u8; 11]), None);
    }
}
