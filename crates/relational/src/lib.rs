//! # cor-relational
//!
//! Minimal relational data model shared by every layer of the complex-object
//! representation study: object identifiers ([`Oid`]), typed values,
//! schemas/tuples, and selection predicates.
//!
//! Storage structures live in `cor-access`; this crate is pure data model.

#![warn(missing_docs)]

pub mod oid;
pub mod predicate;
pub mod schema;
pub mod value;

pub use oid::{Oid, RelId, OID_BYTES};
pub use predicate::{CmpOp, Predicate};
pub use schema::{Column, Schema, Tuple};
pub use value::{Value, ValueType};
