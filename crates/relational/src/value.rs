//! Typed attribute values.
//!
//! The paper's relations use integer fields (`ret1`, `ret2`, `ret3`),
//! blank-compressed character fields (`dummy`, `value`), and a `children`
//! field holding a list of OIDs. [`Value`] covers exactly those shapes.

use crate::oid::Oid;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// Variable-length string (the "blank-compressed" character field).
    Str,
    /// A single object identifier.
    Oid,
    /// A list of object identifiers (the `children` attribute).
    OidList,
    /// Raw bytes (inside-cached results, opaque payloads).
    Bytes,
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// String value.
    Str(String),
    /// Object identifier value.
    Oid(Oid),
    /// OID-list value.
    OidList(Vec<Oid>),
    /// Raw byte payload.
    Bytes(Vec<u8>),
}

impl Value {
    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Str(_) => ValueType::Str,
            Value::Oid(_) => ValueType::Oid,
            Value::OidList(_) => ValueType::OidList,
            Value::Bytes(_) => ValueType::Bytes,
        }
    }

    /// Integer contents, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String contents, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// OID contents, if this is a [`Value::Oid`].
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// OID-list contents, if this is a [`Value::OidList`].
    pub fn as_oid_list(&self) -> Option<&[Oid]> {
        match self {
            Value::OidList(v) => Some(v),
            _ => None,
        }
    }

    /// Byte contents, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Oid(v)
    }
}

impl From<Vec<Oid>> for Value {
    fn from(v: Vec<Oid>) -> Self {
        Value::OidList(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Oid(o) => write!(f, "{o}"),
            Value::OidList(v) => {
                write!(f, "[")?;
                for (i, o) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, "]")
            }
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        let oid = Oid::new(1, 2);
        assert_eq!(Value::from(oid).as_oid(), Some(oid));
        assert_eq!(Value::from(vec![oid]).as_oid_list(), Some(&[oid][..]));
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(0).value_type(), ValueType::Int);
        assert_eq!(Value::from("x").value_type(), ValueType::Str);
        assert_eq!(Value::from(Oid::new(0, 0)).value_type(), ValueType::Oid);
        assert_eq!(
            Value::from(Vec::<Oid>::new()).value_type(),
            ValueType::OidList
        );
        assert_eq!(Value::from(Vec::<u8>::new()).value_type(), ValueType::Bytes);
    }

    #[test]
    fn bytes_accessor_and_type() {
        let v = Value::Bytes(vec![1, 2, 3]);
        assert_eq!(v.value_type(), ValueType::Bytes);
        assert_eq!(v.as_bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(v.as_int(), None);
        assert_eq!(Value::from(vec![9u8]).as_bytes(), Some(&[9u8][..]));
        assert_eq!(Value::Bytes(vec![0u8; 5]).to_string(), "<5 bytes>");
    }

    #[test]
    fn display_is_readable() {
        let v = Value::OidList(vec![Oid::new(1, 2), Oid::new(1, 3)]);
        assert_eq!(v.to_string(), "[1:2 1:3]");
    }
}
