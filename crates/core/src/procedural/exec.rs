//! Query processing over the procedural representation.
//!
//! The caching mode (none / outside values / outside OIDs / inside values)
//! is a property of the database build — the matrix point being studied —
//! so one entry point dispatches on it. All modes answer the same query
//! shape as the OID-representation strategies:
//!
//! ```text
//! retrieve (ParentRel.members.attr) where lo <= ParentRel.OID <= hi
//! ```

use crate::procedural::database::{ProcCaching, ProcDatabase};
use crate::procedural::pcache::CachedResult;
use crate::query::{extract_ret, RetrieveQuery, StrategyOutput, UpdateQuery};
use crate::CorError;
use cor_pagestore::IoDelta;
use cor_relational::Oid;

/// Former name of [`execute_proc_retrieve`].
#[deprecated(
    since = "0.2.0",
    note = "use `cor::Engine::retrieve` on a procedural engine (or `procedural::execute_proc_retrieve`) instead"
)]
pub fn run_proc_retrieve(
    db: &ProcDatabase,
    query: &RetrieveQuery,
) -> Result<StrategyOutput, CorError> {
    execute_proc_retrieve(db, query)
}

/// Run one retrieve over a procedural database under its configured
/// caching mode.
///
/// This is the low-level dispatch behind `cor::Engine::retrieve` for
/// procedural engines.
pub fn execute_proc_retrieve(
    db: &ProcDatabase,
    query: &RetrieveQuery,
) -> Result<StrategyOutput, CorError> {
    let stats = db.pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = db.parents_in_range(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    let mut values = Vec::new();
    for row in &parents {
        match db.caching() {
            ProcCaching::None => {
                for (_, rec) in db.execute_stored(&row.members)? {
                    values.push(extract_ret(&rec, query.attr));
                }
            }
            ProcCaching::OutsideValues(_) => {
                let hashkey = row.members.hashkey();
                let cached = db.outside_cache().probe(hashkey)?;
                match cached {
                    Some(CachedResult::Values(records)) => {
                        for rec in &records {
                            values.push(extract_ret(rec, query.attr));
                        }
                    }
                    Some(CachedResult::Oids(_)) => {
                        unreachable!("values-mode cache holds values")
                    }
                    None => {
                        let result = db.execute_stored(&row.members)?;
                        let records: Vec<Vec<u8>> =
                            result.into_iter().map(|(_, rec)| rec).collect();
                        for rec in &records {
                            values.push(extract_ret(rec, query.attr));
                        }
                        db.outside_cache()
                            .insert(&row.members, &CachedResult::Values(records))?;
                    }
                }
            }
            ProcCaching::OutsideOids(_) => {
                let hashkey = row.members.hashkey();
                let cached = db.outside_cache().probe(hashkey)?;
                match cached {
                    Some(CachedResult::Oids(oids)) => {
                        // Identities cached; values fetched fresh — which
                        // is why value-only updates leave this cache valid.
                        for oid in oids {
                            let rec = fetch_by_oid(db, oid)?;
                            values.push(extract_ret(&rec, query.attr));
                        }
                    }
                    Some(CachedResult::Values(_)) => {
                        unreachable!("oids-mode cache holds oids")
                    }
                    None => {
                        let result = db.execute_stored(&row.members)?;
                        let oids: Vec<Oid> = result.iter().map(|(o, _)| *o).collect();
                        for (_, rec) in &result {
                            values.push(extract_ret(rec, query.attr));
                        }
                        db.outside_cache()
                            .insert(&row.members, &CachedResult::Oids(oids))?;
                    }
                }
            }
            ProcCaching::InsideValues(_) => match &row.cached {
                Some(records) => {
                    db.inside_touch(row.key);
                    for rec in records {
                        values.push(extract_ret(rec, query.attr));
                    }
                }
                None => {
                    let result = db.execute_stored(&row.members)?;
                    let records: Vec<Vec<u8>> = result.into_iter().map(|(_, rec)| rec).collect();
                    for rec in &records {
                        values.push(extract_ret(rec, query.attr));
                    }
                    db.inside_store(row.key, &records)?;
                }
            },
        }
    }
    let s2 = stats.snapshot();

    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}

fn fetch_by_oid(db: &ProcDatabase, oid: Oid) -> Result<Vec<u8>, CorError> {
    db.child_tree(oid.rel)?
        .get(&oid.to_key_bytes())?
        .ok_or(CorError::DanglingOid(oid))
}

/// Apply an update to a procedural database (in-place subobject update
/// plus whatever invalidation the caching mode requires), returning the
/// I/O spent.
pub fn apply_proc_update(db: &ProcDatabase, update: &UpdateQuery) -> Result<IoDelta, CorError> {
    let before = db.pool().stats().snapshot();
    for &oid in &update.targets {
        db.update_child_ret(oid, 0, update.new_ret1)?;
    }
    Ok(db.pool().stats().snapshot().since(&before))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::CHILD_REL_BASE;
    use crate::procedural::database::tiny_spec;
    use crate::query::RetAttr;
    use cor_pagestore::BufferPool;
    use std::sync::Arc;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(32).build())
    }

    fn run(db: &ProcDatabase, lo: u64, hi: u64) -> Vec<i64> {
        let q = RetrieveQuery {
            lo,
            hi,
            attr: RetAttr::Ret1,
        };
        let mut v = execute_proc_retrieve(db, &q).unwrap().values;
        v.sort_unstable();
        v
    }

    /// Expected ret1 values for the tiny_spec parents 0..=3:
    /// p0, p1 -> keys 0..3 (0,10,20,30 each), p2 -> keys 4..7
    /// (40..70), p3 -> ret1 in 80..=200 (80..110).
    fn expected_all() -> Vec<i64> {
        let mut v = vec![
            0, 10, 20, 30, 0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110,
        ];
        v.sort_unstable();
        v
    }

    #[test]
    fn every_caching_mode_computes_the_same_answer() {
        let spec = tiny_spec();
        for caching in [
            ProcCaching::None,
            ProcCaching::OutsideValues(8),
            ProcCaching::OutsideOids(8),
            ProcCaching::InsideValues(8),
        ] {
            let db = ProcDatabase::build(pool(), &spec, caching).unwrap();
            assert_eq!(run(&db, 0, 3), expected_all(), "{caching:?} cold");
            // Warm pass (cache populated) must agree.
            assert_eq!(run(&db, 0, 3), expected_all(), "{caching:?} warm");
        }
    }

    #[test]
    fn outside_value_cache_hits_after_warmup() {
        let db = ProcDatabase::build(pool(), &tiny_spec(), ProcCaching::OutsideValues(8)).unwrap();
        run(&db, 0, 3);
        run(&db, 0, 3);
        let c = db.cache_counters();
        assert!(c.hits > 0);
        // p0 and p1 share the stored query: only 3 distinct queries cached.
        assert!(c.insertions <= 3, "insertions = {}", c.insertions);
    }

    #[test]
    fn updates_are_visible_under_every_mode() {
        let spec = tiny_spec();
        for caching in [
            ProcCaching::None,
            ProcCaching::OutsideValues(8),
            ProcCaching::OutsideOids(8),
            ProcCaching::InsideValues(8),
        ] {
            let db = ProcDatabase::build(pool(), &spec, caching).unwrap();
            run(&db, 0, 3); // warm caches
                            // Subobject 2 (ret1 = 20, in p0/p1's range): set ret1 = 25.
            let upd = UpdateQuery {
                targets: vec![Oid::new(CHILD_REL_BASE, 2)],
                new_ret1: 25,
            };
            apply_proc_update(&db, &upd).unwrap();
            let got = run(&db, 0, 1);
            let mut expect = vec![0, 10, 25, 30, 0, 10, 25, 30];
            expect.sort_unstable();
            assert_eq!(got, expect, "{caching:?} served stale data");
        }
    }

    #[test]
    fn membership_change_updates_ret_range_queries() {
        // Moving a subobject's ret1 into p3's 80..=200 range must show up
        // in p3's result under every caching mode.
        let spec = tiny_spec();
        for caching in [
            ProcCaching::None,
            ProcCaching::OutsideValues(8),
            ProcCaching::OutsideOids(8),
            ProcCaching::InsideValues(8),
        ] {
            let db = ProcDatabase::build(pool(), &spec, caching).unwrap();
            let before = run(&db, 3, 3);
            assert_eq!(before, vec![80, 90, 100, 110]);
            let upd = UpdateQuery {
                targets: vec![Oid::new(CHILD_REL_BASE, 0)],
                new_ret1: 150,
            };
            apply_proc_update(&db, &upd).unwrap();
            let after = run(&db, 3, 3);
            assert_eq!(
                after,
                vec![80, 90, 100, 110, 150],
                "{caching:?} missed the new member"
            );
        }
    }

    #[test]
    fn oid_cache_survives_value_update_but_returns_fresh_values() {
        let db = ProcDatabase::build(pool(), &tiny_spec(), ProcCaching::OutsideOids(8)).unwrap();
        run(&db, 2, 2); // cache p2's OID list (keys 4..7)
        let inserted = db.cache_counters().insertions;
        // ret1 of key 5: 50 -> 55. Key-range membership is unchanged, so
        // the OID list stays cached, yet the fresh value must be returned.
        let upd = UpdateQuery {
            targets: vec![Oid::new(CHILD_REL_BASE, 5)],
            new_ret1: 55,
        };
        apply_proc_update(&db, &upd).unwrap();
        assert_eq!(run(&db, 2, 2), vec![40, 55, 60, 70]);
        let c = db.cache_counters();
        assert_eq!(c.invalidations, 0, "membership unchanged: no invalidation");
        assert_eq!(c.insertions, inserted, "no re-materialization needed");
        assert!(c.hits > 0);
    }
}
