//! Stored procedural queries (Sec. 2.1.1).
//!
//! "In a procedural representation, the set of subobjects associated with
//! an object is identified by a procedure, which, when executed, evaluates
//! to the corresponding subobjects. For our purposes, this procedure is a
//! retrieve-only query on the underlying database."
//!
//! The paper (and POSTGRES, which supports this representation) stores
//! the procedure as QUEL text, e.g.
//! `retrieve (person.all) where person.age >= 60`. [`StoredQuery`]
//! round-trips through exactly that surface syntax, restricted to the
//! shapes the experiments need: a key range or a single-attribute value
//! range over one ChildRel.

use cor_access::fnv1a64;
use cor_relational::{Oid, RelId};

/// A retrieve-only query identifying an object's subobjects.
///
/// ```
/// use complexobj::procedural::StoredQuery;
///
/// let q = StoredQuery::RetRange { rel: 10, ret_idx: 0, lo: 60, hi: i64::MAX };
/// let text = q.to_quel();
/// assert_eq!(text, "retrieve (child10.all) where 60 <= child10.ret1 <= 9223372036854775807");
/// assert_eq!(StoredQuery::parse_quel(&text).unwrap(), q);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StoredQuery {
    /// `retrieve (childN.all) where lo <= childN.OID <= hi`
    KeyRange {
        /// The ChildRel queried.
        rel: RelId,
        /// Lowest qualifying primary key.
        lo: u64,
        /// Highest qualifying primary key (inclusive).
        hi: u64,
    },
    /// `retrieve (childN.all) where lo <= childN.retI <= hi`
    RetRange {
        /// The ChildRel queried.
        rel: RelId,
        /// Which `ret` attribute (0-based: 0 → ret1).
        ret_idx: usize,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
}

impl StoredQuery {
    /// The relation this query ranges over.
    pub fn relation(&self) -> RelId {
        match self {
            StoredQuery::KeyRange { rel, .. } | StoredQuery::RetRange { rel, .. } => *rel,
        }
    }

    /// Does a subobject with this OID and these `ret` values qualify?
    pub fn matches(&self, oid: Oid, rets: &[i64; 3]) -> bool {
        match self {
            StoredQuery::KeyRange { rel, lo, hi } => {
                oid.rel == *rel && (*lo..=*hi).contains(&oid.key)
            }
            StoredQuery::RetRange {
                rel,
                ret_idx,
                lo,
                hi,
            } => oid.rel == *rel && (*lo..=*hi).contains(&rets[*ret_idx]),
        }
    }

    /// Cache identity of this procedure: outside caching shares cached
    /// results between objects storing the *same* query, so the hashkey is
    /// a function of the (canonical) query text.
    pub fn hashkey(&self) -> u64 {
        fnv1a64(self.to_quel().as_bytes())
    }

    /// Render as QUEL surface syntax.
    pub fn to_quel(&self) -> String {
        match self {
            StoredQuery::KeyRange { rel, lo, hi } => {
                format!("retrieve (child{rel}.all) where {lo} <= child{rel}.OID <= {hi}")
            }
            StoredQuery::RetRange {
                rel,
                ret_idx,
                lo,
                hi,
            } => {
                let attr = ret_idx + 1;
                format!("retrieve (child{rel}.all) where {lo} <= child{rel}.ret{attr} <= {hi}")
            }
        }
    }

    /// Parse the QUEL surface syntax produced by [`Self::to_quel`].
    pub fn parse_quel(text: &str) -> Result<StoredQuery, QuelParseError> {
        let text = text.trim();
        let rest = text
            .strip_prefix("retrieve (child")
            .ok_or(QuelParseError::Shape("missing 'retrieve (child' prefix"))?;
        let (rel_str, rest) = rest
            .split_once(".all) where ")
            .ok_or(QuelParseError::Shape("missing '.all) where '"))?;
        let rel: RelId = rel_str
            .parse()
            .map_err(|_| QuelParseError::Number("relation id"))?;

        // "<lo> <= child<rel>.<attr> <= <hi>"
        let mut parts = rest.split(" <= ");
        let lo_str = parts
            .next()
            .ok_or(QuelParseError::Shape("missing lower bound"))?;
        let attr_ref = parts
            .next()
            .ok_or(QuelParseError::Shape("missing attribute"))?;
        let hi_str = parts
            .next()
            .ok_or(QuelParseError::Shape("missing upper bound"))?;
        if parts.next().is_some() {
            return Err(QuelParseError::Shape("too many comparisons"));
        }

        let expected_prefix = format!("child{rel}.");
        let attr = attr_ref
            .strip_prefix(&expected_prefix)
            .ok_or(QuelParseError::Shape(
                "attribute references a different relation",
            ))?;
        match attr {
            "OID" => Ok(StoredQuery::KeyRange {
                rel,
                lo: lo_str
                    .parse()
                    .map_err(|_| QuelParseError::Number("key lower bound"))?,
                hi: hi_str
                    .parse()
                    .map_err(|_| QuelParseError::Number("key upper bound"))?,
            }),
            "ret1" | "ret2" | "ret3" => Ok(StoredQuery::RetRange {
                rel,
                ret_idx: (attr.as_bytes()[3] - b'1') as usize,
                lo: lo_str
                    .parse()
                    .map_err(|_| QuelParseError::Number("value lower bound"))?,
                hi: hi_str
                    .parse()
                    .map_err(|_| QuelParseError::Number("value upper bound"))?,
            }),
            other => Err(QuelParseError::UnknownAttribute(other.to_string())),
        }
    }

    /// Can this query be answered with an index range scan (true) or does
    /// it need a full relation scan (false)? ChildRels are B-trees on OID
    /// and carry no secondary indexes on `ret` attributes.
    pub fn is_indexable(&self) -> bool {
        matches!(self, StoredQuery::KeyRange { .. })
    }
}

impl std::fmt::Display for StoredQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_quel())
    }
}

/// Errors from parsing stored-query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuelParseError {
    /// The text does not have the expected overall shape.
    Shape(&'static str),
    /// A numeric literal failed to parse.
    Number(&'static str),
    /// The attribute is not OID or ret1..ret3.
    UnknownAttribute(String),
}

impl std::fmt::Display for QuelParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuelParseError::Shape(s) => write!(f, "malformed stored query: {s}"),
            QuelParseError::Number(what) => write!(f, "malformed number in {what}"),
            QuelParseError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
        }
    }
}

impl std::error::Error for QuelParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quel_roundtrip_key_range() {
        let q = StoredQuery::KeyRange {
            rel: 10,
            lo: 100,
            hi: 250,
        };
        let text = q.to_quel();
        assert_eq!(
            text,
            "retrieve (child10.all) where 100 <= child10.OID <= 250"
        );
        assert_eq!(StoredQuery::parse_quel(&text), Ok(q));
    }

    #[test]
    fn quel_roundtrip_ret_range() {
        let q = StoredQuery::RetRange {
            rel: 11,
            ret_idx: 0,
            lo: 60,
            hi: i64::MAX,
        };
        let text = q.to_quel();
        assert!(text.contains("child11.ret1"));
        assert_eq!(StoredQuery::parse_quel(&text), Ok(q));
        // Negative bounds round-trip too.
        let q = StoredQuery::RetRange {
            rel: 10,
            ret_idx: 2,
            lo: -50,
            hi: -1,
        };
        assert_eq!(StoredQuery::parse_quel(&q.to_quel()), Ok(q));
    }

    #[test]
    fn parse_rejects_malformed_text() {
        for bad in [
            "",
            "select * from person",
            "retrieve (child10.all) where",
            "retrieve (childX.all) where 1 <= childX.OID <= 2",
            "retrieve (child10.all) where 1 <= child11.OID <= 2",
            "retrieve (child10.all) where 1 <= child10.age <= 2",
            "retrieve (child10.all) where 1 <= child10.OID <= 2 <= 3",
        ] {
            assert!(StoredQuery::parse_quel(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn matches_respects_bounds_and_relation() {
        let q = StoredQuery::KeyRange {
            rel: 10,
            lo: 5,
            hi: 9,
        };
        assert!(q.matches(Oid::new(10, 5), &[0, 0, 0]));
        assert!(q.matches(Oid::new(10, 9), &[0, 0, 0]));
        assert!(!q.matches(Oid::new(10, 10), &[0, 0, 0]));
        assert!(!q.matches(Oid::new(11, 5), &[0, 0, 0]));

        let q = StoredQuery::RetRange {
            rel: 10,
            ret_idx: 1,
            lo: 60,
            hi: 100,
        };
        assert!(q.matches(Oid::new(10, 0), &[0, 60, 0]));
        assert!(!q.matches(Oid::new(10, 0), &[60, 0, 0]), "wrong attribute");
        assert!(!q.matches(Oid::new(10, 0), &[0, 59, 0]));
    }

    #[test]
    fn hashkey_shared_by_identical_queries_only() {
        let a = StoredQuery::KeyRange {
            rel: 10,
            lo: 0,
            hi: 9,
        };
        let b = StoredQuery::KeyRange {
            rel: 10,
            lo: 0,
            hi: 9,
        };
        let c = StoredQuery::KeyRange {
            rel: 10,
            lo: 0,
            hi: 10,
        };
        assert_eq!(a.hashkey(), b.hashkey());
        assert_ne!(a.hashkey(), c.hashkey());
    }

    #[test]
    fn indexability() {
        assert!(StoredQuery::KeyRange {
            rel: 10,
            lo: 0,
            hi: 1
        }
        .is_indexable());
        assert!(!StoredQuery::RetRange {
            rel: 10,
            ret_idx: 0,
            lo: 0,
            hi: 1
        }
        .is_indexable());
    }
}
