//! Outside caching for procedural representations (Sec. 2.3, \[JHIN88\]).
//!
//! "In outside caching, the relevant information of subobjects is cached
//! away from the object that references them. These cached values can be
//! shared with other objects that reference exactly the same set of
//! subobjects." For procedures, "the same set" means *the same stored
//! query*: the cache is keyed by the query's hashkey.
//!
//! Both cached representations of Fig. 1's procedural column are
//! supported:
//!
//! * **cached OIDs** — the identities of the qualifying subobjects. An
//!   update invalidates a cached entry only if it changes *membership*
//!   (the updated tuple enters or leaves the query's result); value-only
//!   changes stay valid because values are re-fetched on every hit.
//! * **cached values** — the full result. Any update touching a tuple
//!   that matches the query (before or after) invalidates.

use crate::cache::{decode_unit_value, encode_unit_value, CacheCounters};
use crate::procedural::predicate::StoredQuery;
use cor_access::{AccessError, HashFile};
use cor_obs::{Phase, PhaseGuard};
use cor_pagestore::BufferPool;
use cor_relational::{Oid, OID_BYTES};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// What a procedural cache stores per query (the cached-representation
/// axis of the matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcCachedKind {
    /// Cache the OIDs of the result.
    Oids,
    /// Cache the values (records) of the result.
    Values,
}

/// A cached query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedResult {
    /// Result identities.
    Oids(Vec<Oid>),
    /// Result records.
    Values(Vec<Vec<u8>>),
}

impl CachedResult {
    fn encode(&self) -> Vec<u8> {
        match self {
            CachedResult::Values(records) => {
                let mut out = vec![b'V'];
                out.extend_from_slice(&encode_unit_value(records));
                out
            }
            CachedResult::Oids(oids) => {
                let mut out = Vec::with_capacity(1 + 2 + oids.len() * OID_BYTES);
                out.push(b'O');
                out.extend_from_slice(&(oids.len() as u16).to_le_bytes());
                for o in oids {
                    out.extend_from_slice(&o.to_key_bytes());
                }
                out
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<CachedResult> {
        match bytes.first()? {
            b'V' => Some(CachedResult::Values(decode_unit_value(&bytes[1..])?)),
            b'O' => {
                let bytes = &bytes[1..];
                if bytes.len() < 2 {
                    return None;
                }
                let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
                let mut oids = Vec::with_capacity(n);
                let mut rest = &bytes[2..];
                for _ in 0..n {
                    if rest.len() < OID_BYTES {
                        return None;
                    }
                    oids.push(Oid::from_key_bytes(&rest[..OID_BYTES])?);
                    rest = &rest[OID_BYTES..];
                }
                Some(CachedResult::Oids(oids))
            }
            _ => None,
        }
    }
}

struct Meta {
    query: StoredQuery,
    kind: ProcCachedKind,
    tick: u64,
}

/// Bounded, disk-resident, LRU cache of stored-query results, shared by
/// every object storing the same query.
pub struct ProcCache {
    file: HashFile,
    capacity: usize,
    entries: HashMap<u64, Meta>,
    lru: BTreeMap<u64, u64>,
    tick: u64,
    counters: CacheCounters,
}

impl ProcCache {
    /// Create an empty cache bounded at `capacity` query results.
    pub fn new(pool: Arc<BufferPool>, capacity: usize) -> Result<Self, AccessError> {
        assert!(capacity > 0, "cache capacity must be positive");
        let file = HashFile::create(pool, (capacity / 2).max(16))?;
        Ok(ProcCache {
            file,
            capacity,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            counters: CacheCounters::default(),
        })
    }

    /// Number of cached query results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/maintenance counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Presence check through the in-memory directory (no I/O).
    pub fn is_cached(&self, hashkey: u64) -> bool {
        self.entries.contains_key(&hashkey)
    }

    fn touch(&mut self, hashkey: u64) {
        if let Some(meta) = self.entries.get_mut(&hashkey) {
            self.lru.remove(&meta.tick);
            self.tick += 1;
            meta.tick = self.tick;
            self.lru.insert(self.tick, hashkey);
        }
    }

    /// Probe for a cached result: directory check is free, reading the
    /// value costs real I/O against the hash relation.
    pub fn probe(&mut self, hashkey: u64) -> Result<Option<CachedResult>, AccessError> {
        if !self.entries.contains_key(&hashkey) {
            self.counters.misses += 1;
            return Ok(None);
        }
        let _phase = PhaseGuard::enter(Phase::CacheProbe);
        let bytes = self
            .file
            .get(&hashkey.to_le_bytes())?
            .expect("directory and hash relation must agree");
        self.counters.hits += 1;
        self.touch(hashkey);
        Ok(Some(
            CachedResult::decode(&bytes).expect("cached result must decode"),
        ))
    }

    /// Cache a freshly evaluated query result. Returns `false` (caching
    /// skipped) when the encoded result exceeds what one hash-file record
    /// can hold — large query results are simply not cacheable, as a page
    /// bound on cached tuples would dictate.
    pub fn insert(
        &mut self,
        query: &StoredQuery,
        result: &CachedResult,
    ) -> Result<bool, AccessError> {
        let _phase = PhaseGuard::enter(Phase::CacheMaintain);
        let hashkey = query.hashkey();
        let encoded = result.encode();
        if encoded.len() + 8 + 2 > cor_pagestore::MAX_RECORD {
            return Ok(false);
        }
        let kind = match result {
            CachedResult::Oids(_) => ProcCachedKind::Oids,
            CachedResult::Values(_) => ProcCachedKind::Values,
        };
        if self.entries.contains_key(&hashkey) {
            self.file.put(&hashkey.to_le_bytes(), &encoded)?;
            self.touch(hashkey);
            return Ok(true);
        }
        while self.entries.len() >= self.capacity {
            let Some((&tick, _)) = self.lru.iter().next() else {
                break;
            };
            let victim = self.lru.remove(&tick).expect("victim exists");
            self.entries.remove(&victim);
            self.file.delete(&victim.to_le_bytes())?;
            self.counters.evictions += 1;
        }
        self.file.put(&hashkey.to_le_bytes(), &encoded)?;
        self.tick += 1;
        self.entries.insert(
            hashkey,
            Meta {
                query: query.clone(),
                kind,
                tick: self.tick,
            },
        );
        self.lru.insert(self.tick, hashkey);
        self.counters.insertions += 1;
        Ok(true)
    }

    /// A subobject changed from `old_rets` to `new_rets`: invalidate every
    /// cached query this affects, per the kind-specific rule.
    pub fn invalidate_for_update(
        &mut self,
        oid: Oid,
        old_rets: &[i64; 3],
        new_rets: &[i64; 3],
    ) -> Result<usize, AccessError> {
        let _phase = PhaseGuard::enter(Phase::CacheMaintain);
        let victims: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, meta)| {
                let was = meta.query.matches(oid, old_rets);
                let is = meta.query.matches(oid, new_rets);
                match meta.kind {
                    // Values go stale whenever a matching tuple changed.
                    ProcCachedKind::Values => was || is,
                    // OID lists go stale only when membership changed.
                    ProcCachedKind::Oids => was != is,
                }
            })
            .map(|(&hk, _)| hk)
            .collect();
        for hk in &victims {
            let meta = self.entries.remove(hk).expect("victim tracked");
            self.lru.remove(&meta.tick);
            self.file.delete(&hk.to_le_bytes())?;
            self.counters.invalidations += 1;
        }
        Ok(victims.len())
    }

    /// Snapshot the cache for the engine catalog. Directory entries are
    /// stored as `(QUEL text, kind)` in LRU order; hashkeys are
    /// recomputed from the reparsed queries at reattach.
    pub fn save_state(&self) -> crate::persist::SavedProcCache {
        crate::persist::SavedProcCache {
            file: self.file.metadata(),
            capacity: self.capacity,
            entries: self
                .lru
                .values()
                .map(|hk| {
                    let meta = &self.entries[hk];
                    (
                        meta.query.to_quel(),
                        match meta.kind {
                            ProcCachedKind::Oids => 0,
                            ProcCachedKind::Values => 1,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Reattach to a snapshotted cache, dropping directory entries whose
    /// record no longer exists in the recovered hash relation (see
    /// [`UnitCache::reattach`](crate::UnitCache::reattach) for the
    /// one-way reconcile contract). Returns the cache and the number of
    /// dropped entries.
    pub fn reattach(
        pool: Arc<BufferPool>,
        saved: &crate::persist::SavedProcCache,
    ) -> Result<(Self, usize), AccessError> {
        assert!(saved.capacity > 0, "cache capacity must be positive");
        let file = HashFile::from_metadata(pool, saved.file);
        let mut cache = ProcCache {
            file,
            capacity: saved.capacity,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            counters: CacheCounters::default(),
        };
        let mut dropped = 0;
        for (quel, kind_tag) in &saved.entries {
            let query = StoredQuery::parse_quel(quel)
                .expect("stored-query text written by this cache must parse");
            let hashkey = query.hashkey();
            if cache.file.get(&hashkey.to_le_bytes())?.is_none() {
                dropped += 1;
                continue;
            }
            let kind = match kind_tag {
                0 => ProcCachedKind::Oids,
                _ => ProcCachedKind::Values,
            };
            cache.tick += 1;
            cache.entries.insert(
                hashkey,
                Meta {
                    query,
                    kind,
                    tick: cache.tick,
                },
            );
            cache.lru.insert(cache.tick, hashkey);
        }
        Ok((cache, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(32).build())
    }

    fn key_query(lo: u64, hi: u64) -> StoredQuery {
        StoredQuery::KeyRange { rel: 10, lo, hi }
    }

    fn ret_query(lo: i64, hi: i64) -> StoredQuery {
        StoredQuery::RetRange {
            rel: 10,
            ret_idx: 0,
            lo,
            hi,
        }
    }

    #[test]
    fn cached_result_codec_roundtrip() {
        let v = CachedResult::Values(vec![b"abc".to_vec(), vec![9u8; 50]]);
        assert_eq!(CachedResult::decode(&v.encode()), Some(v));
        let o = CachedResult::Oids(vec![Oid::new(10, 1), Oid::new(10, 99)]);
        assert_eq!(CachedResult::decode(&o.encode()), Some(o));
        assert_eq!(CachedResult::decode(b""), None);
        assert_eq!(CachedResult::decode(b"X123"), None);
    }

    #[test]
    fn probe_insert_roundtrip() {
        let mut c = ProcCache::new(pool(), 8).unwrap();
        let q = key_query(0, 4);
        assert_eq!(c.probe(q.hashkey()).unwrap(), None);
        let result = CachedResult::Values(vec![b"r0".to_vec()]);
        assert!(c.insert(&q, &result).unwrap());
        assert_eq!(c.probe(q.hashkey()).unwrap(), Some(result));
        assert!(c.is_cached(q.hashkey()));
    }

    #[test]
    fn value_cache_invalidated_by_any_matching_update() {
        let mut c = ProcCache::new(pool(), 8).unwrap();
        let q = ret_query(60, 100); // e.g. elders: 60 <= ret1 <= 100
        c.insert(&q, &CachedResult::Values(vec![b"mary".to_vec()]))
            .unwrap();
        // Mary's age changes 62 -> 63: still a member, but the cached
        // value is stale.
        let n = c
            .invalidate_for_update(Oid::new(10, 1), &[62, 0, 0], &[63, 0, 0])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(c.probe(q.hashkey()).unwrap(), None);
    }

    #[test]
    fn oid_cache_survives_value_only_updates() {
        let mut c = ProcCache::new(pool(), 8).unwrap();
        let q = ret_query(60, 100);
        let oids = CachedResult::Oids(vec![Oid::new(10, 1)]);
        c.insert(&q, &oids).unwrap();
        // 62 -> 63: membership unchanged, OID list stays valid.
        let n = c
            .invalidate_for_update(Oid::new(10, 1), &[62, 0, 0], &[63, 0, 0])
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(c.probe(q.hashkey()).unwrap(), Some(oids));
        // 62 -> 30: Mary leaves the result; the OID list is stale.
        let n = c
            .invalidate_for_update(Oid::new(10, 1), &[62, 0, 0], &[30, 0, 0])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(c.probe(q.hashkey()).unwrap(), None);
    }

    #[test]
    fn unrelated_updates_invalidate_nothing() {
        let mut c = ProcCache::new(pool(), 8).unwrap();
        c.insert(&key_query(0, 4), &CachedResult::Values(vec![b"x".to_vec()]))
            .unwrap();
        // A key outside the range, values irrelevant for KeyRange.
        let n = c
            .invalidate_for_update(Oid::new(10, 99), &[1, 1, 1], &[2, 2, 2])
            .unwrap();
        assert_eq!(n, 0);
        // Another relation entirely.
        let n = c
            .invalidate_for_update(Oid::new(11, 2), &[1, 1, 1], &[2, 2, 2])
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn key_range_cache_invalidated_by_in_range_update() {
        let mut c = ProcCache::new(pool(), 8).unwrap();
        let q = key_query(0, 4);
        c.insert(&q, &CachedResult::Values(vec![b"x".to_vec()]))
            .unwrap();
        let n = c
            .invalidate_for_update(Oid::new(10, 2), &[1, 0, 0], &[5, 0, 0])
            .unwrap();
        assert_eq!(
            n, 1,
            "value cache over a key range is stale after any in-range update"
        );
    }

    #[test]
    fn capacity_bound_holds() {
        let mut c = ProcCache::new(pool(), 3).unwrap();
        for i in 0..10u64 {
            c.insert(
                &key_query(i, i + 1),
                &CachedResult::Values(vec![b"v".to_vec()]),
            )
            .unwrap();
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.counters().evictions, 7);
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let mut c = ProcCache::new(pool(), 8).unwrap();
        // ~2.5 KB of records exceeds a 2 KB page: caching is skipped.
        let big = CachedResult::Values((0..40).map(|_| vec![1u8; 60]).collect());
        let q = key_query(0, 1000);
        assert!(!c.insert(&q, &big).unwrap());
        assert!(!c.is_cached(q.hashkey()));
        assert_eq!(c.counters().insertions, 0);
        // A result that fits is cached normally.
        let small = CachedResult::Values((0..5).map(|_| vec![1u8; 60]).collect());
        assert!(c.insert(&key_query(0, 4), &small).unwrap());
    }
}
