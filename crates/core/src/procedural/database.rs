//! The procedural-representation database (Sec. 2.1.1 / 2.3, the
//! \[JHIN88\] column of the representation matrix).
//!
//! ParentRel stores the *query text* identifying each object's subobjects
//! (as POSTGRES procedural attributes do), plus a `cached` byte column
//! used by **inside caching** — cached results stored "with the
//! referencing object", where "there can be no sharing of cached
//! information". **Outside caching** lives in a separate shared
//! [`super::pcache::ProcCache`].

use crate::cache::{decode_unit_value, encode_unit_value, CacheCounters, LruSet};
use crate::database::{SubobjectSpec, CHILD_REL_BASE};
use crate::procedural::pcache::ProcCache;
use crate::procedural::predicate::StoredQuery;
use crate::query::extract_ret;
use crate::CorError;
use cor_access::{decode, encode, BTreeFile, DEFAULT_FILL};
use cor_pagestore::BufferPool;
use cor_relational::{Oid, RelId, Schema, Tuple, Value, ValueType};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// Relation id of the procedural ParentRel.
pub const PROC_PARENT_REL: RelId = 2;

/// Encoded `(key, record)` pairs ready for a bulk load.
type LoadEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Schema of the procedural ParentRel.
pub fn proc_parent_schema() -> Schema {
    Schema::new(&[
        ("oid", ValueType::Oid),
        ("ret1", ValueType::Int),
        ("ret2", ValueType::Int),
        ("ret3", ValueType::Int),
        ("dummy", ValueType::Str),
        ("members", ValueType::Str),  // the stored QUEL text
        ("cached", ValueType::Bytes), // inside-cached result (empty = none)
    ])
}

/// Logical contents of one procedural complex object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcObjectSpec {
    /// Primary key.
    pub key: u64,
    /// The three retrievable attributes.
    pub rets: [i64; 3],
    /// Pad field.
    pub dummy: String,
    /// The stored query identifying the subobjects.
    pub members: StoredQuery,
}

/// Logical contents of a procedural database.
#[derive(Debug, Clone, Default)]
pub struct ProcDatabaseSpec {
    /// Objects, ascending by key.
    pub parents: Vec<ProcObjectSpec>,
    /// Subobject relations, each ascending by OID.
    pub child_rels: Vec<Vec<SubobjectSpec>>,
}

/// Caching configuration for a procedural database (the cached-repr axis
/// crossed with the placement axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcCaching {
    /// No caching: execute the stored query every time.
    None,
    /// Outside cache of result values, bounded to this many entries.
    OutsideValues(usize),
    /// Outside cache of result OIDs, bounded to this many entries.
    OutsideOids(usize),
    /// Inside caching: values materialized into the parent tuple itself,
    /// bounded to this many parents holding a copy (cache space is disk
    /// space either way, so both placements honour `SizeCache`).
    InsideValues(usize),
}

/// One qualifying parent from a range scan.
#[derive(Debug, Clone)]
pub struct ProcParentRow {
    /// Primary key.
    pub key: u64,
    /// The stored query (parsed from the tuple's QUEL text).
    pub members: StoredQuery,
    /// Inside-cached result records, if any.
    pub cached: Option<Vec<Vec<u8>>>,
}

/// A loaded procedural-representation database.
pub struct ProcDatabase {
    pool: Arc<BufferPool>,
    parent: BTreeFile,
    children: Vec<BTreeFile>,
    caching: ProcCaching,
    outside: Option<Mutex<ProcCache>>,
    /// Inside caching bookkeeping: which parents hold a cached copy (LRU
    /// over parents), and which parents store which query (invalidation
    /// fan-out).
    inside_cached: Mutex<LruSet>,
    by_query: HashMap<u64, (StoredQuery, Vec<u64>)>,
    inside_counters: Mutex<CacheCounters>,
    parent_schema: Schema,
    parent_count: u64,
}

impl ProcDatabase {
    /// Build from a spec with the requested caching mode.
    pub fn build(
        pool: Arc<BufferPool>,
        spec: &ProcDatabaseSpec,
        caching: ProcCaching,
    ) -> Result<Self, CorError> {
        let pschema = proc_parent_schema();
        let cschema = crate::database::child_schema();

        let mut by_query: HashMap<u64, (StoredQuery, Vec<u64>)> = HashMap::new();
        let parent_entries: Result<LoadEntries, CorError> = spec
            .parents
            .iter()
            .map(|o| {
                by_query
                    .entry(o.members.hashkey())
                    .or_insert_with(|| (o.members.clone(), Vec::new()))
                    .1
                    .push(o.key);
                let key = Oid::new(PROC_PARENT_REL, o.key).to_key_bytes().to_vec();
                let tuple = Tuple::new(vec![
                    Value::Oid(Oid::new(PROC_PARENT_REL, o.key)),
                    Value::Int(o.rets[0]),
                    Value::Int(o.rets[1]),
                    Value::Int(o.rets[2]),
                    Value::Str(o.dummy.clone()),
                    Value::Str(o.members.to_quel()),
                    Value::Bytes(Vec::new()),
                ]);
                Ok((key, encode(&pschema, &tuple)?))
            })
            .collect();
        let parent = BTreeFile::bulk_load(Arc::clone(&pool), 10, parent_entries?, DEFAULT_FILL)?;

        let mut children = Vec::with_capacity(spec.child_rels.len());
        for rel in &spec.child_rels {
            let entries: Result<LoadEntries, CorError> = rel
                .iter()
                .map(|s| {
                    let tuple = Tuple::new(vec![
                        Value::Oid(s.oid),
                        Value::Int(s.rets[0]),
                        Value::Int(s.rets[1]),
                        Value::Int(s.rets[2]),
                        Value::Str(s.dummy.clone()),
                    ]);
                    Ok((s.oid.to_key_bytes().to_vec(), encode(&cschema, &tuple)?))
                })
                .collect();
            children.push(BTreeFile::bulk_load(
                Arc::clone(&pool),
                10,
                entries?,
                DEFAULT_FILL,
            )?);
        }

        let outside = match caching {
            ProcCaching::OutsideValues(cap) | ProcCaching::OutsideOids(cap) => {
                Some(Mutex::new(ProcCache::new(Arc::clone(&pool), cap)?))
            }
            _ => None,
        };

        Ok(ProcDatabase {
            pool,
            parent,
            children,
            caching,
            outside,
            inside_cached: Mutex::new(LruSet::default()),
            by_query,
            inside_counters: Mutex::new(CacheCounters::default()),
            parent_schema: pschema,
            parent_count: spec.parents.len() as u64,
        })
    }

    /// Snapshot this database for the engine catalog.
    pub fn save_state(&self) -> crate::persist::SavedProcDb {
        crate::persist::SavedProcDb {
            parent: self.parent.metadata(),
            children: self.children.iter().map(|c| c.metadata()).collect(),
            parent_schema: self.parent_schema.clone(),
            parent_count: self.parent_count,
            caching: self.caching,
            outside: self.outside.as_ref().map(|c| c.lock().save_state()),
        }
    }

    /// Reconstruct a database from a catalog snapshot over an
    /// already-recovered pool. The `by_query` invalidation index and the
    /// inside-holder set are rebuilt by scanning ParentRel — the stored
    /// QUEL texts and `cached` columns are the durable truth — and an
    /// outside cache is reconciled against its recovered hash relation.
    pub fn open_state(
        pool: Arc<BufferPool>,
        saved: &crate::persist::SavedProcDb,
    ) -> Result<Self, CorError> {
        let parent = BTreeFile::from_metadata(Arc::clone(&pool), saved.parent)?;
        let children = saved
            .children
            .iter()
            .map(|m| BTreeFile::from_metadata(Arc::clone(&pool), *m))
            .collect::<Result<Vec<_>, _>>()?;
        let outside = match (&saved.outside, saved.caching) {
            (Some(sc), ProcCaching::OutsideValues(_) | ProcCaching::OutsideOids(_)) => {
                let (c, _dropped) = ProcCache::reattach(Arc::clone(&pool), sc)?;
                Some(Mutex::new(c))
            }
            _ => None,
        };
        let mut db = ProcDatabase {
            pool,
            parent,
            children,
            caching: saved.caching,
            outside,
            inside_cached: Mutex::new(LruSet::default()),
            by_query: HashMap::new(),
            inside_counters: Mutex::new(CacheCounters::default()),
            parent_schema: saved.parent_schema.clone(),
            parent_count: saved.parent_count,
        };
        let rows = db.parents_in_range(0, u64::MAX)?;
        let mut by_query: HashMap<u64, (StoredQuery, Vec<u64>)> = HashMap::new();
        {
            let mut lru = db.inside_cached.lock();
            for row in &rows {
                by_query
                    .entry(row.members.hashkey())
                    .or_insert_with(|| (row.members.clone(), Vec::new()))
                    .1
                    .push(row.key);
                if row.cached.is_some() {
                    lru.touch(row.key);
                }
            }
        }
        db.by_query = by_query;
        Ok(db)
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// ParentRel cardinality.
    pub fn parent_count(&self) -> u64 {
        self.parent_count
    }

    /// The configured caching mode.
    pub fn caching(&self) -> ProcCaching {
        self.caching
    }

    /// Cache counters: the outside cache's, or the inside bookkeeping's.
    pub fn cache_counters(&self) -> CacheCounters {
        match &self.outside {
            Some(c) => c.lock().counters(),
            None => *self.inside_counters.lock(),
        }
    }

    /// Borrow the outside cache (panics if the mode has none — callers
    /// dispatch on [`Self::caching`]).
    pub(crate) fn outside_cache(&self) -> MutexGuard<'_, ProcCache> {
        self.outside
            .as_ref()
            .expect("outside cache configured")
            .lock()
    }

    /// The ChildRel B-tree for `rel`.
    pub fn child_tree(&self, rel: RelId) -> Result<&BTreeFile, CorError> {
        let idx = rel.checked_sub(CHILD_REL_BASE).map(usize::from);
        idx.and_then(|i| self.children.get(i))
            .ok_or(CorError::UnknownRelation(rel))
    }

    /// Scan the qualifying objects of `lo <= OID <= hi`.
    pub fn parents_in_range(&self, lo: u64, hi: u64) -> Result<Vec<ProcParentRow>, CorError> {
        let lo_k = Oid::new(PROC_PARENT_REL, lo).to_key_bytes();
        let hi_k = Oid::new(PROC_PARENT_REL, hi).to_key_bytes();
        let mut out = Vec::new();
        for (_, rec) in self.parent.range(&lo_k, &hi_k)? {
            let t = decode(&self.parent_schema, &rec)?;
            let key = t.get(0).as_oid().expect("oid column").key;
            let text = t.get(5).as_str().expect("members column");
            let members = StoredQuery::parse_quel(text)
                .expect("stored query text written by this database must parse");
            let cached_bytes = t.get(6).as_bytes().expect("cached column");
            let cached = if cached_bytes.is_empty() {
                None
            } else {
                Some(decode_unit_value(cached_bytes).expect("inside-cached payload decodes"))
            };
            out.push(ProcParentRow {
                key,
                members,
                cached,
            });
        }
        Ok(out)
    }

    /// Execute a stored query against the base relations, returning the
    /// qualifying `(oid, record)` pairs. Key ranges use the ChildRel
    /// B-tree; value ranges have no index and scan the relation — exactly
    /// the cost asymmetry that makes caching attractive for procedural
    /// representations.
    pub fn execute_stored(&self, q: &StoredQuery) -> Result<Vec<(Oid, Vec<u8>)>, CorError> {
        let tree = self.child_tree(q.relation())?;
        match q {
            StoredQuery::KeyRange { rel, lo, hi } => {
                let lo_k = Oid::new(*rel, *lo).to_key_bytes();
                let hi_k = Oid::new(*rel, *hi).to_key_bytes();
                Ok(tree
                    .range(&lo_k, &hi_k)?
                    .map(|(k, rec)| (Oid::from_key_bytes(&k).expect("oid key"), rec))
                    .collect())
            }
            StoredQuery::RetRange {
                ret_idx, lo, hi, ..
            } => {
                let mut out = Vec::new();
                for (k, rec) in tree.scan_all() {
                    let v = extract_ret(&rec, crate::query::RetAttr::ALL[*ret_idx]);
                    if (*lo..=*hi).contains(&v) {
                        out.push((Oid::from_key_bytes(&k).expect("oid key"), rec));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Store an inside-cached result into parent `key`'s tuple (an I/O
    /// write against ParentRel), evicting the least recently used inside
    /// copy when the capacity bound is reached, and track it for
    /// invalidation.
    pub fn inside_store(&self, key: u64, records: &[Vec<u8>]) -> Result<(), CorError> {
        let ProcCaching::InsideValues(capacity) = self.caching else {
            return Ok(());
        };
        let _phase = cor_obs::PhaseGuard::enter(cor_obs::Phase::CacheMaintain);
        let payload = encode_unit_value(records);
        if payload.len() + 300 > cor_pagestore::MAX_RECORD {
            // Result too large to inline next to the tuple: skip caching.
            return Ok(());
        }
        while self.inside_cached.lock().len() >= capacity {
            let Some(victim) = self.inside_cached.lock().lru_victim() else {
                break;
            };
            self.inside_clear(victim)?;
            self.inside_cached.lock().remove(victim);
            self.inside_counters.lock().evictions += 1;
        }
        let pkey = Oid::new(PROC_PARENT_REL, key).to_key_bytes();
        let Some(rec) = self.parent.get(&pkey)? else {
            return Err(CorError::DanglingOid(Oid::new(PROC_PARENT_REL, key)));
        };
        let mut t = decode(&self.parent_schema, &rec)?;
        t.set(6, Value::Bytes(payload));
        self.parent
            .update(&pkey, &encode(&self.parent_schema, &t)?)?;
        self.inside_cached.lock().touch(key);
        self.inside_counters.lock().insertions += 1;
        Ok(())
    }

    /// Record an inside-cache hit for LRU purposes (called by the executor
    /// when a scanned parent carried a cached copy).
    pub fn inside_touch(&self, key: u64) {
        let mut lru = self.inside_cached.lock();
        if lru.contains(key) {
            lru.touch(key);
            self.inside_counters.lock().hits += 1;
        }
    }

    fn inside_clear(&self, key: u64) -> Result<(), CorError> {
        let _phase = cor_obs::PhaseGuard::enter(cor_obs::Phase::CacheMaintain);
        let pkey = Oid::new(PROC_PARENT_REL, key).to_key_bytes();
        let Some(rec) = self.parent.get(&pkey)? else {
            return Ok(());
        };
        let mut t = decode(&self.parent_schema, &rec)?;
        t.set(6, Value::Bytes(Vec::new()));
        self.parent
            .update(&pkey, &encode(&self.parent_schema, &t)?)?;
        self.inside_counters.lock().invalidations += 1;
        Ok(())
    }

    /// Update one `ret` attribute of a subobject in place, then invalidate
    /// whatever the caching mode requires. Returns whether the subobject
    /// exists.
    pub fn update_child_ret(&self, oid: Oid, ret_idx: usize, v: i64) -> Result<bool, CorError> {
        assert!(ret_idx < 3);
        let tree = self.child_tree(oid.rel)?;
        let key = oid.to_key_bytes();
        let Some(rec) = tree.get(&key)? else {
            return Ok(false);
        };
        let t = decode(&crate::database::child_schema(), &rec)?;
        let old_rets = [
            t.get(1).as_int().expect("ret1"),
            t.get(2).as_int().expect("ret2"),
            t.get(3).as_int().expect("ret3"),
        ];
        let mut new_rets = old_rets;
        new_rets[ret_idx] = v;
        let mut t = t;
        t.set(1 + ret_idx, Value::Int(v));
        tree.update(&key, &encode(&crate::database::child_schema(), &t)?)?;

        match self.caching {
            ProcCaching::None => {}
            ProcCaching::OutsideValues(_) | ProcCaching::OutsideOids(_) => {
                self.outside_cache()
                    .invalidate_for_update(oid, &old_rets, &new_rets)?;
            }
            ProcCaching::InsideValues(_) => {
                // Fan out to every parent whose stored query is affected
                // and currently holds a cached copy: one ParentRel write
                // each — the cost that sinks inside caching under sharing.
                let mut victims = Vec::new();
                for (query, parent_keys) in self.by_query.values() {
                    if query.matches(oid, &old_rets) || query.matches(oid, &new_rets) {
                        for &pk in parent_keys {
                            if self.inside_cached.lock().contains(pk) {
                                victims.push(pk);
                            }
                        }
                    }
                }
                for pk in victims {
                    self.inside_clear(pk)?;
                    self.inside_cached.lock().remove(pk);
                }
            }
        }
        Ok(true)
    }
}

/// A four-object, twelve-subobject fixture shared by this module's tests
/// and the exec tests.
#[cfg(test)]
pub(crate) fn tiny_spec() -> ProcDatabaseSpec {
    tests::tiny_spec_impl()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    pub(crate) fn tiny_spec() -> ProcDatabaseSpec {
        tiny_spec_impl()
    }

    pub(crate) fn tiny_spec_impl() -> ProcDatabaseSpec {
        // 12 subobjects with ret1 = 10*key; four parents:
        //   p0, p1 share "keys 0..3"; p2: "keys 4..7"; p3: "ret1 >= 80".
        let child = |k: u64| SubobjectSpec {
            oid: Oid::new(CHILD_REL_BASE, k),
            rets: [10 * k as i64, k as i64, 0],
            dummy: "c".repeat(10),
        };
        let keyq = |lo, hi| StoredQuery::KeyRange {
            rel: CHILD_REL_BASE,
            lo,
            hi,
        };
        let retq = |lo, hi| StoredQuery::RetRange {
            rel: CHILD_REL_BASE,
            ret_idx: 0,
            lo,
            hi,
        };
        ProcDatabaseSpec {
            parents: vec![
                ProcObjectSpec {
                    key: 0,
                    rets: [0; 3],
                    dummy: "p".into(),
                    members: keyq(0, 3),
                },
                ProcObjectSpec {
                    key: 1,
                    rets: [0; 3],
                    dummy: "p".into(),
                    members: keyq(0, 3),
                },
                ProcObjectSpec {
                    key: 2,
                    rets: [0; 3],
                    dummy: "p".into(),
                    members: keyq(4, 7),
                },
                ProcObjectSpec {
                    key: 3,
                    rets: [0; 3],
                    dummy: "p".into(),
                    members: retq(80, 200),
                },
            ],
            child_rels: vec![(0..12).map(child).collect()],
        }
    }

    #[test]
    fn build_and_scan_parents() {
        let db = ProcDatabase::build(pool(32), &tiny_spec(), ProcCaching::None).unwrap();
        assert_eq!(db.parent_count(), 4);
        let rows = db.parents_in_range(0, 3).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0].members, rows[1].members,
            "p0 and p1 share the stored query"
        );
        assert!(rows.iter().all(|r| r.cached.is_none()));
    }

    #[test]
    fn execute_key_range_uses_index() {
        let p = pool(32);
        let db = ProcDatabase::build(Arc::clone(&p), &tiny_spec(), ProcCaching::None).unwrap();
        let q = StoredQuery::KeyRange {
            rel: CHILD_REL_BASE,
            lo: 4,
            hi: 7,
        };
        let result = db.execute_stored(&q).unwrap();
        let keys: Vec<u64> = result.iter().map(|(o, _)| o.key).collect();
        assert_eq!(keys, vec![4, 5, 6, 7]);
    }

    #[test]
    fn execute_ret_range_scans_and_filters() {
        let db = ProcDatabase::build(pool(32), &tiny_spec(), ProcCaching::None).unwrap();
        let q = StoredQuery::RetRange {
            rel: CHILD_REL_BASE,
            ret_idx: 0,
            lo: 80,
            hi: 200,
        };
        let result = db.execute_stored(&q).unwrap();
        let keys: Vec<u64> = result.iter().map(|(o, _)| o.key).collect();
        assert_eq!(keys, vec![8, 9, 10, 11]);
    }

    #[test]
    fn inside_store_and_rescan() {
        let db =
            ProcDatabase::build(pool(32), &tiny_spec(), ProcCaching::InsideValues(64)).unwrap();
        let records = vec![b"r0".to_vec(), b"r1".to_vec()];
        db.inside_store(2, &records).unwrap();
        let rows = db.parents_in_range(2, 2).unwrap();
        assert_eq!(rows[0].cached.as_ref().unwrap(), &records);
        // Other parents untouched.
        assert!(db
            .parents_in_range(0, 1)
            .unwrap()
            .iter()
            .all(|r| r.cached.is_none()));
    }

    #[test]
    fn inside_invalidation_fans_out_to_sharing_parents() {
        let db =
            ProcDatabase::build(pool(32), &tiny_spec(), ProcCaching::InsideValues(64)).unwrap();
        db.inside_store(0, &[b"x".to_vec()]).unwrap();
        db.inside_store(1, &[b"x".to_vec()]).unwrap();
        db.inside_store(2, &[b"y".to_vec()]).unwrap();
        // Update subobject 1 (in p0/p1's key range 0..3 only).
        assert!(db
            .update_child_ret(Oid::new(CHILD_REL_BASE, 1), 0, 999)
            .unwrap());
        let rows = db.parents_in_range(0, 3).unwrap();
        assert!(rows[0].cached.is_none(), "p0's inside copy must be cleared");
        assert!(rows[1].cached.is_none(), "p1's inside copy must be cleared");
        assert!(rows[2].cached.is_some(), "p2 unaffected");
        assert_eq!(db.cache_counters().invalidations, 2);
    }

    #[test]
    fn ret_range_membership_changes_invalidate_inside_copies() {
        let db =
            ProcDatabase::build(pool(32), &tiny_spec(), ProcCaching::InsideValues(64)).unwrap();
        db.inside_store(3, &[b"elders".to_vec()]).unwrap();
        // Subobject 0 has ret1 = 0; raising it to 100 moves it INTO
        // p3's ret-range query -> invalidate.
        db.update_child_ret(Oid::new(CHILD_REL_BASE, 0), 0, 100)
            .unwrap();
        assert!(db.parents_in_range(3, 3).unwrap()[0].cached.is_none());
    }

    #[test]
    fn update_missing_subobject_returns_false() {
        let db = ProcDatabase::build(pool(32), &tiny_spec(), ProcCaching::None).unwrap();
        assert!(!db
            .update_child_ret(Oid::new(CHILD_REL_BASE, 999), 0, 1)
            .unwrap());
    }
}
