//! The procedural primary representation (Sec. 2.1.1) and its cached
//! variants (Sec. 2.3) — the left column of the representation matrix,
//! studied in detail in \[JHIN88\] and implemented here to complete the
//! matrix.
//!
//! An object's subobjects are identified by a stored retrieve-only query
//! ([`StoredQuery`], kept as QUEL text in the parent tuple, as POSTGRES
//! procedural attributes are). Executing the procedure costs a range scan
//! (indexable key ranges) or a full relation scan (value predicates), so
//! precomputing and caching the result — as OIDs or as values, inside or
//! outside the referencing object — is where the performance action is.

pub mod database;
pub mod exec;
pub mod pcache;
pub mod predicate;

pub use database::{
    proc_parent_schema, ProcCaching, ProcDatabase, ProcDatabaseSpec, ProcObjectSpec, ProcParentRow,
    PROC_PARENT_REL,
};
#[allow(deprecated)]
pub use exec::run_proc_retrieve;
pub use exec::{apply_proc_update, execute_proc_retrieve};
pub use pcache::{CachedResult, ProcCache, ProcCachedKind};
pub use predicate::{QuelParseError, StoredQuery};
