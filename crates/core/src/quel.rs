//! A QUEL front-end for the paper's query surface syntax.
//!
//! The paper writes its workload in QUEL (the INGRES/POSTGRES query
//! language), e.g.
//!
//! ```text
//! retrieve (ParentRel.children.ret2) where 100 <= ParentRel.OID <= 149
//! replace child10 (ret1 = 42) where child10.OID in (3, 7, 9)
//! ```
//!
//! This module parses exactly that dialect into the crate's typed queries:
//! multi-dot paths (`children.children...retN`) become
//! [`MultiDotQuery`]s whose depth is the number of `children` hops, and
//! `replace` statements become [`UpdateQuery`]s (the paper's in-place
//! ChildRel updates). Stored *procedural* queries have their own parser in
//! [`crate::procedural::StoredQuery`].

use crate::multilevel::MultiDotQuery;
use crate::query::{RetAttr, RetrieveQuery, UpdateQuery};
use cor_relational::{Oid, RelId};

/// A parsed QUEL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuelStatement {
    /// A two-dot retrieve (`ParentRel.children.retN`).
    Retrieve(RetrieveQuery),
    /// A deeper retrieve; `depth` = number of `children` hops (2 hops =
    /// three-dot query, needs a 2-level hierarchy).
    RetrieveMulti {
        /// The range/attribute of the query.
        query: MultiDotQuery,
        /// Number of `children` hops in the path.
        depth: usize,
    },
    /// An in-place update of ChildRel tuples (`replace`).
    Replace {
        /// The ChildRel targeted.
        rel: RelId,
        /// The update to apply.
        update: UpdateQuery,
    },
}

/// Parse errors with positions are overkill for this dialect; a message
/// suffices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuelError(pub String);

impl std::fmt::Display for QuelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QUEL parse error: {}", self.0)
    }
}

impl std::error::Error for QuelError {}

fn err<T>(msg: impl Into<String>) -> Result<T, QuelError> {
    Err(QuelError(msg.into()))
}

/// Parse one QUEL statement.
///
/// ```
/// use complexobj::{parse_quel, QuelStatement, RetAttr};
///
/// let stmt = parse_quel("retrieve (ParentRel.children.ret2) where 5 <= ParentRel.OID <= 9")
///     .unwrap();
/// let QuelStatement::Retrieve(q) = stmt else { unreachable!() };
/// assert_eq!((q.lo, q.hi, q.attr), (5, 9, RetAttr::Ret2));
/// ```
pub fn parse(text: &str) -> Result<QuelStatement, QuelError> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix("retrieve") {
        parse_retrieve(rest.trim())
    } else if let Some(rest) = text.strip_prefix("replace") {
        parse_replace(rest.trim())
    } else {
        err("expected 'retrieve' or 'replace'")
    }
}

fn parse_attr(name: &str) -> Result<RetAttr, QuelError> {
    match name {
        "ret1" => Ok(RetAttr::Ret1),
        "ret2" => Ok(RetAttr::Ret2),
        "ret3" => Ok(RetAttr::Ret3),
        other => err(format!("unknown attribute {other:?} (ret1..ret3)")),
    }
}

fn parse_retrieve(rest: &str) -> Result<QuelStatement, QuelError> {
    // "(ParentRel.children[.children...].retN) where LO <= ParentRel.OID <= HI"
    let Some(rest) = rest.strip_prefix('(') else {
        return err("expected '(' after retrieve");
    };
    let Some((target, rest)) = rest.split_once(')') else {
        return err("unclosed target list");
    };
    let mut path = target.trim().split('.');
    if path.next() != Some("ParentRel") {
        return err("target path must start with ParentRel");
    }
    let mut hops = 0usize;
    let mut attr = None;
    for part in path {
        if part == "children" {
            if attr.is_some() {
                return err("attribute must terminate the path");
            }
            hops += 1;
        } else {
            if attr.is_some() {
                return err("only one attribute allowed");
            }
            attr = Some(parse_attr(part)?);
        }
    }
    if hops == 0 {
        return err("path needs at least one '.children' hop");
    }
    let attr = attr.ok_or_else(|| QuelError("path must end in ret1..ret3".into()))?;

    let rest = rest.trim();
    let Some(cond) = rest.strip_prefix("where") else {
        return err("expected 'where' clause");
    };
    // "LO <= ParentRel.OID <= HI"
    let mut parts = cond.trim().split(" <= ");
    let lo: u64 = parts
        .next()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| QuelError("bad lower bound".into()))?;
    if parts.next().map(str::trim) != Some("ParentRel.OID") {
        return err("where clause must range over ParentRel.OID");
    }
    let hi: u64 = parts
        .next()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| QuelError("bad upper bound".into()))?;
    if parts.next().is_some() {
        return err("too many comparisons");
    }
    if lo > hi {
        return err("empty range: lower bound exceeds upper bound");
    }

    if hops == 1 {
        Ok(QuelStatement::Retrieve(RetrieveQuery { lo, hi, attr }))
    } else {
        Ok(QuelStatement::RetrieveMulti {
            query: MultiDotQuery { lo, hi, attr },
            depth: hops,
        })
    }
}

fn parse_replace(rest: &str) -> Result<QuelStatement, QuelError> {
    // "childN (ret1 = V) where childN.OID in (K1, K2, ...)"
    let Some((rel_name, rest)) = rest.split_once('(') else {
        return err("expected '(' after relation name");
    };
    let rel_name = rel_name.trim();
    let rel: RelId = rel_name
        .strip_prefix("child")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| QuelError(format!("expected childN relation, got {rel_name:?}")))?;

    let Some((assign, rest)) = rest.split_once(')') else {
        return err("unclosed assignment list");
    };
    let Some((attr_name, value)) = assign.split_once('=') else {
        return err("expected 'ret1 = value'");
    };
    if attr_name.trim() != "ret1" {
        return err("only ret1 may be replaced (the paper's updates modify one field)");
    }
    let new_ret1: i64 = value
        .trim()
        .parse()
        .map_err(|_| QuelError(format!("bad value {:?}", value.trim())))?;

    let rest = rest.trim();
    let Some(cond) = rest.strip_prefix("where") else {
        return err("expected 'where' clause");
    };
    let cond = cond.trim();
    let expected_prefix = format!("{rel_name}.OID in (");
    let Some(list) = cond.strip_prefix(expected_prefix.as_str()) else {
        return err(format!("where clause must be '{rel_name}.OID in (...)'"));
    };
    let Some(list) = list.strip_suffix(')') else {
        return err("unclosed OID list");
    };
    let mut targets = Vec::new();
    for item in list.split(',') {
        let key: u64 = item
            .trim()
            .parse()
            .map_err(|_| QuelError(format!("bad OID {:?}", item.trim())))?;
        targets.push(Oid::new(rel, key));
    }
    if targets.is_empty() {
        return err("empty OID list");
    }
    Ok(QuelStatement::Replace {
        rel,
        update: UpdateQuery { targets, new_ret1 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::CHILD_REL_BASE;

    #[test]
    fn parse_two_dot_retrieve() {
        let s =
            parse("retrieve (ParentRel.children.ret2) where 100 <= ParentRel.OID <= 149").unwrap();
        assert_eq!(
            s,
            QuelStatement::Retrieve(RetrieveQuery {
                lo: 100,
                hi: 149,
                attr: RetAttr::Ret2
            })
        );
    }

    #[test]
    fn parse_multi_dot_retrieve() {
        let s = parse(
            "retrieve (ParentRel.children.children.children.ret1) where 0 <= ParentRel.OID <= 9",
        )
        .unwrap();
        assert_eq!(
            s,
            QuelStatement::RetrieveMulti {
                query: MultiDotQuery {
                    lo: 0,
                    hi: 9,
                    attr: RetAttr::Ret1
                },
                depth: 3
            }
        );
    }

    #[test]
    fn parse_replace() {
        let s = parse("replace child10 (ret1 = -42) where child10.OID in (3, 7, 9)").unwrap();
        let QuelStatement::Replace { rel, update } = s else {
            panic!("not a replace")
        };
        assert_eq!(rel, CHILD_REL_BASE);
        assert_eq!(update.new_ret1, -42);
        assert_eq!(
            update.targets,
            vec![
                Oid::new(CHILD_REL_BASE, 3),
                Oid::new(CHILD_REL_BASE, 7),
                Oid::new(CHILD_REL_BASE, 9)
            ]
        );
    }

    #[test]
    fn whitespace_is_tolerated() {
        let s = parse("  retrieve   (ParentRel.children.ret1)   where  1 <= ParentRel.OID <= 2 ")
            .unwrap();
        assert!(matches!(s, QuelStatement::Retrieve(_)));
        let s = parse("replace child11 ( ret1 = 5 ) where child11.OID in ( 1 )").unwrap();
        assert!(matches!(s, QuelStatement::Replace { rel: 11, .. }));
    }

    #[test]
    fn malformed_statements_are_rejected() {
        for bad in [
            "",
            "select * from t",
            "retrieve ParentRel.children.ret1 where 1 <= ParentRel.OID <= 2",
            "retrieve (ParentRel.ret1) where 1 <= ParentRel.OID <= 2",
            "retrieve (ParentRel.children.age) where 1 <= ParentRel.OID <= 2",
            "retrieve (ParentRel.children.ret1.children) where 1 <= ParentRel.OID <= 2",
            "retrieve (ParentRel.children.ret1) where 1 <= person.OID <= 2",
            "retrieve (ParentRel.children.ret1) where 9 <= ParentRel.OID <= 2",
            "retrieve (ParentRel.children.ret1)",
            "replace child10 (ret2 = 5) where child10.OID in (1)",
            "replace child10 (ret1 = 5) where child11.OID in (1)",
            "replace child10 (ret1 = 5) where child10.OID in ()",
            "replace person (ret1 = 5) where person.OID in (1)",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parsed_retrieve_runs_end_to_end() {
        use crate::database::{CorDatabase, DatabaseSpec, ObjectSpec, SubobjectSpec};
        use crate::strategies::{execute_retrieve, ExecOptions};
        use cor_pagestore::BufferPool;
        use std::sync::Arc;

        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        let spec = DatabaseSpec {
            parents: vec![ObjectSpec {
                key: 0,
                rets: [0; 3],
                dummy: "p".into(),
                children: vec![c(0), c(1)],
            }],
            child_rels: vec![(0..2)
                .map(|k| SubobjectSpec {
                    oid: c(k),
                    rets: [7 * k as i64, 0, 0],
                    dummy: "c".into(),
                })
                .collect()],
        };
        let pool = Arc::new(BufferPool::builder().capacity(16).build());
        let db = CorDatabase::build_standard(pool, &spec, None).unwrap();

        let QuelStatement::Retrieve(q) =
            parse("retrieve (ParentRel.children.ret1) where 0 <= ParentRel.OID <= 0").unwrap()
        else {
            panic!("not a retrieve")
        };
        let mut v = execute_retrieve(&db, crate::Strategy::Dfs, &q, &ExecOptions::default())
            .unwrap()
            .values;
        v.sort_unstable();
        assert_eq!(v, vec![0, 7]);
    }
}
