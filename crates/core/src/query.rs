//! Queries and their results (paper Sec. 4).
//!
//! Retrieve queries take the paper's shape:
//!
//! ```text
//! retrieve (ParentRel.children.attr) where val1 <= ParentRel.OID <= val2
//! ```
//!
//! with `attr` randomly chosen among `ret1..ret3` per query, and updates
//! "modify a fixed number of tuples of ChildRel in place". In the presence
//! of clustering both are translated into the equivalent ClusterRel
//! operations (handled inside [`crate::database::CorDatabase`]).

use crate::database::CorDatabase;
use crate::CorError;
use cor_pagestore::IoDelta;
use cor_relational::Oid;

/// Which retrievable attribute a query projects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetAttr {
    /// `ret1`
    Ret1,
    /// `ret2`
    Ret2,
    /// `ret3`
    Ret3,
}

impl RetAttr {
    /// Column index within the ChildRel schema (oid is column 0).
    pub fn column(self) -> usize {
        match self {
            RetAttr::Ret1 => 1,
            RetAttr::Ret2 => 2,
            RetAttr::Ret3 => 3,
        }
    }

    /// All attributes, for random per-query choice.
    pub const ALL: [RetAttr; 3] = [RetAttr::Ret1, RetAttr::Ret2, RetAttr::Ret3];
}

/// `retrieve (ParentRel.children.attr) where lo <= ParentRel.OID <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrieveQuery {
    /// Lower OID bound (`val1`).
    pub lo: u64,
    /// Upper OID bound (`val2`), inclusive.
    pub hi: u64,
    /// Projected attribute.
    pub attr: RetAttr,
}

impl RetrieveQuery {
    /// Number of ParentRel keys selected (the paper's `NumTop`, for dense
    /// keys).
    pub fn num_top(&self) -> u64 {
        self.hi.saturating_sub(self.lo) + 1
    }
}

/// An update query: set `ret1` of each target subobject, in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateQuery {
    /// Subobjects to modify.
    pub targets: Vec<Oid>,
    /// New `ret1` value.
    pub new_ret1: i64,
}

/// One query of a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A retrieve.
    Retrieve(RetrieveQuery),
    /// An update.
    Update(UpdateQuery),
}

/// Result of running one retrieve under some strategy.
#[derive(Debug, Clone, Default)]
pub struct StrategyOutput {
    /// Projected attribute values, one per (object, subobject) pair —
    /// shared subobjects appear once per referencing object, exactly as
    /// the paper's multi-dot query semantics produce.
    pub values: Vec<i64>,
    /// I/O charged to accessing the qualifying objects (the paper's
    /// `ParCost`).
    pub par_io: IoDelta,
    /// I/O charged to fetching the subobjects (the paper's `ChildCost`).
    pub child_io: IoDelta,
}

impl StrategyOutput {
    /// `TotCost = ParCost + ChildCost`.
    pub fn total_io(&self) -> u64 {
        self.par_io.total() + self.child_io.total()
    }
}

/// Extract `ret{1,2,3}` from an encoded ChildRel record without a full
/// decode. The record layout is `oid (10 B) | ret1 | ret2 | ret3 | dummy`,
/// with 8-byte little-endian integers.
pub fn extract_ret(record: &[u8], attr: RetAttr) -> i64 {
    let off = cor_relational::OID_BYTES + 8 * (attr.column() - 1);
    let mut b = [0u8; 8];
    b.copy_from_slice(&record[off..off + 8]);
    i64::from_le_bytes(b)
}

/// Apply an update query. Modifies each target subobject in place and, when
/// `maintain_cache` is set on a cache-bearing database, invalidates every
/// cached unit holding an I-lock for a modified subobject (Sec. 3.2).
/// Returns the I/O consumed.
pub fn apply_update(
    db: &CorDatabase,
    update: &UpdateQuery,
    maintain_cache: bool,
) -> Result<IoDelta, CorError> {
    let before = db.pool().stats().snapshot();
    for &oid in &update.targets {
        db.update_child_ret(oid, 0, update.new_ret1)?;
        if maintain_cache && db.has_cache() {
            db.invalidate_subobject(oid)?;
        }
    }
    Ok(db.pool().stats().snapshot().since(&before))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{child_schema, CHILD_REL_BASE};
    use cor_access::encode;
    use cor_relational::{Tuple, Value};

    #[test]
    fn num_top_counts_inclusive_range() {
        let q = RetrieveQuery {
            lo: 10,
            hi: 19,
            attr: RetAttr::Ret1,
        };
        assert_eq!(q.num_top(), 10);
        let q = RetrieveQuery {
            lo: 5,
            hi: 5,
            attr: RetAttr::Ret2,
        };
        assert_eq!(q.num_top(), 1);
    }

    #[test]
    fn extract_ret_matches_full_decode() {
        let t = Tuple::new(vec![
            Value::Oid(Oid::new(CHILD_REL_BASE, 77)),
            Value::Int(-123),
            Value::Int(456),
            Value::Int(i64::MIN),
            Value::Str("pad pad pad".into()),
        ]);
        let rec = encode(&child_schema(), &t).unwrap();
        assert_eq!(extract_ret(&rec, RetAttr::Ret1), -123);
        assert_eq!(extract_ret(&rec, RetAttr::Ret2), 456);
        assert_eq!(extract_ret(&rec, RetAttr::Ret3), i64::MIN);
    }

    #[test]
    fn ret_attr_columns() {
        assert_eq!(RetAttr::Ret1.column(), 1);
        assert_eq!(RetAttr::Ret3.column(), 3);
        assert_eq!(RetAttr::ALL.len(), 3);
    }
}
