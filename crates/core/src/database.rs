//! The experiment database (paper Sec. 4).
//!
//! ```text
//! ParentRel  (OID, ret1, ret2, ret3, dummy, children)   -- B-tree on OID
//! ChildRel   (OID, ret1, ret2, ret3, dummy)             -- B-tree on OID
//! ClusterRel (cluster#, OID, ret1..3, dummy, children)  -- B-tree on cluster#
//!                                                       -- + static ISAM index on OID
//! Cache      (hashkey, value)                           -- hash relation
//! ```
//!
//! A database is built either in the **standard** OID representation
//! (ParentRel + one or more ChildRels) or in the **clustered**
//! representation, where "all objects and their subobjects [are stored] in
//! one relation called cluster"; an object and the subobjects clustered
//! with it share a `cluster#` and are therefore physically co-located.

use crate::cache::{
    decode_unit_value, encode_unit_value, CacheCounters, EvictionPolicy, LruSet, UnitCache,
};
use crate::cluster::ClusterAssignment;
use crate::matrix::CachePlacement;
use crate::CorError;
use cor_access::{decode, encode, BTreeFile, IsamIndex, DEFAULT_FILL};
use cor_pagestore::BufferPool;
use cor_relational::{Oid, RelId, Schema, Tuple, Value, ValueType};
use parking_lot::{Mutex, MutexGuard};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Encoded `(key, record)` pairs ready for a bulk load.
type LoadEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Relation id of ParentRel.
pub const PARENT_REL: RelId = 1;
/// Relation id of the first ChildRel; relation `i` is `CHILD_REL_BASE + i`.
pub const CHILD_REL_BASE: RelId = 10;

/// Schema of ParentRel (paper Sec. 4).
pub fn parent_schema() -> Schema {
    Schema::new(&[
        ("oid", ValueType::Oid),
        ("ret1", ValueType::Int),
        ("ret2", ValueType::Int),
        ("ret3", ValueType::Int),
        ("dummy", ValueType::Str),
        ("children", ValueType::OidList),
        // Inside caching (Sec. 2.3): cached subobject values stored "with
        // the referencing object". Empty unless inside placement is on.
        ("cached", ValueType::Bytes),
    ])
}

/// Schema of each ChildRel (paper Sec. 4).
pub fn child_schema() -> Schema {
    Schema::new(&[
        ("oid", ValueType::Oid),
        ("ret1", ValueType::Int),
        ("ret2", ValueType::Int),
        ("ret3", ValueType::Int),
        ("dummy", ValueType::Str),
    ])
}

/// Logical contents of one complex object (a ParentRel tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectSpec {
    /// Primary key; the object's OID is `(PARENT_REL, key)`.
    pub key: u64,
    /// The three retrievable integer attributes.
    pub rets: [i64; 3],
    /// Pad field sizing the tuple (~200 bytes in the paper).
    pub dummy: String,
    /// OIDs of the object's subobjects (its unit).
    pub children: Vec<Oid>,
}

/// Logical contents of one subobject (a ChildRel tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubobjectSpec {
    /// The subobject's OID (identifies its ChildRel too).
    pub oid: Oid,
    /// The three retrievable integer attributes.
    pub rets: [i64; 3],
    /// Pad field sizing the tuple (~100 bytes in the paper).
    pub dummy: String,
}

/// Logical database contents, independent of representation.
#[derive(Debug, Clone, Default)]
pub struct DatabaseSpec {
    /// Objects, sorted ascending by `key`.
    pub parents: Vec<ObjectSpec>,
    /// One vector per ChildRel, each sorted ascending by OID.
    pub child_rels: Vec<Vec<SubobjectSpec>>,
}

impl DatabaseSpec {
    /// A tiny hand-built example database — 4 objects over one ChildRel
    /// of 6 subobjects, objects 0 and 1 sharing a unit — for doc examples
    /// and smoke tests. Real experiments generate specs from
    /// `cor-workload`'s parameterized generator.
    pub fn tiny() -> DatabaseSpec {
        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        let child = |k: u64| SubobjectSpec {
            oid: c(k),
            rets: [k as i64 * 10, k as i64 * 100, k as i64 * 1000],
            dummy: "x".repeat(20),
        };
        DatabaseSpec {
            parents: (0..4u64)
                .map(|key| ObjectSpec {
                    key,
                    rets: [key as i64; 3],
                    dummy: "p".repeat(30),
                    children: match key {
                        0 | 1 => vec![c(0), c(1)],
                        2 => vec![c(2), c(3)],
                        _ => vec![c(4), c(5)],
                    },
                })
                .collect(),
            child_rels: vec![(0..6).map(child).collect()],
        }
    }

    fn parent_tuple(&self, o: &ObjectSpec) -> Tuple {
        Tuple::new(vec![
            Value::Oid(Oid::new(PARENT_REL, o.key)),
            Value::Int(o.rets[0]),
            Value::Int(o.rets[1]),
            Value::Int(o.rets[2]),
            Value::Str(o.dummy.clone()),
            Value::OidList(o.children.clone()),
            Value::Bytes(Vec::new()),
        ])
    }

    fn child_tuple(s: &SubobjectSpec) -> Tuple {
        Tuple::new(vec![
            Value::Oid(s.oid),
            Value::Int(s.rets[0]),
            Value::Int(s.rets[1]),
            Value::Int(s.rets[2]),
            Value::Str(s.dummy.clone()),
        ])
    }
}

/// How the logical database is physically represented.
pub enum Storage {
    /// ParentRel + ChildRel\[s\], each a B-tree on OID.
    Standard {
        /// ParentRel.
        parent: BTreeFile,
        /// ChildRel\[i\] holds relation `CHILD_REL_BASE + i`.
        children: Vec<BTreeFile>,
    },
    /// One ClusterRel B-tree on `(cluster#, kind, OID)` plus a static ISAM
    /// index on OID for random access.
    Clustered {
        /// The combined relation.
        cluster: BTreeFile,
        /// OID → cluster key, "maintained as an isam structure".
        oid_index: IsamIndex,
    },
}

/// Byte length of a ClusterRel key: cluster# (8) + kind (1) + OID (10).
pub const CLUSTER_KEY_LEN: usize = 19;

/// Entry kind within a cluster: the object itself sorts first.
const KIND_PARENT: u8 = 0;
/// Entry kind for a clustered subobject.
const KIND_CHILD: u8 = 1;

/// Encode a ClusterRel key.
pub fn cluster_key(cluster_no: u64, is_child: bool, oid: Oid) -> [u8; CLUSTER_KEY_LEN] {
    let mut out = [0u8; CLUSTER_KEY_LEN];
    out[..8].copy_from_slice(&cluster_no.to_be_bytes());
    out[8] = if is_child { KIND_CHILD } else { KIND_PARENT };
    out[9..].copy_from_slice(&oid.to_key_bytes());
    out
}

/// Split an OID-index payload into `(cluster key, leaf page hint)`.
fn split_tid(tid: &[u8]) -> (&[u8], cor_pagestore::PageId) {
    let (ckey, page) = tid.split_at(CLUSTER_KEY_LEN);
    let leaf = cor_pagestore::PageId::from_le_bytes([page[0], page[1], page[2], page[3]]);
    (ckey, leaf)
}

/// Decode a ClusterRel key into `(cluster#, is_child, oid)`.
pub fn decode_cluster_key(key: &[u8]) -> Option<(u64, bool, Oid)> {
    if key.len() != CLUSTER_KEY_LEN {
        return None;
    }
    let mut c = [0u8; 8];
    c.copy_from_slice(&key[..8]);
    let oid = Oid::from_key_bytes(&key[9..])?;
    Some((u64::from_be_bytes(c), key[8] == KIND_CHILD, oid))
}

/// Cache configuration for databases supporting DFSCACHE/SMART.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum cached units (the paper's `SizeCache`).
    pub capacity: usize,
    /// Replacement policy (paper-unspecified; LRU by default).
    pub policy: EvictionPolicy,
    /// Where cached values live (Sec. 2.3). The paper "restrict[s its]
    /// attention to outside caching"; inside placement exists here to
    /// check that choice experimentally (see the `insideout` bench).
    pub placement: CachePlacement,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: crate::cache::DEFAULT_SIZE_CACHE,
            policy: EvictionPolicy::Lru,
            placement: CachePlacement::Outside,
        }
    }
}

/// One scanned object with its inside-cached records, if any:
/// `(key, children, cached unit records)`.
pub type CachedParentRow = (u64, Vec<Oid>, Option<Vec<Vec<u8>>>);

/// Inside-caching bookkeeping: which parents hold a copy (the copies live
/// in the parent tuples' `cached` column) and which parents reference each
/// subobject (invalidation fan-out).
struct InsideOidCache {
    capacity: usize,
    holders: LruSet,
    registry: std::collections::HashMap<Oid, Vec<u64>>,
    counters: CacheCounters,
}

/// A loaded experiment database.
pub struct CorDatabase {
    pool: Arc<BufferPool>,
    storage: Storage,
    cache: Option<Mutex<UnitCache>>,
    inside: Option<Mutex<InsideOidCache>>,
    parent_schema: Schema,
    child_schema: Schema,
    parent_count: u64,
    child_counts: Vec<u64>,
}

impl CorDatabase {
    /// Build the standard (non-clustered) representation from `spec`,
    /// optionally with a unit-value cache attached.
    pub fn build_standard(
        pool: Arc<BufferPool>,
        spec: &DatabaseSpec,
        cache: Option<CacheConfig>,
    ) -> Result<Self, CorError> {
        let pschema = parent_schema();
        let cschema = child_schema();

        let parent_entries: Result<LoadEntries, CorError> = spec
            .parents
            .iter()
            .map(|o| {
                let key = Oid::new(PARENT_REL, o.key).to_key_bytes().to_vec();
                let rec = encode(&pschema, &spec.parent_tuple(o))?;
                Ok((key, rec))
            })
            .collect();
        let parent = BTreeFile::bulk_load(Arc::clone(&pool), 10, parent_entries?, DEFAULT_FILL)?;

        let mut children = Vec::with_capacity(spec.child_rels.len());
        let mut child_counts = Vec::with_capacity(spec.child_rels.len());
        for rel in &spec.child_rels {
            let entries: Result<LoadEntries, CorError> = rel
                .iter()
                .map(|s| {
                    let key = s.oid.to_key_bytes().to_vec();
                    let rec = encode(&cschema, &DatabaseSpec::child_tuple(s))?;
                    Ok((key, rec))
                })
                .collect();
            let tree = BTreeFile::bulk_load(Arc::clone(&pool), 10, entries?, DEFAULT_FILL)?;
            child_counts.push(tree.len());
            children.push(tree);
        }

        let mut outside = None;
        let mut inside = None;
        match cache {
            Some(cfg) if cfg.placement == CachePlacement::Outside => {
                outside = Some(Mutex::new(UnitCache::with_policy(
                    Arc::clone(&pool),
                    cfg.capacity,
                    cfg.policy,
                )?));
            }
            Some(cfg) => {
                let mut registry: std::collections::HashMap<Oid, Vec<u64>> =
                    std::collections::HashMap::new();
                for o in &spec.parents {
                    for &c in &o.children {
                        registry.entry(c).or_default().push(o.key);
                    }
                }
                inside = Some(Mutex::new(InsideOidCache {
                    capacity: cfg.capacity,
                    holders: LruSet::default(),
                    registry,
                    counters: CacheCounters::default(),
                }));
            }
            None => {}
        }

        Ok(CorDatabase {
            pool,
            storage: Storage::Standard { parent, children },
            cache: outside,
            inside,
            parent_schema: pschema,
            child_schema: cschema,
            parent_count: spec.parents.len() as u64,
            child_counts,
        })
    }

    /// Build the clustered representation: ParentRel and ChildRel are
    /// omitted; objects and subobjects live in ClusterRel, subobjects
    /// physically clustered with the parent `assignment` chose for them.
    pub fn build_clustered(
        pool: Arc<BufferPool>,
        spec: &DatabaseSpec,
        assignment: &ClusterAssignment,
    ) -> Result<Self, CorError> {
        let pschema = parent_schema();
        let cschema = child_schema();

        // Group subobjects by assigned parent key; each parent's cluster#
        // is its own primary key, so ClusterRel interleaves objects with
        // their clustered subobjects in key order. A subobject referenced
        // by no object has no parent to cluster with; it is stored in the
        // unclustered tail area (`cluster# = u64::MAX`), reachable only
        // through the OID index — exactly like any other heap resident.
        let mut by_parent: BTreeMap<u64, Vec<&SubobjectSpec>> = BTreeMap::new();
        let mut unclustered: Vec<&SubobjectSpec> = Vec::new();
        for rel in &spec.child_rels {
            for s in rel {
                match assignment.parent_of(s.oid) {
                    Some(pk) => by_parent.entry(pk).or_default().push(s),
                    None => unclustered.push(s),
                }
            }
        }

        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut oid_index_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for o in &spec.parents {
            let pkey = cluster_key(o.key, false, Oid::new(PARENT_REL, o.key));
            entries.push((pkey.to_vec(), encode(&pschema, &spec.parent_tuple(o))?));
            if let Some(subs) = by_parent.get(&o.key) {
                let mut subs: Vec<&&SubobjectSpec> = subs.iter().collect();
                subs.sort_by_key(|s| s.oid);
                for s in subs {
                    let ckey = cluster_key(o.key, true, s.oid);
                    entries.push((
                        ckey.to_vec(),
                        encode(&cschema, &DatabaseSpec::child_tuple(s))?,
                    ));
                    oid_index_entries.push((s.oid.to_key_bytes().to_vec(), ckey.to_vec()));
                }
            }
        }
        unclustered.sort_by_key(|s| s.oid);
        for s in unclustered {
            let ckey = cluster_key(u64::MAX, true, s.oid);
            entries.push((
                ckey.to_vec(),
                encode(&cschema, &DatabaseSpec::child_tuple(s))?,
            ));
            oid_index_entries.push((s.oid.to_key_bytes().to_vec(), ckey.to_vec()));
        }
        let cluster =
            BTreeFile::bulk_load(Arc::clone(&pool), CLUSTER_KEY_LEN, entries, DEFAULT_FILL)?;
        // The OID index stores a TID-style pointer — the cluster key plus
        // the leaf page holding the record — so a random access through
        // the index costs one direct page read, as an INGRES secondary
        // index probe would. ClusterRel is static after the build (updates
        // are in place), so the page hints never go stale.
        let mut oid_index_entries: Vec<(Vec<u8>, Vec<u8>)> = oid_index_entries
            .into_iter()
            .map(|(oid_bytes, ckey)| {
                let leaf = cluster.leaf_page_of(&ckey)?;
                let mut payload = ckey;
                payload.extend_from_slice(&leaf.to_le_bytes());
                Ok((oid_bytes, payload))
            })
            .collect::<Result<_, CorError>>()?;
        oid_index_entries.sort();
        let oid_index = IsamIndex::build(Arc::clone(&pool), 10, oid_index_entries)?;

        let child_counts = spec.child_rels.iter().map(|r| r.len() as u64).collect();
        Ok(CorDatabase {
            pool,
            storage: Storage::Clustered { cluster, oid_index },
            cache: None,
            inside: None,
            parent_schema: pschema,
            child_schema: cschema,
            parent_count: spec.parents.len() as u64,
            child_counts,
        })
    }

    /// Snapshot this database for the engine catalog: file metadata,
    /// schemas, cardinality counters, and the cache directory.
    pub fn save_state(&self) -> crate::persist::SavedOidDb {
        use crate::persist::{SavedCacheState, SavedOidDb, SavedStorage};
        let storage = match &self.storage {
            Storage::Standard { parent, children } => SavedStorage::Standard {
                parent: parent.metadata(),
                children: children.iter().map(|c| c.metadata()).collect(),
            },
            Storage::Clustered { cluster, oid_index } => SavedStorage::Clustered {
                cluster: cluster.metadata(),
                oid_index: oid_index.metadata(),
            },
        };
        let cache = if let Some(c) = &self.cache {
            Some(SavedCacheState::Outside(c.lock().save_state()))
        } else {
            self.inside.as_ref().map(|i| SavedCacheState::Inside {
                capacity: i.lock().capacity,
            })
        };
        SavedOidDb {
            storage,
            parent_schema: self.parent_schema.clone(),
            child_schema: self.child_schema.clone(),
            parent_count: self.parent_count,
            child_counts: self.child_counts.clone(),
            cache,
        }
    }

    /// Reconstruct a database from a catalog snapshot over an
    /// already-recovered pool. Files are reattached from their metadata;
    /// an outside cache is reconciled against its recovered hash relation
    /// (stale directory entries dropped); inside-caching bookkeeping —
    /// the holder set and the invalidation registry — is rebuilt by
    /// scanning ParentRel, whose tuples are the durable truth. The
    /// rebuilt holder set is LRU-ordered by key, not by historical
    /// recency, which only biases future evictions, never answers.
    pub fn open_state(
        pool: Arc<BufferPool>,
        saved: &crate::persist::SavedOidDb,
    ) -> Result<Self, CorError> {
        use crate::persist::{SavedCacheState, SavedStorage};
        let storage = match &saved.storage {
            SavedStorage::Standard { parent, children } => Storage::Standard {
                parent: BTreeFile::from_metadata(Arc::clone(&pool), *parent)?,
                children: children
                    .iter()
                    .map(|m| BTreeFile::from_metadata(Arc::clone(&pool), *m))
                    .collect::<Result<_, _>>()?,
            },
            SavedStorage::Clustered { cluster, oid_index } => Storage::Clustered {
                cluster: BTreeFile::from_metadata(Arc::clone(&pool), *cluster)?,
                oid_index: IsamIndex::from_metadata(Arc::clone(&pool), *oid_index)?,
            },
        };
        let mut outside = None;
        let mut inside_capacity = None;
        match &saved.cache {
            Some(SavedCacheState::Outside(sc)) => {
                let (c, _dropped) = UnitCache::reattach(Arc::clone(&pool), sc)?;
                outside = Some(Mutex::new(c));
            }
            Some(SavedCacheState::Inside { capacity }) => inside_capacity = Some(*capacity),
            None => {}
        }
        let mut db = CorDatabase {
            pool,
            storage,
            cache: outside,
            inside: None,
            parent_schema: saved.parent_schema.clone(),
            child_schema: saved.child_schema.clone(),
            parent_count: saved.parent_count,
            child_counts: saved.child_counts.clone(),
        };
        if let Some(capacity) = inside_capacity {
            let mut registry: std::collections::HashMap<Oid, Vec<u64>> =
                std::collections::HashMap::new();
            let mut holders = LruSet::default();
            for (key, children, cached) in db.parents_in_range_cached(0, u64::MAX)? {
                for c in &children {
                    registry.entry(*c).or_default().push(key);
                }
                if cached.is_some() {
                    holders.touch(key);
                }
            }
            db.inside = Some(Mutex::new(InsideOidCache {
                capacity,
                holders,
                registry,
                counters: CacheCounters::default(),
            }));
        }
        Ok(db)
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Physical representation.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// ParentRel cardinality.
    pub fn parent_count(&self) -> u64 {
        self.parent_count
    }

    /// Number of ChildRel relations (the paper's `NumChildRel`).
    pub fn num_child_rels(&self) -> usize {
        self.child_counts.len()
    }

    /// Cardinality of ChildRel `i`.
    pub fn child_count(&self, i: usize) -> u64 {
        self.child_counts[i]
    }

    /// ParentRel schema.
    pub fn parent_schema(&self) -> &Schema {
        &self.parent_schema
    }

    /// ChildRel schema.
    pub fn child_schema(&self) -> &Schema {
        &self.child_schema
    }

    /// Is a unit-value cache (either placement) attached?
    pub fn has_cache(&self) -> bool {
        self.cache.is_some() || self.inside.is_some()
    }

    /// Is the attached cache inside-placed?
    pub fn has_inside_cache(&self) -> bool {
        self.inside.is_some()
    }

    /// Borrow the outside cache mutably. Errors when the database has no
    /// cache or an inside-placed one (SMART and the outside strategies
    /// need this placement).
    pub fn cache_mut(&self) -> Result<MutexGuard<'_, UnitCache>, CorError> {
        self.cache
            .as_ref()
            .map(|c| c.lock())
            .ok_or(CorError::NoCache)
    }

    /// Hit/miss/maintenance counters of whichever cache is attached.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        if let Some(c) = &self.cache {
            return Some(c.lock().counters());
        }
        self.inside.as_ref().map(|c| c.lock().counters)
    }

    /// Invalidate whatever cached state an update of `oid` poisons —
    /// outside: I-locked units; inside: every referencing parent's copy.
    pub fn invalidate_subobject(&self, oid: Oid) -> Result<usize, CorError> {
        if let Some(c) = &self.cache {
            return Ok(c.lock().invalidate_subobject(oid)?);
        }
        let Some(state) = &self.inside else {
            return Ok(0);
        };
        let victims: Vec<u64> = {
            let st = state.lock();
            st.registry
                .get(&oid)
                .map(|parents| {
                    parents
                        .iter()
                        .copied()
                        .filter(|pk| st.holders.contains(*pk))
                        .collect()
                })
                .unwrap_or_default()
        };
        for pk in &victims {
            self.inside_clear(*pk)?;
            let mut st = state.lock();
            st.holders.remove(*pk);
            st.counters.invalidations += 1;
        }
        Ok(victims.len())
    }

    /// Scan qualifying objects with their inside-cached values (standard
    /// storage; used by the inside-placement DFSCACHE path).
    pub fn parents_in_range_cached(
        &self,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<CachedParentRow>, CorError> {
        let Storage::Standard { parent, .. } = &self.storage else {
            return Err(CorError::WrongRepresentation("standard"));
        };
        let lo_k = Oid::new(PARENT_REL, lo).to_key_bytes();
        let hi_k = Oid::new(PARENT_REL, hi).to_key_bytes();
        let mut out = Vec::new();
        for (_, rec) in parent.range(&lo_k, &hi_k)? {
            let t = decode(&self.parent_schema, &rec)?;
            let key = t.get(0).as_oid().expect("parent oid column").key;
            let children = t.get(5).as_oid_list().expect("children column").to_vec();
            let cached_bytes = t.get(6).as_bytes().expect("cached column");
            let cached = if cached_bytes.is_empty() {
                None
            } else {
                Some(decode_unit_value(cached_bytes).expect("inside-cached payload decodes"))
            };
            cor_obs::heat::touch(cor_obs::HeatClass::Parent, key);
            out.push((key, children, cached));
        }
        Ok(out)
    }

    /// Record an inside-cache hit (LRU touch + counter).
    pub fn inside_touch(&self, key: u64) {
        if let Some(state) = &self.inside {
            let mut st = state.lock();
            if st.holders.contains(key) {
                st.holders.touch(key);
                st.counters.hits += 1;
            }
        }
    }

    /// Record an inside-cache miss.
    pub fn inside_miss(&self) {
        if let Some(state) = &self.inside {
            state.lock().counters.misses += 1;
        }
    }

    /// Store an inside-cached copy in parent `key`'s tuple (a ParentRel
    /// write), evicting the LRU holder at capacity.
    pub fn inside_store(&self, key: u64, records: &[Vec<u8>]) -> Result<(), CorError> {
        let Some(state) = &self.inside else {
            return Ok(());
        };
        let payload = encode_unit_value(records);
        if payload.len() + 300 > cor_pagestore::MAX_RECORD {
            return Ok(()); // too large to inline: skip caching
        }
        loop {
            let victim = {
                let st = state.lock();
                (st.holders.len() >= st.capacity)
                    .then(|| st.holders.lru_victim())
                    .flatten()
            };
            let Some(victim) = victim else { break };
            self.inside_clear(victim)?;
            let mut st = state.lock();
            st.holders.remove(victim);
            st.counters.evictions += 1;
        }
        self.inside_write(key, Some(&payload))?;
        let mut st = state.lock();
        st.holders.touch(key);
        st.counters.insertions += 1;
        Ok(())
    }

    fn inside_clear(&self, key: u64) -> Result<(), CorError> {
        self.inside_write(key, None)
    }

    /// Rewrite parent `key`'s cached column (None clears it).
    fn inside_write(&self, key: u64, payload: Option<&[u8]>) -> Result<(), CorError> {
        let _phase = cor_obs::PhaseGuard::enter(cor_obs::Phase::CacheMaintain);
        let Storage::Standard { parent, .. } = &self.storage else {
            return Err(CorError::WrongRepresentation("standard"));
        };
        let pkey = Oid::new(PARENT_REL, key).to_key_bytes();
        let Some(rec) = parent.get(&pkey)? else {
            return Err(CorError::DanglingOid(Oid::new(PARENT_REL, key)));
        };
        let mut t = decode(&self.parent_schema, &rec)?;
        t.set(
            6,
            Value::Bytes(payload.map(|p| p.to_vec()).unwrap_or_default()),
        );
        parent.update(&pkey, &encode(&self.parent_schema, &t)?)?;
        Ok(())
    }

    /// The ChildRel B-tree holding relation `rel` (standard storage only).
    pub fn child_tree(&self, rel: RelId) -> Result<&BTreeFile, CorError> {
        match &self.storage {
            Storage::Standard { children, .. } => {
                let idx = rel.checked_sub(CHILD_REL_BASE).map(usize::from);
                idx.and_then(|i| children.get(i))
                    .ok_or(CorError::UnknownRelation(rel))
            }
            Storage::Clustered { .. } => Err(CorError::WrongRepresentation("standard")),
        }
    }

    /// ParentRel B-tree (standard storage only).
    pub fn parent_tree(&self) -> Result<&BTreeFile, CorError> {
        match &self.storage {
            Storage::Standard { parent, .. } => Ok(parent),
            Storage::Clustered { .. } => Err(CorError::WrongRepresentation("standard")),
        }
    }

    /// ClusterRel B-tree and OID index (clustered storage only).
    pub fn cluster(&self) -> Result<(&BTreeFile, &IsamIndex), CorError> {
        match &self.storage {
            Storage::Clustered { cluster, oid_index } => Ok((cluster, oid_index)),
            Storage::Standard { .. } => Err(CorError::WrongRepresentation("clustered")),
        }
    }

    /// Scan the qualifying objects of a retrieve query — ParentRel tuples
    /// with `lo <= OID.key <= hi` — returning `(key, children)` pairs.
    /// Works on both representations (the clustered scan reads the object
    /// entries of ClusterRel, skipping interleaved subobjects).
    pub fn parents_in_range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<Oid>)>, CorError> {
        let mut out = Vec::new();
        match &self.storage {
            Storage::Standard { parent, .. } => {
                let lo_k = Oid::new(PARENT_REL, lo).to_key_bytes();
                let hi_k = Oid::new(PARENT_REL, hi).to_key_bytes();
                for (_, rec) in parent.range(&lo_k, &hi_k)? {
                    let t = decode(&self.parent_schema, &rec)?;
                    let key = t.get(0).as_oid().expect("parent oid column").key;
                    let children = t.get(5).as_oid_list().expect("children column").to_vec();
                    cor_obs::heat::touch(cor_obs::HeatClass::Parent, key);
                    out.push((key, children));
                }
            }
            Storage::Clustered { cluster, .. } => {
                let lo_k = cluster_key(lo, false, Oid::new(0, 0));
                let hi_k = cluster_key(hi, true, Oid::new(u16::MAX, u64::MAX));
                for (k, rec) in cluster.range(&lo_k, &hi_k)? {
                    let (_, is_child, _) = decode_cluster_key(&k).expect("cluster key");
                    if is_child {
                        continue;
                    }
                    let t = decode(&self.parent_schema, &rec)?;
                    let key = t.get(0).as_oid().expect("parent oid column").key;
                    let children = t.get(5).as_oid_list().expect("children column").to_vec();
                    cor_obs::heat::touch(cor_obs::HeatClass::Parent, key);
                    out.push((key, children));
                }
            }
        }
        Ok(out)
    }

    /// Fetch a subobject record by OID. On the standard representation this
    /// is a ChildRel B-tree probe; on the clustered one it is the ISAM
    /// probe followed by a ClusterRel access — the "random access" the
    /// paper charges non-clustered subobject fetches with.
    pub fn fetch_child_record(&self, oid: Oid) -> Result<Option<Vec<u8>>, CorError> {
        match &self.storage {
            Storage::Standard { .. } => {
                let tree = self.child_tree(oid.rel)?;
                Ok(tree.get(&oid.to_key_bytes())?)
            }
            Storage::Clustered { cluster, oid_index } => {
                let Some(tid) = oid_index.lookup(&oid.to_key_bytes())? else {
                    return Ok(None);
                };
                let (ckey, leaf) = split_tid(&tid);
                Ok(cluster.get_with_hint(leaf, ckey)?)
            }
        }
    }

    /// Batched [`Self::fetch_child_record`]: each relation's B-tree is
    /// probed through its sorted-batch lookup in windows of `batch` keys
    /// — one inner-node descent per leaf run and one coalesced read per
    /// run of adjacent leaves — instead of one root-to-leaf descent per
    /// OID. Results align with `oids` and are identical to the per-OID
    /// loop, which is exactly what runs when `batch <= 1` or on the
    /// clustered representation (whose ISAM probes are already one direct
    /// page access each).
    pub fn fetch_child_records(
        &self,
        oids: &[Oid],
        batch: usize,
    ) -> Result<Vec<Option<Vec<u8>>>, CorError> {
        if batch <= 1 || oids.len() <= 1 || !matches!(self.storage, Storage::Standard { .. }) {
            return oids
                .iter()
                .map(|&oid| self.fetch_child_record(oid))
                .collect();
        }
        let mut out = vec![None; oids.len()];
        let mut by_rel: BTreeMap<RelId, Vec<usize>> = BTreeMap::new();
        for (i, oid) in oids.iter().enumerate() {
            by_rel.entry(oid.rel).or_default().push(i);
        }
        for (rel, idxs) in by_rel {
            let tree = self.child_tree(rel)?;
            for window in idxs.chunks(batch) {
                let keys: Vec<_> = window.iter().map(|&i| oids[i].to_key_bytes()).collect();
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                for (&i, rec) in window.iter().zip(tree.get_many(&refs)?) {
                    out[i] = rec;
                }
            }
        }
        Ok(out)
    }

    /// Resolve a subobject OID to the cluster leaf page holding it
    /// (clustered storage only), without reading the leaf. This is the
    /// ISAM-probe half of [`fetch_child_page_records`]; batched callers
    /// use it to collect leaf pids for a sorted multi-page prefetch
    /// before harvesting.
    ///
    /// [`fetch_child_page_records`]: CorDatabase::fetch_child_page_records
    pub fn child_leaf_page(&self, oid: Oid) -> Result<Option<cor_pagestore::PageId>, CorError> {
        let Storage::Clustered { oid_index, .. } = &self.storage else {
            return Err(CorError::WrongRepresentation("clustered"));
        };
        let Some(tid) = oid_index.lookup(&oid.to_key_bytes())? else {
            return Ok(None);
        };
        let (_, leaf) = split_tid(&tid);
        Ok(Some(leaf))
    }

    /// Fetch a subobject **and every child record co-located on its page**
    /// (clustered storage only). One ISAM probe plus one direct page read
    /// returns the whole physically clustered unit — the paper's
    /// "their subobjects are still physically clustered, albeit elsewhere,
    /// and can be fetched in one random access" (Sec. 3.3 case \[2\]).
    pub fn fetch_child_page_records(&self, oid: Oid) -> Result<Vec<(Oid, Vec<u8>)>, CorError> {
        let Storage::Clustered { cluster, oid_index } = &self.storage else {
            return Err(CorError::WrongRepresentation("clustered"));
        };
        let Some(tid) = oid_index.lookup(&oid.to_key_bytes())? else {
            return Ok(Vec::new());
        };
        let (_, leaf) = split_tid(&tid);
        let mut out = Vec::new();
        for (k, rec) in cluster.leaf_entries(leaf)? {
            if let Some((_, true, child_oid)) = decode_cluster_key(&k) {
                out.push((child_oid, rec));
            }
        }
        Ok(out)
    }

    /// Update one integer attribute of a subobject in place, returning
    /// whether the subobject exists. Cache invalidation is the caller's
    /// responsibility (see `query::apply_update`).
    pub fn update_child_ret(&self, oid: Oid, ret_idx: usize, v: i64) -> Result<bool, CorError> {
        assert!(ret_idx < 3, "ChildRel has ret1..ret3");
        match &self.storage {
            Storage::Standard { .. } => {
                let tree = self.child_tree(oid.rel)?;
                let key = oid.to_key_bytes();
                let Some(rec) = tree.get(&key)? else {
                    return Ok(false);
                };
                let mut t = decode(&self.child_schema, &rec)?;
                t.set(1 + ret_idx, Value::Int(v));
                let rec = encode(&self.child_schema, &t)?;
                tree.update(&key, &rec)?;
                Ok(true)
            }
            Storage::Clustered { cluster, oid_index } => {
                let Some(tid) = oid_index.lookup(&oid.to_key_bytes())? else {
                    return Ok(false);
                };
                let (ckey, leaf) = split_tid(&tid);
                let Some(rec) = cluster.get_with_hint(leaf, ckey)? else {
                    return Ok(false);
                };
                let mut t = decode(&self.child_schema, &rec)?;
                t.set(1 + ret_idx, Value::Int(v));
                let rec = encode(&self.child_schema, &t)?;
                cluster.update_with_hint(leaf, ckey, &rec)?;
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    /// Tiny hand-built spec: 4 parents, one ChildRel of 6 subobjects.
    /// Parents 0 and 1 share a unit; parents 2, 3 have their own.
    pub(crate) fn tiny_spec() -> DatabaseSpec {
        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        let child = |k: u64| SubobjectSpec {
            oid: c(k),
            rets: [k as i64 * 10, k as i64 * 100, k as i64 * 1000],
            dummy: "x".repeat(20),
        };
        DatabaseSpec {
            parents: vec![
                ObjectSpec {
                    key: 0,
                    rets: [0, 0, 0],
                    dummy: "p".repeat(30),
                    children: vec![c(0), c(1)],
                },
                ObjectSpec {
                    key: 1,
                    rets: [1, 1, 1],
                    dummy: "p".repeat(30),
                    children: vec![c(0), c(1)],
                },
                ObjectSpec {
                    key: 2,
                    rets: [2, 2, 2],
                    dummy: "p".repeat(30),
                    children: vec![c(2), c(3)],
                },
                ObjectSpec {
                    key: 3,
                    rets: [3, 3, 3],
                    dummy: "p".repeat(30),
                    children: vec![c(4), c(5)],
                },
            ],
            child_rels: vec![(0..6).map(child).collect()],
        }
    }

    fn tiny_assignment() -> ClusterAssignment {
        // Deterministic: every subobject clustered with the lowest-keyed
        // parent that references it.
        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        ClusterAssignment::from_pairs(vec![
            (c(0), 0),
            (c(1), 0),
            (c(2), 2),
            (c(3), 2),
            (c(4), 3),
            (c(5), 3),
        ])
    }

    #[test]
    fn standard_build_and_parent_scan() {
        let db = CorDatabase::build_standard(pool(32), &tiny_spec(), None).unwrap();
        assert_eq!(db.parent_count(), 4);
        assert_eq!(db.num_child_rels(), 1);
        assert_eq!(db.child_count(0), 6);
        let ps = db.parents_in_range(1, 2).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].0, 1);
        assert_eq!(ps[1].0, 2);
        assert_eq!(
            ps[0].1,
            vec![Oid::new(CHILD_REL_BASE, 0), Oid::new(CHILD_REL_BASE, 1)]
        );
    }

    #[test]
    fn clustered_build_and_parent_scan_agree_with_standard() {
        let spec = tiny_spec();
        let std_db = CorDatabase::build_standard(pool(32), &spec, None).unwrap();
        let clu_db = CorDatabase::build_clustered(pool(32), &spec, &tiny_assignment()).unwrap();
        for (lo, hi) in [(0, 3), (1, 1), (2, 3), (0, 0)] {
            assert_eq!(
                std_db.parents_in_range(lo, hi).unwrap(),
                clu_db.parents_in_range(lo, hi).unwrap(),
                "range {lo}..={hi}"
            );
        }
    }

    #[test]
    fn fetch_child_record_both_representations() {
        let spec = tiny_spec();
        let std_db = CorDatabase::build_standard(pool(32), &spec, None).unwrap();
        let clu_db = CorDatabase::build_clustered(pool(32), &spec, &tiny_assignment()).unwrap();
        for k in 0..6u64 {
            let oid = Oid::new(CHILD_REL_BASE, k);
            let a = std_db.fetch_child_record(oid).unwrap().unwrap();
            let b = clu_db.fetch_child_record(oid).unwrap().unwrap();
            assert_eq!(a, b, "child {k}");
        }
        let absent = Oid::new(CHILD_REL_BASE, 99);
        assert!(std_db.fetch_child_record(absent).unwrap().is_none());
        assert!(clu_db.fetch_child_record(absent).unwrap().is_none());
    }

    #[test]
    fn update_child_ret_in_place_both_representations() {
        let spec = tiny_spec();
        for db in [
            CorDatabase::build_standard(pool(32), &spec, None).unwrap(),
            CorDatabase::build_clustered(pool(32), &spec, &tiny_assignment()).unwrap(),
        ] {
            let oid = Oid::new(CHILD_REL_BASE, 2);
            assert!(db.update_child_ret(oid, 0, -555).unwrap());
            let rec = db.fetch_child_record(oid).unwrap().unwrap();
            let t = decode(&child_schema(), &rec).unwrap();
            assert_eq!(t.get(1).as_int(), Some(-555));
            assert_eq!(t.get(2).as_int(), Some(200), "other attrs untouched");
            assert!(!db
                .update_child_ret(Oid::new(CHILD_REL_BASE, 99), 0, 0)
                .unwrap());
        }
    }

    #[test]
    fn cluster_key_codec() {
        let oid = Oid::new(CHILD_REL_BASE, 12345);
        let k = cluster_key(77, true, oid);
        assert_eq!(decode_cluster_key(&k), Some((77, true, oid)));
        let k = cluster_key(77, false, Oid::new(PARENT_REL, 77));
        assert_eq!(
            decode_cluster_key(&k),
            Some((77, false, Oid::new(PARENT_REL, 77)))
        );
        assert_eq!(decode_cluster_key(&[0u8; 5]), None);
    }

    #[test]
    fn cluster_keys_order_parent_before_children() {
        let p = cluster_key(5, false, Oid::new(PARENT_REL, 5));
        let c = cluster_key(5, true, Oid::new(CHILD_REL_BASE, 0));
        let next_p = cluster_key(6, false, Oid::new(PARENT_REL, 6));
        assert!(p < c);
        assert!(c < next_p);
    }

    #[test]
    fn wrong_representation_is_an_error() {
        let spec = tiny_spec();
        let std_db = CorDatabase::build_standard(pool(32), &spec, None).unwrap();
        assert!(matches!(
            std_db.cluster(),
            Err(CorError::WrongRepresentation(_))
        ));
        let clu_db = CorDatabase::build_clustered(pool(32), &spec, &tiny_assignment()).unwrap();
        assert!(matches!(
            clu_db.parent_tree(),
            Err(CorError::WrongRepresentation(_))
        ));
        assert!(matches!(
            clu_db.child_tree(CHILD_REL_BASE),
            Err(CorError::WrongRepresentation(_))
        ));
    }

    #[test]
    fn cache_attachment() {
        let spec = tiny_spec();
        let db = CorDatabase::build_standard(
            pool(32),
            &spec,
            Some(CacheConfig {
                capacity: 8,
                policy: EvictionPolicy::Lru,
                ..CacheConfig::default()
            }),
        )
        .unwrap();
        assert!(db.has_cache());
        assert!(db.cache_mut().unwrap().is_empty());
        let no_cache = CorDatabase::build_standard(pool(32), &spec, None).unwrap();
        assert!(matches!(no_cache.cache_mut(), Err(CorError::NoCache)));
    }

    #[test]
    fn unassigned_subobjects_land_in_the_unclustered_tail() {
        let spec = tiny_spec();
        // Only subobject 0 is clustered; the rest go to the tail area and
        // stay reachable through the OID index.
        let partial = ClusterAssignment::from_pairs(vec![(Oid::new(CHILD_REL_BASE, 0), 0)]);
        let db = CorDatabase::build_clustered(pool(32), &spec, &partial).unwrap();
        for k in 0..6u64 {
            assert!(
                db.fetch_child_record(Oid::new(CHILD_REL_BASE, k))
                    .unwrap()
                    .is_some(),
                "child {k} must remain reachable"
            );
        }
        // Parent scans never see the tail area.
        let ps = db.parents_in_range(0, 3).unwrap();
        assert_eq!(ps.len(), 4);
    }
}
