//! The unit-value cache (outside caching, Sec. 2.3 / 3.2 / 4).
//!
//! Cached representation of units is kept **on disk** in the `Cache`
//! relation: "Associated with each unit is a hashkey which is a function of
//! the concatenation of the OID's in that unit. Cache is maintained as a
//! hash relation, hashed on hashkey." Cache probes, insertions and
//! invalidation deletes therefore cost real page I/O through the buffer
//! pool; only the in-memory bookkeeping (LRU order, I-lock table, member
//! lists) is free, as system-catalog state would be.
//!
//! Capacity is bounded in **units** (the paper's `SizeCache`, 1000 units ≈
//! 10% of a typical database). The paper does not specify a replacement
//! policy for a full cache; we use LRU over units and call this choice out
//! in DESIGN.md (an ablation bench compares it with random eviction).

use crate::ilock::{HashKey, ILockTable};
use cor_access::{AccessError, HashFile};
use cor_obs::{Phase, PhaseGuard};
use cor_pagestore::BufferPool;
use cor_relational::Oid;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The paper's `SizeCache` default: 1000 units.
pub const DEFAULT_SIZE_CACHE: usize = 1000;

/// Eviction policy when the cache is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least recently used unit (default).
    Lru,
    /// Evict an arbitrary unit (deterministic: smallest bookkeeping tick is
    /// replaced by a pseudo-random pick seeded from the hashkey).
    Random,
}

/// Hit/miss/maintenance counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Probes that found the unit cached.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Units inserted (materialized and cached).
    pub insertions: u64,
    /// Units deleted because a member subobject was updated.
    pub invalidations: u64,
    /// Units deleted to make room.
    pub evictions: u64,
}

impl CacheCounters {
    /// Total probes (hits + misses).
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`, defined as 0.0 when nothing was probed
    /// (never NaN — exporters require finite values).
    pub fn hit_ratio(&self) -> f64 {
        if self.probes() == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes() as f64
        }
    }
}

struct CachedMeta {
    members: Vec<Oid>,
    tick: u64,
}

/// A small LRU set over `u64` identities, shared by the inside-caching
/// implementations (which track *which holders have a copy*, not the
/// copies themselves — those live in the holders' tuples).
#[derive(Debug, Default)]
pub(crate) struct LruSet {
    tick_of: HashMap<u64, u64>,
    order: BTreeMap<u64, u64>,
    tick: u64,
}

impl LruSet {
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.tick_of.contains_key(&key)
    }

    pub(crate) fn touch(&mut self, key: u64) {
        if let Some(old) = self.tick_of.get(&key).copied() {
            self.order.remove(&old);
        }
        self.tick += 1;
        self.tick_of.insert(key, self.tick);
        self.order.insert(self.tick, key);
    }

    pub(crate) fn remove(&mut self, key: u64) {
        if let Some(tick) = self.tick_of.remove(&key) {
            self.order.remove(&tick);
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.tick_of.len()
    }

    pub(crate) fn lru_victim(&self) -> Option<u64> {
        self.order.values().next().copied()
    }
}

/// The bounded, disk-resident cache of unit values.
pub struct UnitCache {
    file: HashFile,
    capacity: usize,
    policy: EvictionPolicy,
    ilocks: ILockTable,
    entries: HashMap<HashKey, CachedMeta>,
    lru: BTreeMap<u64, HashKey>,
    tick: u64,
    counters: CacheCounters,
}

/// Encode the cached value of a unit: its member records, length-prefixed.
pub fn encode_unit_value(records: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + records.iter().map(|r| 2 + r.len()).sum::<usize>());
    out.extend_from_slice(&(records.len() as u16).to_le_bytes());
    for r in records {
        out.extend_from_slice(&(r.len() as u16).to_le_bytes());
        out.extend_from_slice(r);
    }
    out
}

/// Decode a cached unit value back into member records.
pub fn decode_unit_value(mut bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    if bytes.len() < 2 {
        return None;
    }
    let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    bytes = &bytes[2..];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if bytes.len() < 2 {
            return None;
        }
        let len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        bytes = &bytes[2..];
        if bytes.len() < len {
            return None;
        }
        out.push(bytes[..len].to_vec());
        bytes = &bytes[len..];
    }
    Some(out)
}

impl UnitCache {
    /// Create an empty cache bounded at `capacity` units.
    pub fn new(pool: Arc<BufferPool>, capacity: usize) -> Result<Self, AccessError> {
        Self::with_policy(pool, capacity, EvictionPolicy::Lru)
    }

    /// Create with an explicit eviction policy (for the ablation bench).
    pub fn with_policy(
        pool: Arc<BufferPool>,
        capacity: usize,
        policy: EvictionPolicy,
    ) -> Result<Self, AccessError> {
        assert!(capacity > 0, "SizeCache must be positive");
        // Size buckets so that chains stay short at full capacity
        // (~3 cached units fit a 2 KB page).
        let buckets = (capacity / 2).max(16);
        let file = HashFile::create(pool, buckets)?;
        Ok(UnitCache {
            file,
            capacity,
            policy,
            ilocks: ILockTable::new(),
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            counters: CacheCounters::default(),
        })
    }

    /// Number of cached units.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `SizeCache` bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/maintenance counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    fn touch(&mut self, hashkey: HashKey) {
        if let Some(meta) = self.entries.get_mut(&hashkey) {
            self.lru.remove(&meta.tick);
            self.tick += 1;
            meta.tick = self.tick;
            self.lru.insert(self.tick, hashkey);
        }
    }

    /// Probe the cache for a unit: "Check if the value of the subobjects
    /// ... is cached."
    ///
    /// The presence check consults the in-memory cache directory (the
    /// hashkey table is system-catalog-sized metadata, like the I-lock
    /// table) and costs no I/O; SMART's breadth-first arm depends on
    /// being able to classify NumTop units cheaply. Reading the *value*
    /// of a cached unit goes to the disk-resident hash relation and is
    /// charged real page I/O.
    pub fn probe(&mut self, hashkey: HashKey) -> Result<Option<Vec<Vec<u8>>>, AccessError> {
        if !self.entries.contains_key(&hashkey) {
            self.counters.misses += 1;
            return Ok(None);
        }
        let _phase = PhaseGuard::enter(Phase::CacheProbe);
        let bytes = self
            .file
            .get(&hashkey.to_le_bytes())?
            .expect("directory and hash relation must agree");
        self.counters.hits += 1;
        self.touch(hashkey);
        Ok(Some(
            decode_unit_value(&bytes).expect("cache value must decode"),
        ))
    }

    /// Presence check only (no I/O, no counter/LRU effects).
    pub fn is_cached(&self, hashkey: HashKey) -> bool {
        self.entries.contains_key(&hashkey)
    }

    /// Cache a freshly materialized unit: evict if at capacity, store the
    /// value in the hash relation, and take I-locks for every member.
    pub fn insert(
        &mut self,
        hashkey: HashKey,
        members: &[Oid],
        records: &[Vec<u8>],
    ) -> Result<(), AccessError> {
        let _phase = PhaseGuard::enter(Phase::CacheMaintain);
        if self.entries.contains_key(&hashkey) {
            // Already cached (two objects sharing a unit raced to
            // materialize it within one query): refresh the value.
            self.file
                .put(&hashkey.to_le_bytes(), &encode_unit_value(records))?;
            self.touch(hashkey);
            return Ok(());
        }
        while self.entries.len() >= self.capacity {
            self.evict_one()?;
        }
        self.file
            .put(&hashkey.to_le_bytes(), &encode_unit_value(records))?;
        self.tick += 1;
        self.entries.insert(
            hashkey,
            CachedMeta {
                members: members.to_vec(),
                tick: self.tick,
            },
        );
        self.lru.insert(self.tick, hashkey);
        self.ilocks.lock_unit(hashkey, members);
        self.counters.insertions += 1;
        Ok(())
    }

    fn evict_one(&mut self) -> Result<(), AccessError> {
        let _phase = PhaseGuard::enter(Phase::CacheMaintain);
        let victim = match self.policy {
            EvictionPolicy::Lru => self.lru.keys().next().copied(),
            EvictionPolicy::Random => {
                // Deterministic pseudo-random pick: hash the current tick
                // into the LRU index space.
                let n = self.lru.len() as u64;
                if n == 0 {
                    None
                } else {
                    let skip = (cor_access::fnv1a64(&self.tick.to_le_bytes()) % n) as usize;
                    self.lru.keys().nth(skip).copied()
                }
            }
        };
        let Some(tick) = victim else { return Ok(()) };
        let hashkey = self.lru.remove(&tick).expect("victim tick must exist");
        let meta = self
            .entries
            .remove(&hashkey)
            .expect("victim must be tracked");
        self.file.delete(&hashkey.to_le_bytes())?;
        self.ilocks.unlock_unit(hashkey, &meta.members);
        self.counters.evictions += 1;
        Ok(())
    }

    /// An update hit subobject `oid`: delete every cached unit holding an
    /// I-lock for it. Returns how many units were invalidated.
    pub fn invalidate_subobject(&mut self, oid: Oid) -> Result<usize, AccessError> {
        let _phase = PhaseGuard::enter(Phase::CacheMaintain);
        let holders = self.ilocks.holders(oid);
        for &hashkey in &holders {
            let meta = self
                .entries
                .remove(&hashkey)
                .expect("I-locked unit must be cached");
            self.lru.remove(&meta.tick);
            self.file.delete(&hashkey.to_le_bytes())?;
            self.ilocks.unlock_unit(hashkey, &meta.members);
            self.counters.invalidations += 1;
        }
        Ok(holders.len())
    }

    /// Is the unit currently cached? In-memory check only (no I/O): used by
    /// assertions and tests, never by the strategies themselves.
    pub fn contains_meta(&self, hashkey: HashKey) -> bool {
        self.entries.contains_key(&hashkey)
    }

    /// Snapshot the cache for the engine catalog: hash-relation metadata
    /// plus the directory in LRU order (oldest first).
    pub fn save_state(&self) -> crate::persist::SavedUnitCache {
        crate::persist::SavedUnitCache {
            file: self.file.metadata(),
            capacity: self.capacity,
            policy: self.policy,
            entries: self
                .lru
                .values()
                .map(|hk| (*hk, self.entries[hk].members.clone()))
                .collect(),
        }
    }

    /// Reattach to a snapshotted cache, reconciling the directory against
    /// the recovered hash relation: entries whose record is gone (the
    /// snapshot outlived them) are dropped; I-locks are retaken for the
    /// survivors. Returns the cache and how many entries were dropped.
    /// Records the snapshot never saw stay invisible — probes consult the
    /// directory first, so they can only leak space, never answers.
    pub fn reattach(
        pool: Arc<BufferPool>,
        saved: &crate::persist::SavedUnitCache,
    ) -> Result<(Self, usize), AccessError> {
        assert!(saved.capacity > 0, "SizeCache must be positive");
        let file = HashFile::from_metadata(pool, saved.file);
        let mut cache = UnitCache {
            file,
            capacity: saved.capacity,
            policy: saved.policy,
            ilocks: ILockTable::new(),
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            counters: CacheCounters::default(),
        };
        let mut dropped = 0;
        for (hashkey, members) in &saved.entries {
            if cache.file.get(&hashkey.to_le_bytes())?.is_none() {
                dropped += 1;
                continue;
            }
            cache.tick += 1;
            cache.entries.insert(
                *hashkey,
                CachedMeta {
                    members: members.clone(),
                    tick: cache.tick,
                },
            );
            cache.lru.insert(cache.tick, *hashkey);
            cache.ilocks.lock_unit(*hashkey, members);
        }
        Ok((cache, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    fn oid(k: u64) -> Oid {
        Oid::new(10, k)
    }

    fn recs(tag: u8) -> Vec<Vec<u8>> {
        vec![vec![tag; 40], vec![tag; 50]]
    }

    #[test]
    fn unit_value_codec_roundtrip() {
        let records = vec![b"abc".to_vec(), b"".to_vec(), vec![9u8; 100]];
        let enc = encode_unit_value(&records);
        assert_eq!(decode_unit_value(&enc).unwrap(), records);
        assert_eq!(
            decode_unit_value(&encode_unit_value(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );
        assert_eq!(
            decode_unit_value(&enc[..enc.len() - 1]),
            None,
            "truncation detected"
        );
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = UnitCache::new(pool(16), 10).unwrap();
        assert_eq!(c.probe(42).unwrap(), None);
        c.insert(42, &[oid(1), oid(2)], &recs(7)).unwrap();
        assert_eq!(c.probe(42).unwrap().unwrap(), recs(7));
        let k = c.counters();
        assert_eq!((k.hits, k.misses, k.insertions), (1, 1, 1));
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let mut c = UnitCache::new(pool(32), 3).unwrap();
        for h in 1..=3u64 {
            c.insert(h, &[oid(h)], &recs(h as u8)).unwrap();
        }
        // Touch 1 so 2 becomes LRU.
        c.probe(1).unwrap().unwrap();
        c.insert(4, &[oid(4)], &recs(4)).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.contains_meta(1));
        assert!(!c.contains_meta(2), "unit 2 was LRU and must be evicted");
        assert!(c.contains_meta(3) && c.contains_meta(4));
        assert_eq!(c.counters().evictions, 1);
        // The evicted unit really left the disk relation.
        assert_eq!(c.probe(2).unwrap(), None);
    }

    #[test]
    fn invalidation_deletes_all_holding_units() {
        let mut c = UnitCache::new(pool(32), 10).unwrap();
        c.insert(100, &[oid(1), oid(2)], &recs(1)).unwrap();
        c.insert(200, &[oid(2), oid(3)], &recs(2)).unwrap();
        c.insert(300, &[oid(9)], &recs(3)).unwrap();
        let n = c.invalidate_subobject(oid(2)).unwrap();
        assert_eq!(n, 2);
        assert_eq!(c.probe(100).unwrap(), None);
        assert_eq!(c.probe(200).unwrap(), None);
        assert!(c.probe(300).unwrap().is_some());
        assert_eq!(c.counters().invalidations, 2);
        // Updating an unlocked subobject is a no-op.
        assert_eq!(c.invalidate_subobject(oid(777)).unwrap(), 0);
    }

    #[test]
    fn eviction_releases_ilocks() {
        let mut c = UnitCache::new(pool(32), 1).unwrap();
        c.insert(100, &[oid(1)], &recs(1)).unwrap();
        c.insert(200, &[oid(2)], &recs(2)).unwrap(); // evicts 100
                                                     // oid(1)'s lock must be gone: invalidating it touches nothing.
        assert_eq!(c.invalidate_subobject(oid(1)).unwrap(), 0);
        assert_eq!(c.invalidate_subobject(oid(2)).unwrap(), 1);
    }

    #[test]
    fn probes_cost_io_when_cold() {
        let p = pool(8);
        let mut c = UnitCache::new(Arc::clone(&p), 10).unwrap();
        c.insert(42, &[oid(1)], &recs(1)).unwrap();
        p.flush_and_clear().unwrap();
        let before = p.stats().reads();
        c.probe(42).unwrap().unwrap();
        assert!(
            p.stats().reads() > before,
            "cold cache probe must read the hash relation"
        );
    }

    #[test]
    fn reinsert_existing_refreshes_value() {
        let mut c = UnitCache::new(pool(16), 4).unwrap();
        c.insert(1, &[oid(1)], &recs(1)).unwrap();
        c.insert(1, &[oid(1)], &recs(9)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.probe(1).unwrap().unwrap(), recs(9));
        assert_eq!(c.counters().insertions, 1, "refresh is not a new insertion");
    }

    #[test]
    fn random_policy_still_bounds_cache() {
        let mut c = UnitCache::with_policy(pool(32), 4, EvictionPolicy::Random).unwrap();
        for h in 0..20u64 {
            c.insert(h, &[oid(h)], &recs(h as u8)).unwrap();
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.counters().evictions, 16);
    }
}
