//! # complexobj
//!
//! A from-scratch reproduction of the system studied in
//! **Jhingran & Stonebraker, "Alternatives in Complex Object
//! Representation: A Performance Perspective"** (UCB/ERL M89/18, ICDE
//! 1990).
//!
//! The paper classifies complex-object representations into a matrix of
//! primary representation (procedural / OID / value-based) × cached
//! representation (none / OIDs / values) and experimentally studies the
//! OID column, adding a clustering axis. This crate implements:
//!
//! * the representation matrix model ([`matrix`]);
//! * units of subobjects and the sharing algebra ([`mod@unit`]);
//! * the experiment database in both the standard and the clustered
//!   physical representation ([`database`], [`cluster`]);
//! * the disk-resident, I-lock-invalidated unit-value cache
//!   ([`cache`], [`ilock`]);
//! * the six query-processing strategies — DFS, BFS, BFSNODUP, DFSCACHE,
//!   DFSCLUST and SMART ([`strategies`]);
//! * query/update types with ParCost/ChildCost accounting ([`query`]).
//!
//! ```
//! use complexobj::database::{CorDatabase, DatabaseSpec, ObjectSpec, SubobjectSpec, CHILD_REL_BASE};
//! use complexobj::query::{RetAttr, RetrieveQuery};
//! use complexobj::strategies::{execute_retrieve, ExecOptions};
//! use complexobj::Strategy;
//! use cor_pagestore::{BufferPool, IoStats, MemDisk};
//! use cor_relational::Oid;
//! use std::sync::Arc;
//!
//! // Two complex objects sharing one subobject.
//! let c = |k| Oid::new(CHILD_REL_BASE, k);
//! let spec = DatabaseSpec {
//!     parents: vec![
//!         ObjectSpec { key: 0, rets: [1, 2, 3], dummy: "pad".into(), children: vec![c(0), c(1)] },
//!         ObjectSpec { key: 1, rets: [4, 5, 6], dummy: "pad".into(), children: vec![c(1)] },
//!     ],
//!     child_rels: vec![(0..2)
//!         .map(|k| SubobjectSpec { oid: c(k), rets: [10 * k as i64, 0, 0], dummy: "p".into() })
//!         .collect()],
//! };
//! let pool = Arc::new(BufferPool::builder().capacity(100).build());
//! let db = CorDatabase::build_standard(pool, &spec, None).unwrap();
//!
//! let query = RetrieveQuery { lo: 0, hi: 1, attr: RetAttr::Ret1 };
//! let out = execute_retrieve(&db, Strategy::Dfs, &query, &ExecOptions::default()).unwrap();
//! let mut values = out.values.clone();
//! values.sort();
//! assert_eq!(values, vec![0, 10, 10]); // the shared subobject appears twice
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod database;
pub mod ilock;
pub mod matrix;
pub mod multilevel;
pub mod persist;
pub mod procedural;
pub mod quel;
pub mod query;
pub mod strategies;
pub mod unit;
pub mod valuebased;

pub use cache::{CacheCounters, EvictionPolicy, UnitCache, DEFAULT_SIZE_CACHE};
pub use cluster::ClusterAssignment;
pub use database::{CacheConfig, CorDatabase, DatabaseSpec, ObjectSpec, Storage, SubobjectSpec};
pub use ilock::{HashKey, ILockTable};
pub use matrix::{CachePlacement, CachedRepr, PrimaryRepr, ReprPoint, Strategy};
#[allow(deprecated)]
pub use multilevel::run_multilevel;
pub use multilevel::{bfs_multilevel, dfs_multilevel, execute_multilevel, MultiDotQuery};
pub use persist::{
    SavedCacheState, SavedOidDb, SavedProcCache, SavedProcDb, SavedStorage, SavedUnitCache,
};
pub use quel::{parse as parse_quel, QuelError, QuelStatement};
pub use query::{apply_update, Query, RetAttr, RetrieveQuery, StrategyOutput, UpdateQuery};
#[allow(deprecated)]
pub use strategies::run_retrieve;
pub use strategies::{execute_retrieve, ExecOptions, IoOptions, JoinChoice};
pub use unit::{hashkey_of, measure_sharing, SharingFactors, Unit};
pub use valuebased::{value_parent_schema, ValueDatabase, VALUE_PARENT_REL};

use cor_access::AccessError;
use cor_relational::{Oid, RelId};

/// Errors from complex-object operations.
#[derive(Debug)]
pub enum CorError {
    /// Storage layer failed.
    Access(AccessError),
    /// A referenced subobject does not exist.
    DanglingOid(Oid),
    /// The operation needs the other physical representation.
    WrongRepresentation(&'static str),
    /// A relation id outside the database was referenced.
    UnknownRelation(RelId),
    /// The strategy needs a cache and none is attached.
    NoCache,
    /// The durability subsystem (WAL append, fsync, checkpoint) failed.
    Durability(String),
    /// The store holds pages but no engine catalog; it was not created by
    /// the lifecycle API (or its catalog page was destroyed).
    CatalogMissing,
    /// The store's catalog was written by an incompatible on-disk layout.
    CatalogVersion {
        /// Version found on disk.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
}

impl std::fmt::Display for CorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorError::Access(e) => write!(f, "access error: {e}"),
            CorError::DanglingOid(o) => write!(f, "dangling OID {o}"),
            CorError::WrongRepresentation(need) => {
                write!(f, "operation requires the {need} representation")
            }
            CorError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            CorError::NoCache => write!(f, "no unit cache attached to this database"),
            CorError::Durability(msg) => write!(f, "durability failure: {msg}"),
            CorError::CatalogMissing => {
                write!(
                    f,
                    "store has no engine catalog (not created by Engine::create)"
                )
            }
            CorError::CatalogVersion { found, expected } => {
                write!(
                    f,
                    "engine catalog version mismatch: found v{found}, this build expects v{expected}"
                )
            }
        }
    }
}

impl std::error::Error for CorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorError::Access(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AccessError> for CorError {
    fn from(e: AccessError) -> Self {
        CorError::Access(e)
    }
}

impl From<cor_pagestore::BufferError> for CorError {
    fn from(e: cor_pagestore::BufferError) -> Self {
        CorError::Access(AccessError::Buffer(e))
    }
}

impl From<cor_access::CodecError> for CorError {
    fn from(e: cor_access::CodecError) -> Self {
        CorError::Access(AccessError::Codec(e))
    }
}
