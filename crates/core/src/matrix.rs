//! The representation matrix (paper Sections 2–3, Figures 1 and 2).
//!
//! Complex-object representations are classified along two axes:
//!
//! * **primary representation** — how the object ↔ subobject relationship
//!   is stored;
//! * **cached representation** — what precomputed information about the
//!   subobjects is kept on disk alongside it.
//!
//! Some combinations "do not make sense" (Fig. 1 shades them out): a
//! value-based object already contains everything, so caching adds
//! nothing; caching OIDs under an OID primary is equally pointless. Within
//! the OID column the paper adds a third axis — clustering — and studies
//! the five query-processing strategies of Fig. 2 plus the SMART hybrid of
//! Sec. 5.3.

/// How the object ↔ subobject relationship is stored (Sec. 2.1–2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimaryRepr {
    /// The subobjects are identified by a stored retrieve-only query
    /// (POSTGRES-style procedural attributes). Studied in \[JHIN88\].
    Procedural,
    /// A list of subobject OIDs is stored with the object — the
    /// representation this paper studies.
    Oid,
    /// Subobject values are stored inline in the referencing object
    /// (NF², EXTRA "own"); no identifiers, replication under sharing.
    ValueBased,
}

/// What is precomputed and cached on disk (Sec. 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachedRepr {
    /// Nothing is cached.
    None,
    /// The OIDs of the subobjects are cached (only meaningful over a
    /// procedural primary).
    Oids,
    /// The values of the subobjects are cached.
    Values,
}

/// Where cached information lives relative to the referencing object
/// (Sec. 2.3). \[JHIN88\] showed outside caching dominates, so the paper
/// (and this crate's cache) uses outside caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachePlacement {
    /// Cached with the referencing object; no sharing possible.
    Inside,
    /// Cached away from the object; objects referencing the same unit
    /// share one cached copy.
    Outside,
}

/// A point in the representation matrix, optionally extended with the
/// clustering axis available under the OID primary (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReprPoint {
    /// Primary representation.
    pub primary: PrimaryRepr,
    /// Cached representation.
    pub cached: CachedRepr,
    /// Are subobjects physically clustered with referencing objects?
    pub clustered: bool,
}

impl ReprPoint {
    /// Is this combination meaningful (unshaded in Fig. 1 / Fig. 2)?
    ///
    /// * value-based primaries gain nothing from caching or clustering;
    /// * caching OIDs under an OID primary caches what is already stored;
    /// * clustering is an axis of the OID representation only;
    /// * combining caching *and* clustering "does not make sense" —
    ///   both spend the same budget on the same goal (Sec. 3.4).
    pub fn is_meaningful(&self) -> bool {
        match self.primary {
            PrimaryRepr::ValueBased => self.cached == CachedRepr::None && !self.clustered,
            PrimaryRepr::Procedural => !self.clustered,
            PrimaryRepr::Oid => {
                if self.cached == CachedRepr::Oids {
                    return false;
                }
                !(self.clustered && self.cached == CachedRepr::Values)
            }
        }
    }

    /// All meaningful points of the matrix.
    pub fn all_meaningful() -> Vec<ReprPoint> {
        let mut out = Vec::new();
        for primary in [
            PrimaryRepr::Procedural,
            PrimaryRepr::Oid,
            PrimaryRepr::ValueBased,
        ] {
            for cached in [CachedRepr::None, CachedRepr::Oids, CachedRepr::Values] {
                for clustered in [false, true] {
                    let p = ReprPoint {
                        primary,
                        cached,
                        clustered,
                    };
                    if p.is_meaningful() {
                        out.push(p);
                    }
                }
            }
        }
        out
    }
}

/// The query-processing strategies of Fig. 2 plus SMART (Sec. 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Depth-first: per-parent index probes into ChildRel.
    Dfs,
    /// Breadth-first: collect OIDs into a temporary, then join (merge join
    /// when the temporary is large, iterative substitution when small).
    Bfs,
    /// BFS with duplicate elimination on the temporary.
    BfsNoDup,
    /// DFS consulting and maintaining the unit-value cache.
    DfsCache,
    /// DFS over the clustered representation.
    DfsClust,
    /// Hybrid: DFSCACHE below a NumTop threshold, cache-aware BFS without
    /// cache maintenance above it.
    Smart,
}

impl Strategy {
    /// Every strategy, in the paper's order of introduction.
    pub const ALL: [Strategy; 6] = [
        Strategy::Dfs,
        Strategy::Bfs,
        Strategy::BfsNoDup,
        Strategy::DfsCache,
        Strategy::DfsClust,
        Strategy::Smart,
    ];

    /// The representation point this strategy runs against.
    pub fn repr_point(&self) -> ReprPoint {
        let (cached, clustered) = match self {
            Strategy::Dfs | Strategy::Bfs | Strategy::BfsNoDup => (CachedRepr::None, false),
            Strategy::DfsCache | Strategy::Smart => (CachedRepr::Values, false),
            Strategy::DfsClust => (CachedRepr::None, true),
        };
        ReprPoint {
            primary: PrimaryRepr::Oid,
            cached,
            clustered,
        }
    }

    /// Does the strategy require the clustered ClusterRel representation?
    pub fn needs_cluster(&self) -> bool {
        matches!(self, Strategy::DfsClust)
    }

    /// Does the strategy require the unit-value cache?
    pub fn needs_cache(&self) -> bool {
        matches!(self, Strategy::DfsCache | Strategy::Smart)
    }

    /// Short display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Dfs => "DFS",
            Strategy::Bfs => "BFS",
            Strategy::BfsNoDup => "BFSNODUP",
            Strategy::DfsCache => "DFSCACHE",
            Strategy::DfsClust => "DFSCLUST",
            Strategy::Smart => "SMART",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_based_only_meaningful_bare() {
        assert!(ReprPoint {
            primary: PrimaryRepr::ValueBased,
            cached: CachedRepr::None,
            clustered: false
        }
        .is_meaningful());
        assert!(!ReprPoint {
            primary: PrimaryRepr::ValueBased,
            cached: CachedRepr::Values,
            clustered: false
        }
        .is_meaningful());
        assert!(!ReprPoint {
            primary: PrimaryRepr::ValueBased,
            cached: CachedRepr::None,
            clustered: true
        }
        .is_meaningful());
    }

    #[test]
    fn oid_matrix_matches_figure_2() {
        // Fig. 2: the four explored points are (cache values | none) x
        // (clustered | not), minus the shaded cache+cluster corner.
        let p = |cached, clustered| ReprPoint {
            primary: PrimaryRepr::Oid,
            cached,
            clustered,
        };
        assert!(p(CachedRepr::None, false).is_meaningful()); // DFS/BFS/BFSNODUP
        assert!(p(CachedRepr::Values, false).is_meaningful()); // DFSCACHE
        assert!(p(CachedRepr::None, true).is_meaningful()); // DFSCLUST
        assert!(!p(CachedRepr::Values, true).is_meaningful()); // shaded
        assert!(!p(CachedRepr::Oids, false).is_meaningful()); // caching what's stored
    }

    #[test]
    fn procedural_supports_both_cache_kinds() {
        let p = |cached| ReprPoint {
            primary: PrimaryRepr::Procedural,
            cached,
            clustered: false,
        };
        assert!(p(CachedRepr::None).is_meaningful());
        assert!(p(CachedRepr::Oids).is_meaningful());
        assert!(p(CachedRepr::Values).is_meaningful());
    }

    #[test]
    fn meaningful_point_count() {
        // Procedural x {None,Oids,Values} + OID x {None, None+clust, Values}
        // + ValueBased bare = 3 + 3 + 1.
        assert_eq!(ReprPoint::all_meaningful().len(), 7);
    }

    #[test]
    fn strategies_map_to_their_matrix_points() {
        for s in Strategy::ALL {
            let p = s.repr_point();
            assert!(p.is_meaningful(), "{s} maps to a shaded point");
            assert_eq!(p.primary, PrimaryRepr::Oid);
        }
        assert!(Strategy::DfsClust.repr_point().clustered);
        assert_eq!(Strategy::DfsCache.repr_point().cached, CachedRepr::Values);
        assert_eq!(Strategy::Bfs.repr_point().cached, CachedRepr::None);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["DFS", "BFS", "BFSNODUP", "DFSCACHE", "DFSCLUST", "SMART"]
        );
        assert_eq!(Strategy::Smart.to_string(), "SMART");
    }
}
