//! Invalidation locks (I-locks, Sec. 3.2).
//!
//! "Associated with each subobject is a lock called an invalidation lock
//! (I-lock, for short) for each unit that it belongs to. Consequently, when
//! a subobject is updated, we invalidate all the (cached) units whose
//! I-locks are held by the subobject in question."
//!
//! The I-lock table is the in-memory analogue of the lock/catalog structure
//! of \[JHIN88, STON87\]; its maintenance is not charged I/O — only the
//! disk-resident `Cache` relation accesses are (see `cache` module).

use cor_relational::Oid;
use std::collections::{HashMap, HashSet};

/// Unit hashkey, the cache identity of a unit.
pub type HashKey = u64;

/// Table mapping each subobject to the cached units it would invalidate.
#[derive(Debug, Default)]
pub struct ILockTable {
    locks: HashMap<Oid, HashSet<HashKey>>,
}

impl ILockTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take I-locks for a freshly cached unit: every member subobject now
    /// holds a lock naming the unit.
    pub fn lock_unit(&mut self, hashkey: HashKey, members: &[Oid]) {
        for &oid in members {
            self.locks.entry(oid).or_default().insert(hashkey);
        }
    }

    /// Release the I-locks of a unit that left the cache (eviction or
    /// invalidation).
    pub fn unlock_unit(&mut self, hashkey: HashKey, members: &[Oid]) {
        for oid in members {
            if let Some(set) = self.locks.get_mut(oid) {
                set.remove(&hashkey);
                if set.is_empty() {
                    self.locks.remove(oid);
                }
            }
        }
    }

    /// The cached units an update of `oid` must invalidate.
    pub fn holders(&self, oid: Oid) -> Vec<HashKey> {
        self.locks
            .get(&oid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of subobjects currently holding at least one I-lock.
    pub fn locked_subobjects(&self) -> usize {
        self.locks.len()
    }

    /// Drop everything (cache cleared).
    pub fn clear(&mut self) {
        self.locks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(k: u64) -> Oid {
        Oid::new(10, k)
    }

    #[test]
    fn lock_and_query_holders() {
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1), oid(2)]);
        t.lock_unit(200, &[oid(2), oid(3)]);
        assert_eq!(t.holders(oid(1)), vec![100]);
        let mut h2 = t.holders(oid(2));
        h2.sort_unstable();
        assert_eq!(h2, vec![100, 200]);
        assert!(t.holders(oid(9)).is_empty());
        assert_eq!(t.locked_subobjects(), 3);
    }

    #[test]
    fn unlock_removes_only_that_unit() {
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1), oid(2)]);
        t.lock_unit(200, &[oid(2)]);
        t.unlock_unit(100, &[oid(1), oid(2)]);
        assert!(t.holders(oid(1)).is_empty());
        assert_eq!(t.holders(oid(2)), vec![200]);
        assert_eq!(t.locked_subobjects(), 1);
    }

    #[test]
    fn double_lock_is_idempotent() {
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1)]);
        t.lock_unit(100, &[oid(1)]);
        assert_eq!(t.holders(oid(1)), vec![100]);
        t.unlock_unit(100, &[oid(1)]);
        assert!(t.holders(oid(1)).is_empty());
    }

    #[test]
    fn clear_empties_table() {
        let mut t = ILockTable::new();
        t.lock_unit(1, &[oid(1), oid(2)]);
        t.clear();
        assert_eq!(t.locked_subobjects(), 0);
    }

    #[test]
    fn unlock_unknown_is_noop() {
        let mut t = ILockTable::new();
        t.unlock_unit(5, &[oid(1)]);
        assert_eq!(t.locked_subobjects(), 0);
    }
}
