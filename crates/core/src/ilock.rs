//! Invalidation locks (I-locks, Sec. 3.2).
//!
//! "Associated with each subobject is a lock called an invalidation lock
//! (I-lock, for short) for each unit that it belongs to. Consequently, when
//! a subobject is updated, we invalidate all the (cached) units whose
//! I-locks are held by the subobject in question."
//!
//! The I-lock table is the in-memory analogue of the lock/catalog structure
//! of \[JHIN88, STON87\]; its maintenance is not charged I/O — only the
//! disk-resident `Cache` relation accesses are (see `cache` module).

use cor_relational::Oid;
use std::collections::{HashMap, HashSet};

/// Unit hashkey, the cache identity of a unit.
pub type HashKey = u64;

/// Table mapping each subobject to the cached units it would invalidate.
#[derive(Debug, Default)]
pub struct ILockTable {
    locks: HashMap<Oid, HashSet<HashKey>>,
}

impl ILockTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take I-locks for a freshly cached unit: every member subobject now
    /// holds a lock naming the unit.
    pub fn lock_unit(&mut self, hashkey: HashKey, members: &[Oid]) {
        for &oid in members {
            self.locks.entry(oid).or_default().insert(hashkey);
        }
    }

    /// Release the I-locks of a unit that left the cache (eviction or
    /// invalidation).
    pub fn unlock_unit(&mut self, hashkey: HashKey, members: &[Oid]) {
        for oid in members {
            if let Some(set) = self.locks.get_mut(oid) {
                set.remove(&hashkey);
                if set.is_empty() {
                    self.locks.remove(oid);
                }
            }
        }
    }

    /// The cached units an update of `oid` must invalidate.
    pub fn holders(&self, oid: Oid) -> Vec<HashKey> {
        self.locks
            .get(&oid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of subobjects currently holding at least one I-lock.
    pub fn locked_subobjects(&self) -> usize {
        self.locks.len()
    }

    /// Drop everything (cache cleared).
    pub fn clear(&mut self) {
        self.locks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(k: u64) -> Oid {
        Oid::new(10, k)
    }

    #[test]
    fn lock_and_query_holders() {
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1), oid(2)]);
        t.lock_unit(200, &[oid(2), oid(3)]);
        assert_eq!(t.holders(oid(1)), vec![100]);
        let mut h2 = t.holders(oid(2));
        h2.sort_unstable();
        assert_eq!(h2, vec![100, 200]);
        assert!(t.holders(oid(9)).is_empty());
        assert_eq!(t.locked_subobjects(), 3);
    }

    #[test]
    fn unlock_removes_only_that_unit() {
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1), oid(2)]);
        t.lock_unit(200, &[oid(2)]);
        t.unlock_unit(100, &[oid(1), oid(2)]);
        assert!(t.holders(oid(1)).is_empty());
        assert_eq!(t.holders(oid(2)), vec![200]);
        assert_eq!(t.locked_subobjects(), 1);
    }

    #[test]
    fn double_lock_is_idempotent() {
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1)]);
        t.lock_unit(100, &[oid(1)]);
        assert_eq!(t.holders(oid(1)), vec![100]);
        t.unlock_unit(100, &[oid(1)]);
        assert!(t.holders(oid(1)).is_empty());
    }

    #[test]
    fn clear_empties_table() {
        let mut t = ILockTable::new();
        t.lock_unit(1, &[oid(1), oid(2)]);
        t.clear();
        assert_eq!(t.locked_subobjects(), 0);
    }

    #[test]
    fn unlock_unknown_is_noop() {
        let mut t = ILockTable::new();
        t.unlock_unit(5, &[oid(1)]);
        assert_eq!(t.locked_subobjects(), 0);
    }

    #[test]
    fn recache_after_invalidation_restores_locks() {
        // An update invalidates a cached unit (holders → unlock); a later
        // retrieve re-caches the same hashkey. The new incarnation's locks
        // must be indistinguishable from the first.
        let mut t = ILockTable::new();
        let members = [oid(1), oid(2), oid(3)];
        t.lock_unit(100, &members);
        for h in t.holders(oid(2)) {
            t.unlock_unit(h, &members);
        }
        assert_eq!(t.locked_subobjects(), 0, "invalidation released all locks");

        t.lock_unit(100, &members);
        assert_eq!(t.holders(oid(1)), vec![100]);
        assert_eq!(t.holders(oid(3)), vec![100]);
        assert_eq!(t.locked_subobjects(), 3);
    }

    #[test]
    fn shared_subobject_invalidates_every_holder_but_releases_each_once() {
        // oid(2) belongs to three cached units. Updating it must name all
        // three for invalidation; unlocking them one by one must not
        // disturb locks the others still hold on non-shared members.
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1), oid(2)]);
        t.lock_unit(200, &[oid(2), oid(3)]);
        t.lock_unit(300, &[oid(2)]);

        let mut holders = t.holders(oid(2));
        holders.sort_unstable();
        assert_eq!(holders, vec![100, 200, 300]);

        t.unlock_unit(300, &[oid(2)]);
        let mut holders = t.holders(oid(2));
        holders.sort_unstable();
        assert_eq!(holders, vec![100, 200], "other holders keep their locks");
        assert_eq!(t.holders(oid(1)), vec![100]);
        assert_eq!(t.holders(oid(3)), vec![200]);

        t.unlock_unit(100, &[oid(1), oid(2)]);
        t.unlock_unit(200, &[oid(2), oid(3)]);
        assert_eq!(t.locked_subobjects(), 0);
    }

    #[test]
    fn eviction_releases_exactly_the_evicted_units_locks() {
        // A cache eviction releases the victim's locks with the member
        // list recorded at caching time — even when that list partially
        // overlaps a surviving unit's members.
        let mut t = ILockTable::new();
        t.lock_unit(100, &[oid(1), oid(2), oid(3)]);
        t.lock_unit(200, &[oid(3), oid(4)]);

        t.unlock_unit(100, &[oid(1), oid(2), oid(3)]); // evict unit 100
        assert!(t.holders(oid(1)).is_empty());
        assert!(t.holders(oid(2)).is_empty());
        assert_eq!(
            t.holders(oid(3)),
            vec![200],
            "shared member keeps 200's lock"
        );
        assert_eq!(t.holders(oid(4)), vec![200]);
        assert_eq!(t.locked_subobjects(), 2);

        // Double release (eviction raced with invalidation) is harmless.
        t.unlock_unit(100, &[oid(1), oid(2), oid(3)]);
        assert_eq!(t.holders(oid(3)), vec![200]);
    }
}
