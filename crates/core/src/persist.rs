//! Saved-state snapshots of the strategy backends.
//!
//! The engine catalog (in `cor-workload`) persists everything a process
//! restart loses: which files a database is made of (their structural
//! metadata — roots, bucket directories), the cardinality counters that
//! act as OID allocators, and the cache directories whose disk halves
//! live in hash relations. This module defines the serializable snapshot
//! types, their byte codec, and the `save_state` / `open_state`
//! constructors on [`CorDatabase`](crate::CorDatabase) and
//! [`ProcDatabase`](crate::procedural::ProcDatabase) (declared next to
//! their private fields).
//!
//! Two recovery caveats are inherent to the design and shared by every
//! consumer:
//!
//! * **Staleness.** A snapshot describes the database as of the last
//!   checkpoint or clean close. The durable workloads are the paper's
//!   in-place-update regime, where file roots do not drift between
//!   checkpoints; what does drift (cache contents, hash-file record
//!   counts) is reconciled at open.
//! * **One-way cache reconcile.** Hash files have no scan API, so a
//!   recovered cache directory is reconciled by *probing*: directory
//!   entries whose record is gone are dropped. Records inserted after the
//!   snapshot are invisible to the directory and simply leak bounded
//!   space until overwritten — they can never cause a wrong answer
//!   because every probe consults the directory first.

use crate::cache::EvictionPolicy;
use crate::procedural::ProcCaching;
use crate::CorError;
use cor_access::{BTreeMeta, HashMeta};
use cor_relational::{Oid, Schema, ValueType, OID_BYTES};

/// Byte-stream writer for catalog snapshots (little-endian, length-prefixed).
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Append an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Byte-stream reader matching [`Enc`]. Decode errors surface as
/// [`CorError::Durability`]; the engine catalog is CRC-framed, so they
/// indicate a codec bug rather than disk corruption.
pub struct Dec<'a>(pub &'a [u8]);

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CorError> {
        if self.0.len() < n {
            return Err(CorError::Durability("truncated catalog snapshot".into()));
        }
        let (h, t) = self.0.split_at(n);
        self.0 = t;
        Ok(h)
    }
    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CorError> {
        Ok(self.take(1)?[0])
    }
    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CorError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CorError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, CorError> {
        Ok(self.u64()? as i64)
    }
    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CorError> {
        let n = self.u32()? as usize;
        self.take(n)
    }
    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CorError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| CorError::Durability("catalog snapshot holds invalid UTF-8".into()))
    }
    /// True when the stream is exhausted.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

fn enc_btree(e: &mut Enc, m: &BTreeMeta) {
    e.u32(m.key_len as u32);
    e.u32(m.root);
    e.u32(m.first_leaf);
    e.u64(m.len);
    e.u32(m.height);
    e.u32(m.leaf_pages);
}

fn dec_btree(d: &mut Dec) -> Result<BTreeMeta, CorError> {
    Ok(BTreeMeta {
        key_len: d.u32()? as u16,
        root: d.u32()?,
        first_leaf: d.u32()?,
        len: d.u64()?,
        height: d.u32()?,
        leaf_pages: d.u32()?,
    })
}

fn enc_hash(e: &mut Enc, m: &HashMeta) {
    e.u32(m.first_bucket);
    e.u32(m.num_buckets);
    e.u64(m.len);
}

fn dec_hash(d: &mut Dec) -> Result<HashMeta, CorError> {
    Ok(HashMeta {
        first_bucket: d.u32()?,
        num_buckets: d.u32()?,
        len: d.u64()?,
    })
}

/// Serialize a relation schema as `(name, type-tag)` columns.
pub fn enc_schema(e: &mut Enc, s: &Schema) {
    e.u32(s.arity() as u32);
    for c in s.columns() {
        e.str(&c.name);
        e.u8(match c.ty {
            ValueType::Int => 0,
            ValueType::Str => 1,
            ValueType::Oid => 2,
            ValueType::OidList => 3,
            ValueType::Bytes => 4,
        });
    }
}

/// Decode a schema written by [`enc_schema`].
pub fn dec_schema(d: &mut Dec) -> Result<Schema, CorError> {
    let n = d.u32()? as usize;
    let mut cols: Vec<(String, ValueType)> = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let ty = match d.u8()? {
            0 => ValueType::Int,
            1 => ValueType::Str,
            2 => ValueType::Oid,
            3 => ValueType::OidList,
            4 => ValueType::Bytes,
            _ => return Err(CorError::Durability("unknown column type tag".into())),
        };
        cols.push((name, ty));
    }
    let refs: Vec<(&str, ValueType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Ok(Schema::new(&refs))
}

/// Snapshot of a [`UnitCache`](crate::UnitCache): the hash relation's
/// metadata plus the in-memory directory in LRU order (oldest first).
#[derive(Debug, Clone)]
pub struct SavedUnitCache {
    /// The disk-resident `Cache` relation.
    pub file: HashMeta,
    /// `SizeCache` bound, in units.
    pub capacity: usize,
    /// Replacement policy.
    pub policy: EvictionPolicy,
    /// `(hashkey, member OIDs)` per cached unit, oldest first.
    pub entries: Vec<(u64, Vec<Oid>)>,
}

impl SavedUnitCache {
    /// Serialize into `e`.
    pub fn encode(&self, e: &mut Enc) {
        enc_hash(e, &self.file);
        e.u64(self.capacity as u64);
        e.u8(match self.policy {
            EvictionPolicy::Lru => 0,
            EvictionPolicy::Random => 1,
        });
        e.u32(self.entries.len() as u32);
        for (hk, members) in &self.entries {
            e.u64(*hk);
            e.u32(members.len() as u32);
            for m in members {
                e.0.extend_from_slice(&m.to_key_bytes());
            }
        }
    }

    /// Decode from `d`.
    pub fn decode(d: &mut Dec) -> Result<Self, CorError> {
        let file = dec_hash(d)?;
        let capacity = d.u64()? as usize;
        let policy = match d.u8()? {
            0 => EvictionPolicy::Lru,
            1 => EvictionPolicy::Random,
            _ => return Err(CorError::Durability("unknown eviction policy tag".into())),
        };
        let n = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let hk = d.u64()?;
            let m = d.u32()? as usize;
            let mut members = Vec::with_capacity(m);
            for _ in 0..m {
                let b = d.take(OID_BYTES)?;
                members.push(
                    Oid::from_key_bytes(b)
                        .ok_or_else(|| CorError::Durability("bad OID in snapshot".into()))?,
                );
            }
            entries.push((hk, members));
        }
        Ok(SavedUnitCache {
            file,
            capacity,
            policy,
            entries,
        })
    }
}

/// Snapshot of a [`ProcCache`](crate::procedural::ProcCache): hash
/// relation metadata plus the directory as `(QUEL text, kind)` in LRU
/// order — hashkeys are recomputed from the reparsed queries.
#[derive(Debug, Clone)]
pub struct SavedProcCache {
    /// The disk-resident cache relation.
    pub file: HashMeta,
    /// Capacity bound, in cached results.
    pub capacity: usize,
    /// `(stored-query QUEL, kind tag: 0 = OIDs, 1 = values)`, oldest first.
    pub entries: Vec<(String, u8)>,
}

impl SavedProcCache {
    /// Serialize into `e`.
    pub fn encode(&self, e: &mut Enc) {
        enc_hash(e, &self.file);
        e.u64(self.capacity as u64);
        e.u32(self.entries.len() as u32);
        for (quel, kind) in &self.entries {
            e.str(quel);
            e.u8(*kind);
        }
    }

    /// Decode from `d`.
    pub fn decode(d: &mut Dec) -> Result<Self, CorError> {
        let file = dec_hash(d)?;
        let capacity = d.u64()? as usize;
        let n = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let quel = d.str()?;
            let kind = d.u8()?;
            entries.push((quel, kind));
        }
        Ok(SavedProcCache {
            file,
            capacity,
            entries,
        })
    }
}

/// Snapshot of the physical representation of a
/// [`CorDatabase`](crate::CorDatabase).
#[derive(Debug, Clone)]
pub enum SavedStorage {
    /// ParentRel + ChildRel B-trees.
    Standard {
        /// ParentRel.
        parent: BTreeMeta,
        /// ChildRel\[i\].
        children: Vec<BTreeMeta>,
    },
    /// ClusterRel + OID ISAM index.
    Clustered {
        /// The combined relation.
        cluster: BTreeMeta,
        /// The OID index.
        oid_index: BTreeMeta,
    },
}

/// Snapshot of the cache attachment of a standard-representation database.
#[derive(Debug, Clone)]
pub enum SavedCacheState {
    /// Outside placement: full [`SavedUnitCache`] state.
    Outside(SavedUnitCache),
    /// Inside placement: only the capacity bound — holders and the
    /// invalidation registry are rebuilt by scanning ParentRel, whose
    /// `cached` column is the durable source of truth.
    Inside {
        /// `SizeCache` bound.
        capacity: usize,
    },
}

/// Complete snapshot of a [`CorDatabase`](crate::CorDatabase).
#[derive(Debug, Clone)]
pub struct SavedOidDb {
    /// File roots per representation.
    pub storage: SavedStorage,
    /// ParentRel schema.
    pub parent_schema: Schema,
    /// ChildRel schema.
    pub child_schema: Schema,
    /// ParentRel cardinality (the parent OID allocator's high-water mark).
    pub parent_count: u64,
    /// Cardinality per ChildRel.
    pub child_counts: Vec<u64>,
    /// Cache attachment, if any.
    pub cache: Option<SavedCacheState>,
}

impl SavedOidDb {
    /// Serialize into `e`.
    pub fn encode(&self, e: &mut Enc) {
        match &self.storage {
            SavedStorage::Standard { parent, children } => {
                e.u8(0);
                enc_btree(e, parent);
                e.u32(children.len() as u32);
                for c in children {
                    enc_btree(e, c);
                }
            }
            SavedStorage::Clustered { cluster, oid_index } => {
                e.u8(1);
                enc_btree(e, cluster);
                enc_btree(e, oid_index);
            }
        }
        enc_schema(e, &self.parent_schema);
        enc_schema(e, &self.child_schema);
        e.u64(self.parent_count);
        e.u32(self.child_counts.len() as u32);
        for &c in &self.child_counts {
            e.u64(c);
        }
        match &self.cache {
            None => e.u8(0),
            Some(SavedCacheState::Outside(c)) => {
                e.u8(1);
                c.encode(e);
            }
            Some(SavedCacheState::Inside { capacity }) => {
                e.u8(2);
                e.u64(*capacity as u64);
            }
        }
    }

    /// Decode from `d`.
    pub fn decode(d: &mut Dec) -> Result<Self, CorError> {
        let storage = match d.u8()? {
            0 => {
                let parent = dec_btree(d)?;
                let n = d.u32()? as usize;
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(dec_btree(d)?);
                }
                SavedStorage::Standard { parent, children }
            }
            1 => SavedStorage::Clustered {
                cluster: dec_btree(d)?,
                oid_index: dec_btree(d)?,
            },
            _ => return Err(CorError::Durability("unknown storage tag".into())),
        };
        let parent_schema = dec_schema(d)?;
        let child_schema = dec_schema(d)?;
        let parent_count = d.u64()?;
        let n = d.u32()? as usize;
        let mut child_counts = Vec::with_capacity(n);
        for _ in 0..n {
            child_counts.push(d.u64()?);
        }
        let cache = match d.u8()? {
            0 => None,
            1 => Some(SavedCacheState::Outside(SavedUnitCache::decode(d)?)),
            2 => Some(SavedCacheState::Inside {
                capacity: d.u64()? as usize,
            }),
            _ => return Err(CorError::Durability("unknown cache tag".into())),
        };
        Ok(SavedOidDb {
            storage,
            parent_schema,
            child_schema,
            parent_count,
            child_counts,
            cache,
        })
    }
}

/// Complete snapshot of a
/// [`ProcDatabase`](crate::procedural::ProcDatabase). The `by_query`
/// index and the inside-holder set are *not* stored: both are rebuilt
/// from a ParentRel scan at open (the stored QUEL texts and `cached`
/// columns are the durable truth).
#[derive(Debug, Clone)]
pub struct SavedProcDb {
    /// ParentRel.
    pub parent: BTreeMeta,
    /// ChildRel\[i\].
    pub children: Vec<BTreeMeta>,
    /// ParentRel schema.
    pub parent_schema: Schema,
    /// ParentRel cardinality.
    pub parent_count: u64,
    /// Caching mode.
    pub caching: ProcCaching,
    /// Outside-cache snapshot when the mode has one.
    pub outside: Option<SavedProcCache>,
}

impl SavedProcDb {
    /// Serialize into `e`.
    pub fn encode(&self, e: &mut Enc) {
        enc_btree(e, &self.parent);
        e.u32(self.children.len() as u32);
        for c in &self.children {
            enc_btree(e, c);
        }
        enc_schema(e, &self.parent_schema);
        e.u64(self.parent_count);
        match self.caching {
            ProcCaching::None => e.u8(0),
            ProcCaching::OutsideValues(cap) => {
                e.u8(1);
                e.u64(cap as u64);
            }
            ProcCaching::OutsideOids(cap) => {
                e.u8(2);
                e.u64(cap as u64);
            }
            ProcCaching::InsideValues(cap) => {
                e.u8(3);
                e.u64(cap as u64);
            }
        }
        match &self.outside {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                c.encode(e);
            }
        }
    }

    /// Decode from `d`.
    pub fn decode(d: &mut Dec) -> Result<Self, CorError> {
        let parent = dec_btree(d)?;
        let n = d.u32()? as usize;
        let mut children = Vec::with_capacity(n);
        for _ in 0..n {
            children.push(dec_btree(d)?);
        }
        let parent_schema = dec_schema(d)?;
        let parent_count = d.u64()?;
        let caching = match d.u8()? {
            0 => ProcCaching::None,
            1 => ProcCaching::OutsideValues(d.u64()? as usize),
            2 => ProcCaching::OutsideOids(d.u64()? as usize),
            3 => ProcCaching::InsideValues(d.u64()? as usize),
            _ => return Err(CorError::Durability("unknown proc-caching tag".into())),
        };
        let outside = match d.u8()? {
            0 => None,
            1 => Some(SavedProcCache::decode(d)?),
            _ => return Err(CorError::Durability("unknown outside-cache tag".into())),
        };
        Ok(SavedProcDb {
            parent,
            children,
            parent_schema,
            parent_count,
            caching,
            outside,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btree(root: u32) -> BTreeMeta {
        BTreeMeta {
            key_len: 10,
            root,
            first_leaf: root + 1,
            len: 42,
            height: 2,
            leaf_pages: 7,
        }
    }

    #[test]
    fn oid_db_snapshot_roundtrip() {
        let saved = SavedOidDb {
            storage: SavedStorage::Standard {
                parent: btree(3),
                children: vec![btree(9), btree(20)],
            },
            parent_schema: crate::database::parent_schema(),
            child_schema: crate::database::child_schema(),
            parent_count: 150,
            child_counts: vec![600, 601],
            cache: Some(SavedCacheState::Outside(SavedUnitCache {
                file: HashMeta {
                    first_bucket: 30,
                    num_buckets: 16,
                    len: 2,
                },
                capacity: 20,
                policy: EvictionPolicy::Lru,
                entries: vec![
                    (77, vec![Oid::new(10, 1), Oid::new(10, 2)]),
                    (99, vec![Oid::new(10, 5)]),
                ],
            })),
        };
        let mut e = Enc::default();
        saved.encode(&mut e);
        let mut d = Dec(&e.0);
        let back = SavedOidDb::decode(&mut d).unwrap();
        assert!(d.is_empty());
        assert_eq!(back.parent_count, 150);
        assert_eq!(back.child_counts, vec![600, 601]);
        assert_eq!(back.parent_schema, crate::database::parent_schema());
        let SavedStorage::Standard { parent, children } = &back.storage else {
            panic!("standard storage expected");
        };
        assert_eq!(parent.root, 3);
        assert_eq!(children.len(), 2);
        let Some(SavedCacheState::Outside(c)) = &back.cache else {
            panic!("outside cache expected");
        };
        assert_eq!(c.entries.len(), 2);
        assert_eq!(c.entries[0].1, vec![Oid::new(10, 1), Oid::new(10, 2)]);
    }

    #[test]
    fn clustered_and_inside_variants_roundtrip() {
        let saved = SavedOidDb {
            storage: SavedStorage::Clustered {
                cluster: btree(2),
                oid_index: btree(50),
            },
            parent_schema: crate::database::parent_schema(),
            child_schema: crate::database::child_schema(),
            parent_count: 10,
            child_counts: vec![40],
            cache: Some(SavedCacheState::Inside { capacity: 8 }),
        };
        let mut e = Enc::default();
        saved.encode(&mut e);
        let back = SavedOidDb::decode(&mut Dec(&e.0)).unwrap();
        assert!(matches!(back.storage, SavedStorage::Clustered { .. }));
        assert!(matches!(
            back.cache,
            Some(SavedCacheState::Inside { capacity: 8 })
        ));
    }

    #[test]
    fn proc_db_snapshot_roundtrip() {
        let saved = SavedProcDb {
            parent: btree(4),
            children: vec![btree(12)],
            parent_schema: crate::procedural::proc_parent_schema(),
            parent_count: 99,
            caching: ProcCaching::OutsideValues(16),
            outside: Some(SavedProcCache {
                file: HashMeta {
                    first_bucket: 60,
                    num_buckets: 16,
                    len: 1,
                },
                capacity: 16,
                entries: vec![("retrieve (child.all) where 1 <= child.OID <= 5".into(), 1)],
            }),
        };
        let mut e = Enc::default();
        saved.encode(&mut e);
        let back = SavedProcDb::decode(&mut Dec(&e.0)).unwrap();
        assert_eq!(back.parent_count, 99);
        assert_eq!(back.caching, ProcCaching::OutsideValues(16));
        assert_eq!(back.outside.unwrap().entries.len(), 1);
    }

    #[test]
    fn truncated_snapshots_error_cleanly() {
        let saved = SavedProcDb {
            parent: btree(4),
            children: vec![],
            parent_schema: crate::procedural::proc_parent_schema(),
            parent_count: 1,
            caching: ProcCaching::None,
            outside: None,
        };
        let mut e = Enc::default();
        saved.encode(&mut e);
        for cut in [0, 5, e.0.len() - 1] {
            assert!(
                SavedProcDb::decode(&mut Dec(&e.0[..cut])).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }
}
