//! Clustering assignments (paper Sec. 3.3).
//!
//! The clustering assignment `C ⊆ OS` places every subobject with exactly
//! one of the objects that reference it. Three regimes fall out of the
//! sharing factors:
//!
//! 1. `ShareFactor = 1` — every subobject has one parent; `C = OS` and
//!    clustering is ideal.
//! 2. `OverlapFactor = 1, UseFactor > 1` — whole units are shared; the
//!    unit is clustered with one parent, "randomly chosen from UseFactor
//!    possibilities" (the paper's choice in the absence of access-pattern
//!    knowledge), and the other parents reach it with one random access.
//! 3. `OverlapFactor > 1` — units overlap, so a unit's subobjects end up
//!    scattered across several parents' clusters and extra random accesses
//!    are unavoidable.

use cor_relational::Oid;
use rand::seq::IndexedRandom;
use rand::Rng;
use std::collections::HashMap;

/// Map from subobject OID to the primary key of the parent it is
/// physically clustered with.
#[derive(Debug, Clone, Default)]
pub struct ClusterAssignment {
    parent_of: HashMap<Oid, u64>,
}

impl ClusterAssignment {
    /// Build from explicit `(subobject, parent key)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Oid, u64)>) -> Self {
        ClusterAssignment {
            parent_of: pairs.into_iter().collect(),
        }
    }

    /// Assign every subobject to a uniformly random referencing parent.
    ///
    /// `parents` supplies each object's key and unit (its `children`
    /// list); a subobject referenced by several parents lands with one of
    /// them chosen uniformly at random, matching Sec. 3.3.
    pub fn random<R: Rng>(parents: &[(u64, Vec<Oid>)], rng: &mut R) -> Self {
        let mut referencing: HashMap<Oid, Vec<u64>> = HashMap::new();
        for (key, children) in parents {
            for oid in children {
                referencing.entry(*oid).or_default().push(*key);
            }
        }
        let mut parent_of = HashMap::with_capacity(referencing.len());
        // Deterministic iteration order so a seeded RNG reproduces the
        // same assignment: sort subobjects.
        let mut oids: Vec<Oid> = referencing.keys().copied().collect();
        oids.sort_unstable();
        for oid in oids {
            let candidates = &referencing[&oid];
            let pick = *candidates.choose(rng).expect("candidate list is non-empty");
            parent_of.insert(oid, pick);
        }
        ClusterAssignment { parent_of }
    }

    /// The parent key a subobject is clustered with.
    pub fn parent_of(&self, oid: Oid) -> Option<u64> {
        self.parent_of.get(&oid).copied()
    }

    /// Number of assigned subobjects.
    pub fn len(&self) -> usize {
        self.parent_of.len()
    }

    /// True if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.parent_of.is_empty()
    }

    /// Fraction of an object's subobjects that are clustered with it —
    /// diagnostic used in tests and the clustering analysis. Returns
    /// `None` for an object with no subobjects.
    pub fn locality(&self, key: u64, children: &[Oid]) -> Option<f64> {
        if children.is_empty() {
            return None;
        }
        let here = children
            .iter()
            .filter(|o| self.parent_of(**o) == Some(key))
            .count();
        Some(here as f64 / children.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(k: u64) -> Oid {
        Oid::new(10, k)
    }

    #[test]
    fn share_factor_one_is_ideal() {
        // Each parent has its own disjoint unit: every subobject must be
        // clustered with its only parent.
        let parents = vec![(0u64, vec![c(0), c(1)]), (1, vec![c(2), c(3)])];
        let mut rng = StdRng::seed_from_u64(7);
        let a = ClusterAssignment::random(&parents, &mut rng);
        assert_eq!(a.len(), 4);
        assert_eq!(a.parent_of(c(0)), Some(0));
        assert_eq!(a.parent_of(c(3)), Some(1));
        assert_eq!(a.locality(0, &parents[0].1), Some(1.0));
        assert_eq!(a.locality(1, &parents[1].1), Some(1.0));
    }

    #[test]
    fn shared_unit_goes_to_exactly_one_parent() {
        // UseFactor = 3: the same unit under three parents.
        let unit = vec![c(0), c(1), c(2)];
        let parents: Vec<(u64, Vec<Oid>)> = (0..3).map(|k| (k, unit.clone())).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let a = ClusterAssignment::random(&parents, &mut rng);
        for oid in &unit {
            let p = a.parent_of(*oid).unwrap();
            assert!(p < 3);
        }
        // Exactly one parent has locality 1 for each subobject; every
        // subobject is stored exactly once.
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn random_choice_spreads_across_parents() {
        // Over many shared units, each of the UseFactor parents should
        // receive some subobjects.
        let unit: Vec<Oid> = (0..100).map(c).collect();
        let parents: Vec<(u64, Vec<Oid>)> = (0..4).map(|k| (k, unit.clone())).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let a = ClusterAssignment::random(&parents, &mut rng);
        let mut counts = [0usize; 4];
        for oid in &unit {
            counts[a.parent_of(*oid).unwrap() as usize] += 1;
        }
        assert!(counts.iter().all(|&n| n > 5), "uniform choice: {counts:?}");
    }

    #[test]
    fn seeded_assignment_is_reproducible() {
        let parents = vec![(0u64, vec![c(0), c(1)]), (1, vec![c(0), c(1)])];
        let a = ClusterAssignment::random(&parents, &mut StdRng::seed_from_u64(5));
        let b = ClusterAssignment::random(&parents, &mut StdRng::seed_from_u64(5));
        for k in 0..2 {
            assert_eq!(a.parent_of(c(k)), b.parent_of(c(k)));
        }
    }

    #[test]
    fn locality_of_childless_object() {
        let a = ClusterAssignment::default();
        assert_eq!(a.locality(0, &[]), None);
        assert!(a.is_empty());
    }
}
