//! Units of subobjects and the sharing algebra (Sec. 3.2–3.3).
//!
//! A **unit** is "a collection of subobjects which belong to one relation
//! and which are referenced by one object". Units are the granule of
//! caching: "It is best to cache the values of the subobjects of a unit
//! together in one place, since they will often be needed together."
//!
//! Sharing is described by two factors:
//!
//! * `UseFactor` — expected number of objects containing the same unit;
//! * `OverlapFactor` — expected number of units sharing a subobject;
//! * `ShareFactor = UseFactor × OverlapFactor` — expected number of
//!   objects sharing a subobject.

use cor_access::fnv1a64;
use cor_relational::Oid;

/// A unit: the ordered list of subobject OIDs referenced together by an
/// object. All OIDs belong to one relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Unit {
    oids: Vec<Oid>,
}

impl Unit {
    /// Build a unit from subobject OIDs (must all share one relation).
    ///
    /// # Panics
    /// Panics if the OIDs span multiple relations — units are
    /// single-relation by definition.
    pub fn new(oids: Vec<Oid>) -> Self {
        if let Some(first) = oids.first() {
            assert!(
                oids.iter().all(|o| o.rel == first.rel),
                "a unit's subobjects must belong to one relation"
            );
        }
        Unit { oids }
    }

    /// The subobject OIDs, in reference order.
    pub fn oids(&self) -> &[Oid] {
        &self.oids
    }

    /// Number of subobjects (the paper's `SizeUnit` is its expectation).
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// True for the empty unit.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }

    /// The relation the unit's subobjects live in, if non-empty.
    pub fn relation(&self) -> Option<u16> {
        self.oids.first().map(|o| o.rel)
    }

    /// The cache hashkey: "a function of the concatenation of the OID's in
    /// that unit" (Sec. 4). Reference order matters — the same set of OIDs
    /// in a different order is a different unit identity, exactly as a
    /// concatenation-based hash behaves.
    pub fn hashkey(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.oids.len() * cor_relational::OID_BYTES);
        for o in &self.oids {
            bytes.extend_from_slice(&o.to_key_bytes());
        }
        fnv1a64(&bytes)
    }
}

/// Compute hashkey directly from a `children` OID slice without building a
/// [`Unit`] (hot path in the caching strategies).
pub fn hashkey_of(oids: &[Oid]) -> u64 {
    let mut bytes = Vec::with_capacity(oids.len() * cor_relational::OID_BYTES);
    for o in oids {
        bytes.extend_from_slice(&o.to_key_bytes());
    }
    fnv1a64(&bytes)
}

/// The sharing parameters of Sec. 3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingFactors {
    /// Expected number of objects containing the same unit.
    pub use_factor: f64,
    /// Expected number of units sharing a subobject.
    pub overlap_factor: f64,
}

impl SharingFactors {
    /// `ShareFactor = UseFactor × OverlapFactor`.
    pub fn share_factor(&self) -> f64 {
        self.use_factor * self.overlap_factor
    }
}

/// Measure the observed sharing factors of an object → unit assignment.
///
/// * `assignments[i]` is the unit index used by object `i`;
/// * `units[u]` is the subobject OID list of unit `u`.
///
/// Returns observed (UseFactor, OverlapFactor) as averages over used units
/// and referenced subobjects respectively. Used by generator tests to
/// check that synthetic databases hit the requested factors.
pub fn measure_sharing(assignments: &[usize], units: &[Unit]) -> SharingFactors {
    use std::collections::HashMap;
    let mut unit_uses: HashMap<usize, u64> = HashMap::new();
    for &u in assignments {
        *unit_uses.entry(u).or_insert(0) += 1;
    }
    let used_units: Vec<usize> = unit_uses.keys().copied().collect();
    let use_factor = if used_units.is_empty() {
        0.0
    } else {
        unit_uses.values().sum::<u64>() as f64 / used_units.len() as f64
    };

    let mut sub_units: HashMap<Oid, u64> = HashMap::new();
    for &u in &used_units {
        for &oid in units[u].oids() {
            *sub_units.entry(oid).or_insert(0) += 1;
        }
    }
    let overlap_factor = if sub_units.is_empty() {
        0.0
    } else {
        sub_units.values().sum::<u64>() as f64 / sub_units.len() as f64
    };

    SharingFactors {
        use_factor,
        overlap_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(k: u64) -> Oid {
        Oid::new(10, k)
    }

    #[test]
    fn unit_basics() {
        let u = Unit::new(vec![oid(3), oid(1), oid(2)]);
        assert_eq!(u.len(), 3);
        assert_eq!(u.relation(), Some(10));
        assert!(!u.is_empty());
        assert!(Unit::new(vec![]).is_empty());
        assert_eq!(Unit::new(vec![]).relation(), None);
    }

    #[test]
    #[should_panic(expected = "one relation")]
    fn mixed_relation_unit_panics() {
        Unit::new(vec![Oid::new(10, 1), Oid::new(11, 1)]);
    }

    #[test]
    fn hashkey_depends_on_order_and_content() {
        let a = Unit::new(vec![oid(1), oid(2)]);
        let b = Unit::new(vec![oid(2), oid(1)]);
        let c = Unit::new(vec![oid(1), oid(2)]);
        assert_eq!(a.hashkey(), c.hashkey());
        assert_ne!(
            a.hashkey(),
            b.hashkey(),
            "concatenation hash is order-sensitive"
        );
        assert_eq!(a.hashkey(), hashkey_of(&[oid(1), oid(2)]));
    }

    #[test]
    fn share_factor_is_product() {
        let f = SharingFactors {
            use_factor: 5.0,
            overlap_factor: 2.0,
        };
        assert_eq!(f.share_factor(), 10.0);
    }

    #[test]
    fn measure_ideal_clustering_case() {
        // ShareFactor = 1: each object its own unit, units disjoint.
        let units = vec![
            Unit::new(vec![oid(0), oid(1)]),
            Unit::new(vec![oid(2), oid(3)]),
        ];
        let f = measure_sharing(&[0, 1], &units);
        assert_eq!(f.use_factor, 1.0);
        assert_eq!(f.overlap_factor, 1.0);
    }

    #[test]
    fn measure_use_factor_case() {
        // Two objects share unit 0 entirely: UseFactor 2, Overlap 1.
        let units = vec![Unit::new(vec![oid(0), oid(1)])];
        let f = measure_sharing(&[0, 0], &units);
        assert_eq!(f.use_factor, 2.0);
        assert_eq!(f.overlap_factor, 1.0);
        assert_eq!(f.share_factor(), 2.0);
    }

    #[test]
    fn measure_overlap_factor_case() {
        // Paper Sec 3.3 case [3]: overlapping units, UseFactor 1.
        let units = vec![
            Unit::new(vec![oid(0), oid(1), oid(2)]),
            Unit::new(vec![oid(1), oid(2), oid(3)]),
        ];
        let f = measure_sharing(&[0, 1], &units);
        assert_eq!(f.use_factor, 1.0);
        // oids 1,2 in two units; 0,3 in one: mean 6/4 = 1.5.
        assert_eq!(f.overlap_factor, 1.5);
    }

    #[test]
    fn measure_empty() {
        let f = measure_sharing(&[], &[]);
        assert_eq!(f.use_factor, 0.0);
        assert_eq!(f.overlap_factor, 0.0);
    }
}
