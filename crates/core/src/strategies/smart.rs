//! SMART (Sec. 5.3).
//!
//! "When the query has a low NumTop, use DFSCACHE, and maintain the cache.
//! However, if NumTop > N (where N = 300 in our experiments), use a
//! breadth-first strategy, and do not try to maintain cache. In other
//! words, scan the NumTop tuples and collect into temp the OID's whose
//! units are not cached; and then implement the merge-join. The status of
//! the cache remains invariant during the execution of the breadth-first
//! strategy."
//!
//! The breadth-first arm's temporary is "no larger than the temporary used
//! in BFS (since some units may be cached, and hence their OID's need not
//! be included)". One refinement over the paper's sketch: exploiting the
//! cache only pays when the shrunken temporary changes the join economics
//! (a merge join scans every ChildRel leaf regardless, so pulling cached
//! units one page at a time on top of it is wasted I/O). The arm therefore
//! estimates both plans — read cached units + join the rest, vs. join
//! everything — and takes the cheaper, which is what "make the best use of
//! caching" demands. The cache presence check is a free in-memory
//! directory lookup either way, so the decision itself costs nothing.

use super::{bfs::estimate_join_cost, bfs::join_fetch, dfs_cache, ExecOptions};
use crate::database::CorDatabase;
use crate::query::{extract_ret, RetrieveQuery, StrategyOutput};
use crate::unit::hashkey_of;
use crate::CorError;
use cor_relational::{Oid, RelId};
use std::collections::{BTreeMap, HashSet};

/// Run a retrieve under the SMART hybrid.
pub fn smart(
    db: &CorDatabase,
    query: &RetrieveQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    if query.num_top() <= opts.smart_threshold {
        return dfs_cache(db, query, opts);
    }

    let stats = db.pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = db.parents_in_range(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    // Classify each qualifying object's unit through the in-memory cache
    // directory (no I/O).
    let mut cached_refs: Vec<(u64, &Vec<Oid>)> = Vec::new(); // (hashkey, children)
    let mut distinct_cached: HashSet<u64> = HashSet::new();
    let mut uncached: BTreeMap<RelId, Vec<Oid>> = BTreeMap::new();
    let mut all: BTreeMap<RelId, Vec<Oid>> = BTreeMap::new();
    {
        let cache = db.cache_mut()?;
        for (_key, children) in &parents {
            if children.is_empty() {
                continue;
            }
            for &oid in children {
                all.entry(oid.rel).or_default().push(oid);
            }
            let hashkey = hashkey_of(children);
            if cache.is_cached(hashkey) {
                cached_refs.push((hashkey, children));
                distinct_cached.insert(hashkey);
            } else {
                for &oid in children {
                    uncached.entry(oid.rel).or_default().push(oid);
                }
            }
        }
    }

    // Plan choice: reading a cached unit costs about one page; exploiting
    // the cache wins only when that beats letting the join fetch those
    // subobjects too.
    let mut cost_with_cache = distinct_cached.len() as u64;
    for (rel, oids) in &uncached {
        cost_with_cache += estimate_join_cost(db, *rel, oids.len(), opts)?;
    }
    let mut cost_without = 0u64;
    for (rel, oids) in &all {
        cost_without += estimate_join_cost(db, *rel, oids.len(), opts)?;
    }
    let exploit_cache = !cached_refs.is_empty() && cost_with_cache < cost_without;

    let mut values = Vec::new();
    if exploit_cache {
        // Read cached unit values (real I/O against the Cache relation;
        // repeated references to a shared unit are absorbed by the buffer).
        let mut cache = db.cache_mut()?;
        for (hashkey, _children) in &cached_refs {
            let records = cache
                .probe(*hashkey)?
                .expect("directory said cached; cache is invariant during the query");
            for rec in &records {
                values.push(extract_ret(rec, query.attr));
            }
        }
        drop(cache);
        for (rel, oids) in &uncached {
            join_fetch(db, *rel, oids, query.attr, false, opts, &mut values)?;
        }
    } else {
        // Cache does not pay here: plain breadth-first over everything.
        // The cache stays invariant either way.
        for (rel, oids) in &all {
            join_fetch(db, *rel, oids, query.attr, false, opts, &mut values)?;
        }
    }
    let s2 = stats.snapshot();

    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}
