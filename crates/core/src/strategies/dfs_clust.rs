//! DFSCLUST (Sec. 3.3).
//!
//! The database stores "all objects and their subobjects in one relation
//! called cluster", B-tree-structured on `cluster#`, with a static ISAM
//! index on OID for random access.
//!
//! The retrieve scans the cluster range covering the qualifying objects.
//! That single scan returns the objects **and** every subobject clustered
//! with them — which is why the paper's `ParCost` *rises* as clustering
//! improves (more subobjects interleaved between consecutive objects) while
//! `ChildCost` falls (Fig. 5a). Subobjects clustered elsewhere cost one
//! ISAM probe plus a ClusterRel access each; with `OverlapFactor > 1` a
//! unit's subobjects scatter across many foreign clusters and these random
//! accesses dominate (Fig. 7).

use super::ExecOptions;
use crate::database::{cluster_key, decode_cluster_key, CorDatabase};
use crate::query::{extract_ret, RetrieveQuery, StrategyOutput};
use crate::CorError;
use cor_access::decode;
use cor_obs::{Phase, PhaseGuard};
use cor_relational::Oid;
use std::collections::HashMap;

/// Run a retrieve depth-first over the clustered representation.
pub fn dfs_clust(
    db: &CorDatabase,
    query: &RetrieveQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    let (cluster, _oid_index) = db.cluster()?;
    let stats = db.pool().stats().clone();
    let s0 = stats.snapshot();

    // One range scan picks up the qualifying objects and their physically
    // clustered subobjects together.
    let lo_k = cluster_key(query.lo, false, Oid::new(0, 0));
    let hi_k = cluster_key(query.hi, true, Oid::new(u16::MAX, u64::MAX));
    let mut parents: Vec<(u64, Vec<Oid>)> = Vec::new();
    let mut scanned_children: HashMap<Oid, Vec<u8>> = HashMap::new();
    // The whole range scan — objects and co-clustered subobjects alike —
    // is one physical cluster traversal; with readahead enabled the
    // bulk-loaded leaf chain is prefetched in coalesced batches ahead of
    // the scan cursor.
    let _scan_phase = PhaseGuard::enter(Phase::ClusterScan);
    for (k, rec) in cluster
        .range(&lo_k, &hi_k)?
        .with_readahead(opts.io.readahead)
    {
        let (_, is_child, oid) = decode_cluster_key(&k).expect("well-formed cluster key");
        if is_child {
            scanned_children.insert(oid, rec);
        } else {
            let t = decode(db.parent_schema(), &rec)?;
            let children = t.get(5).as_oid_list().expect("children column").to_vec();
            cor_obs::heat::touch(cor_obs::HeatClass::ClusterRoot, oid.key);
            parents.push((oid.key, children));
        }
    }
    let s1 = stats.snapshot();

    // Foreign-cluster probes are the random-access tail that dominates
    // once sharing scatters a unit's subobjects (Fig. 7). With batching
    // enabled, resolve every still-missing subobject to its cluster leaf
    // through the OID index, then walk the sorted, deduplicated leaves in
    // batch-sized windows: prefetch a window, harvest it into
    // `scanned_children`, move on. Harvesting right behind the prefetch
    // cursor keeps the footprint to one window, so a pool barely larger
    // than the batch still serves every demand fetch from the prefetched
    // frames. The values loop below is untouched — it now finds the
    // records in the map — so results are identical at every batch size.
    if opts.io.batch > 1 {
        let mut foreign: Vec<cor_pagestore::PageId> = Vec::new();
        let mut pending: std::collections::HashSet<Oid> = std::collections::HashSet::new();
        for (_key, children) in &parents {
            for &oid in children {
                if !scanned_children.contains_key(&oid) && pending.insert(oid) {
                    if let Some(leaf) = db.child_leaf_page(oid)? {
                        foreign.push(leaf);
                    }
                }
            }
        }
        foreign.sort_unstable();
        foreign.dedup();
        // On a pool with an async submission engine the windows are
        // double-buffered: window k+1's submission goes out before
        // window k is harvested, so its I/O overlaps the harvest instead
        // of serializing behind it. The synchronous pool keeps the
        // historical prefetch-then-harvest order exactly.
        let double_buffer = db.pool().queue_depth() > 1;
        let mut chunks = foreign.chunks(opts.io.batch).peekable();
        if double_buffer {
            if let Some(first) = chunks.peek() {
                let _ = db.pool().prefetch(first);
            }
        }
        while let Some(window) = chunks.next() {
            // Purely a hint: a failed prefetch degrades to the demand
            // fetches issued by `leaf_entries` just below.
            if double_buffer {
                if let Some(next) = chunks.peek() {
                    let _ = db.pool().prefetch(next);
                }
            } else {
                let _ = db.pool().prefetch(window);
            }
            for &leaf in window {
                for (k, rec) in cluster.leaf_entries(leaf)? {
                    if let Some((_, true, child_oid)) = decode_cluster_key(&k) {
                        scanned_children.entry(child_oid).or_insert(rec);
                    }
                }
            }
        }
    }

    let mut values = Vec::new();
    for (_key, children) in &parents {
        for &oid in children {
            if let Some(rec) = scanned_children.get(&oid) {
                values.push(extract_ret(rec, query.attr));
                continue;
            }
            // Clustered with a parent outside the scanned range: random
            // access through the OID index, whose TID-style payload points
            // straight at the leaf page. The fetched page holds the rest
            // of the foreign unit, which we harvest at once — the
            // Sec. 3.3 case-[2] behaviour ("their subobjects are still
            // physically clustered, albeit elsewhere, and can be fetched
            // in one random access").
            let harvested = db.fetch_child_page_records(oid)?;
            if harvested.is_empty() {
                return Err(CorError::DanglingOid(oid));
            }
            for (coid, rec) in harvested {
                scanned_children.insert(coid, rec);
            }
            let rec = scanned_children
                .get(&oid)
                .ok_or(CorError::DanglingOid(oid))?;
            values.push(extract_ret(rec, query.attr));
        }
    }
    let s2 = stats.snapshot();

    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}
