//! The query-processing strategies of Fig. 2 and Sec. 5.3.
//!
//! Every strategy answers the same query —
//! `retrieve (ParentRel.children.attr) where lo <= OID <= hi` — and
//! returns the same multiset of attribute values (BFSNODUP excepted: it
//! deliberately removes duplicate subobject references). They differ in
//! *how many page transfers* they need, which is what the paper measures.
//!
//! * [`dfs`] — per-parent index probes (nested-loop flavour);
//! * [`bfs`] — temporary + join, with the optimizer's choice between merge
//!   join and iterative substitution;
//! * BFSNODUP — [`bfs`] with duplicate elimination on the temporary;
//! * [`dfs_cache`] — DFS through the unit-value cache, maintaining it;
//! * [`dfs_clust`] — DFS over the clustered representation;
//! * [`smart`] — DFSCACHE below a NumTop threshold, cache-aware BFS
//!   without cache maintenance above it.

mod bfs;
mod dfs;
mod dfs_cache;
mod dfs_clust;
mod smart;

pub use bfs::bfs;
pub(crate) use bfs::join_fetch as bfs_join_fetch;
pub use dfs::dfs;
pub use dfs_cache::dfs_cache;
pub use dfs_clust::dfs_clust;
pub use smart::smart;

use crate::database::CorDatabase;
use crate::matrix::Strategy;
use crate::query::{RetrieveQuery, StrategyOutput};
use crate::CorError;

/// How BFS-style plans join the temporary against ChildRel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinChoice {
    /// Cost-based choice (the paper's "optimal plan ... generated").
    #[default]
    Auto,
    /// Always merge join (the "competitive BFS" of Sec. 3.1).
    ForceMerge,
    /// Always iterative substitution.
    ForceIterative,
}

/// Batched / prefetching I/O knobs.
///
/// The defaults (batching and readahead both off) make every strategy
/// execute page-at-a-time exactly as before this option existed:
/// `IoStats`, figure outputs, and explain captures are byte-identical.
/// Turning the knobs on never changes logical results — only how many
/// physical submissions carry the same transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoOptions {
    /// Maximum keys per batched index probe (1 = probe singly, off).
    pub batch: usize,
    /// Leaf readahead window, in pages, for sequential scans (0 = off).
    pub readahead: usize,
    /// `cor-aio` submission queue depth (1 = synchronous, off). At
    /// depth > 1 the buffer pool keeps up to this many coalesced runs
    /// in flight at once: prefetch becomes genuinely speculative
    /// (submitted, parked, harvested on demand) and readahead windows
    /// open eagerly instead of ramping, overlapping strategy compute
    /// with in-flight reads.
    pub queue_depth: usize,
}

impl Default for IoOptions {
    fn default() -> Self {
        IoOptions {
            batch: 1,
            readahead: 0,
            queue_depth: 1,
        }
    }
}

impl IoOptions {
    /// Is any batched/prefetching behaviour enabled?
    pub fn enabled(&self) -> bool {
        self.batch > 1 || self.readahead > 0
    }

    /// Is asynchronous submission enabled?
    pub fn async_enabled(&self) -> bool {
        self.queue_depth > 1
    }
}

/// Execution knobs. Defaults match the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// SMART's NumTop threshold ("N = 300 in our experiments").
    pub smart_threshold: u64,
    /// Join selection for BFS-style plans.
    pub join: JoinChoice,
    /// Work memory for sorting temporaries, in bytes.
    pub sort_work_mem: usize,
    /// Batched / prefetching I/O (defaults reproduce page-at-a-time runs).
    pub io: IoOptions,
    /// Buffer-pool replacement policy. Like `io.queue_depth`, this
    /// configures the pool at construction time: engines apply it when
    /// they build their pool (and persist it in the engine catalog);
    /// changing it on a running engine does not re-policy an existing
    /// pool. The default (LRU) reproduces the paper's buffer behaviour
    /// byte for byte.
    pub pool_policy: cor_pagestore::ReplacementPolicy,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            smart_threshold: 300,
            join: JoinChoice::Auto,
            sort_work_mem: cor_access::DEFAULT_WORK_MEM,
            io: IoOptions::default(),
            pool_policy: cor_pagestore::ReplacementPolicy::Lru,
        }
    }
}

/// Run one retrieve query under `strategy`.
///
/// This is the low-level dispatch behind `cor::Engine::retrieve`; the
/// engine is the documented entry point for applications.
pub fn execute_retrieve(
    db: &CorDatabase,
    strategy: Strategy,
    query: &RetrieveQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    match strategy {
        Strategy::Dfs => dfs(db, query),
        Strategy::Bfs => bfs(db, query, false, opts),
        Strategy::BfsNoDup => bfs(db, query, true, opts),
        Strategy::DfsCache => dfs_cache(db, query, opts),
        Strategy::DfsClust => dfs_clust(db, query, opts),
        Strategy::Smart => smart(db, query, opts),
    }
}

/// Former name of [`execute_retrieve`].
#[deprecated(
    since = "0.2.0",
    note = "use `cor::Engine::retrieve` (or `strategies::execute_retrieve`) instead"
)]
pub fn run_retrieve(
    db: &CorDatabase,
    strategy: Strategy,
    query: &RetrieveQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    execute_retrieve(db, strategy, query, opts)
}

/// Shared helper: fetch one subobject record or fail loudly — the paper's
/// databases never contain dangling OIDs, so absence is a bug.
pub(crate) fn fetch_required(
    db: &CorDatabase,
    oid: cor_relational::Oid,
) -> Result<Vec<u8>, CorError> {
    db.fetch_child_record(oid)?
        .ok_or(CorError::DanglingOid(oid))
}

#[allow(unused_imports)]
pub(crate) use crate::query::extract_ret;

/// Convenience used by tests and benches: run a query under every strategy
/// the database's representation supports, returning `(strategy, output)`.
pub fn run_all_supported(
    db: &CorDatabase,
    query: &RetrieveQuery,
    opts: &ExecOptions,
) -> Vec<(Strategy, Result<StrategyOutput, CorError>)> {
    Strategy::ALL
        .iter()
        .filter(|s| {
            let clustered = matches!(db.storage(), crate::database::Storage::Clustered { .. });
            if s.needs_cluster() != clustered {
                return false;
            }
            if s.needs_cache() && !db.has_cache() {
                return false;
            }
            true
        })
        .map(|s| (*s, execute_retrieve(db, *s, query, opts)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{
        CacheConfig, CorDatabase, DatabaseSpec, ObjectSpec, SubobjectSpec, CHILD_REL_BASE,
    };
    use crate::query::{RetAttr, RetrieveQuery, UpdateQuery};
    use crate::ClusterAssignment;
    use cor_pagestore::BufferPool;
    use cor_relational::Oid;
    use std::sync::Arc;

    #[test]
    fn default_options_match_paper() {
        let o = ExecOptions::default();
        assert_eq!(o.smart_threshold, 300);
        assert_eq!(o.join, JoinChoice::Auto);
        assert_eq!(o.pool_policy, cor_pagestore::ReplacementPolicy::Lru);
    }

    fn c(k: u64) -> Oid {
        Oid::new(CHILD_REL_BASE, k)
    }

    /// 40 parents; parent i references unit {2i, 2i+1} of 80 children
    /// (no sharing — keeps expected counts exact).
    fn spec() -> DatabaseSpec {
        DatabaseSpec {
            parents: (0..40)
                .map(|key| ObjectSpec {
                    key,
                    rets: [0; 3],
                    dummy: "p".repeat(40),
                    children: vec![c(2 * key), c(2 * key + 1)],
                })
                .collect(),
            child_rels: vec![(0..80)
                .map(|k| SubobjectSpec {
                    oid: c(k),
                    rets: [k as i64, -(k as i64), 0],
                    dummy: "c".repeat(30),
                })
                .collect()],
        }
    }

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(16).build())
    }

    #[test]
    fn dfs_counts_and_cost_split() {
        let db = CorDatabase::build_standard(pool(), &spec(), None).unwrap();
        db.pool().flush_and_clear().unwrap();
        let q = RetrieveQuery {
            lo: 10,
            hi: 19,
            attr: RetAttr::Ret1,
        };
        let out = dfs(&db, &q).unwrap();
        assert_eq!(out.values.len(), 20, "10 parents x 2 children");
        assert_eq!(out.total_io(), out.par_io.total() + out.child_io.total());
        let expect: Vec<i64> = (20..40).collect();
        let mut got = out.values.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bfs_forced_plans_differ_in_io_not_answers() {
        let db = CorDatabase::build_standard(pool(), &spec(), None).unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 39,
            attr: RetAttr::Ret2,
        };
        let mut outs = Vec::new();
        for join in [JoinChoice::ForceMerge, JoinChoice::ForceIterative] {
            db.pool().flush_and_clear().unwrap();
            let opts = ExecOptions {
                join,
                ..ExecOptions::default()
            };
            let out = bfs(&db, &q, false, &opts).unwrap();
            outs.push(out);
        }
        let mut a = outs[0].values.clone();
        let mut b = outs[1].values.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // A full-range query must favour the merge plan.
        assert!(
            outs[0].total_io() < outs[1].total_io(),
            "merge {} vs iterative {}",
            outs[0].total_io(),
            outs[1].total_io()
        );
    }

    #[test]
    fn dfs_cache_hits_reduce_io_and_update_invalidates() {
        let db = CorDatabase::build_standard(
            pool(),
            &spec(),
            Some(CacheConfig {
                capacity: 64,
                ..CacheConfig::default()
            }),
        )
        .unwrap();
        db.pool().flush_and_clear().unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        let cold = dfs_cache(&db, &q, &ExecOptions::default()).unwrap();
        let warm = dfs_cache(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(warm.values.len(), cold.values.len());
        assert!(
            warm.child_io.total() < cold.child_io.total(),
            "warm run must hit the cache"
        );
        let k = db.cache_mut().unwrap().counters();
        assert_eq!(k.insertions, 10, "one unit per parent");
        assert_eq!(k.hits, 10);

        // An update to child 5 (unit of parent 2) invalidates exactly one
        // cached unit.
        crate::query::apply_update(
            &db,
            &UpdateQuery {
                targets: vec![c(5)],
                new_ret1: 999,
            },
            true,
        )
        .unwrap();
        assert_eq!(db.cache_mut().unwrap().counters().invalidations, 1);
        let after = dfs_cache(&db, &q, &ExecOptions::default()).unwrap();
        let mut got = after.values.clone();
        got.sort_unstable();
        assert!(got.contains(&999), "refreshed value must be served");
    }

    #[test]
    fn dfs_clust_in_range_children_need_no_random_access() {
        // Cluster every child with its (only) parent: a range scan brings
        // every needed subobject along, so ChildCost is (near) zero.
        let s = spec();
        let parents: Vec<(u64, Vec<Oid>)> = s
            .parents
            .iter()
            .map(|o| (o.key, o.children.clone()))
            .collect();
        let assignment = ClusterAssignment::from_pairs(
            parents
                .iter()
                .flat_map(|(k, cs)| cs.iter().map(move |o| (*o, *k))),
        );
        let db = CorDatabase::build_clustered(pool(), &s, &assignment).unwrap();
        db.pool().flush_and_clear().unwrap();
        let q = RetrieveQuery {
            lo: 5,
            hi: 24,
            attr: RetAttr::Ret1,
        };
        let out = dfs_clust(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.values.len(), 40);
        assert_eq!(
            out.child_io.total(),
            0,
            "ideally clustered: the scan already fetched every subobject"
        );
        assert!(out.par_io.total() > 0);
    }

    #[test]
    fn smart_low_arm_maintains_cache_high_arm_does_not() {
        let db = CorDatabase::build_standard(
            pool(),
            &spec(),
            Some(CacheConfig {
                capacity: 64,
                ..CacheConfig::default()
            }),
        )
        .unwrap();
        let low = RetrieveQuery {
            lo: 0,
            hi: 4,
            attr: RetAttr::Ret1,
        };
        let opts = ExecOptions {
            smart_threshold: 10,
            ..ExecOptions::default()
        };
        smart(&db, &low, &opts).unwrap();
        let after_low = db.cache_mut().unwrap().counters().insertions;
        assert_eq!(after_low, 5, "low arm materializes and caches units");

        let high = RetrieveQuery {
            lo: 0,
            hi: 39,
            attr: RetAttr::Ret1,
        };
        let out = smart(&db, &high, &opts).unwrap();
        assert_eq!(out.values.len(), 80);
        let after_high = db.cache_mut().unwrap().counters().insertions;
        assert_eq!(
            after_high, after_low,
            "breadth-first arm leaves the cache invariant"
        );
    }

    #[test]
    fn inside_cache_matches_outside_and_invalidates() {
        use crate::matrix::CachePlacement;
        let mk = |placement| {
            CorDatabase::build_standard(
                pool(),
                &spec(),
                Some(CacheConfig {
                    capacity: 16,
                    placement,
                    ..CacheConfig::default()
                }),
            )
            .unwrap()
        };
        let inside = mk(CachePlacement::Inside);
        let outside = mk(CachePlacement::Outside);
        assert!(inside.has_inside_cache());
        assert!(!outside.has_inside_cache());

        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        for _ in 0..2 {
            let mut a = dfs_cache(&inside, &q, &ExecOptions::default())
                .unwrap()
                .values;
            let mut b = dfs_cache(&outside, &q, &ExecOptions::default())
                .unwrap()
                .values;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        let ci = inside.cache_counters().unwrap();
        assert_eq!(ci.insertions, 10);
        assert_eq!(ci.hits, 10, "second pass hits every inside copy");

        // An update must clear the referencing parent's inside copy and
        // the fresh value must be served.
        crate::query::apply_update(
            &inside,
            &UpdateQuery {
                targets: vec![c(7)],
                new_ret1: -777,
            },
            true,
        )
        .unwrap();
        assert_eq!(inside.cache_counters().unwrap().invalidations, 1);
        let mut v = dfs_cache(&inside, &q, &ExecOptions::default())
            .unwrap()
            .values;
        v.sort_unstable();
        assert!(v.contains(&-777));
    }

    #[test]
    fn inside_cache_respects_capacity() {
        use crate::matrix::CachePlacement;
        let db = CorDatabase::build_standard(
            pool(),
            &spec(),
            Some(CacheConfig {
                capacity: 3,
                placement: CachePlacement::Inside,
                ..CacheConfig::default()
            }),
        )
        .unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 39,
            attr: RetAttr::Ret1,
        };
        dfs_cache(&db, &q, &ExecOptions::default()).unwrap();
        let k = db.cache_counters().unwrap();
        assert_eq!(k.insertions, 40);
        assert_eq!(k.evictions, 37, "only 3 parents may hold copies");
        // Still correct afterwards.
        let mut v = dfs_cache(&db, &q, &ExecOptions::default()).unwrap().values;
        v.sort_unstable();
        assert_eq!(v.len(), 80);
    }

    #[test]
    fn smart_requires_outside_placement() {
        use crate::matrix::CachePlacement;
        let db = CorDatabase::build_standard(
            pool(),
            &spec(),
            Some(CacheConfig {
                capacity: 16,
                placement: CachePlacement::Inside,
                ..CacheConfig::default()
            }),
        )
        .unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 39,
            attr: RetAttr::Ret1,
        };
        let opts = ExecOptions {
            smart_threshold: 1,
            ..ExecOptions::default()
        };
        assert!(matches!(
            smart(&db, &q, &opts),
            Err(crate::CorError::NoCache)
        ));
    }

    #[test]
    fn run_all_supported_filters_by_representation() {
        let std_db = CorDatabase::build_standard(pool(), &spec(), None).unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 3,
            attr: RetAttr::Ret1,
        };
        let ran: Vec<Strategy> = run_all_supported(&std_db, &q, &ExecOptions::default())
            .into_iter()
            .map(|(s, r)| {
                r.expect("runs");
                s
            })
            .collect();
        assert!(ran.contains(&Strategy::Dfs) && ran.contains(&Strategy::Bfs));
        assert!(
            !ran.contains(&Strategy::DfsClust),
            "no cluster representation"
        );
        assert!(!ran.contains(&Strategy::DfsCache), "no cache attached");
    }

    #[test]
    fn batched_io_changes_no_results_and_off_changes_no_accounting() {
        let q = RetrieveQuery {
            lo: 0,
            hi: 39,
            attr: RetAttr::Ret1,
        };
        let batched_opts = ExecOptions {
            io: IoOptions {
                batch: 8,
                readahead: 4,
                queue_depth: 1,
            },
            ..ExecOptions::default()
        };
        assert!(batched_opts.io.enabled() && !ExecOptions::default().io.enabled());

        // Standard representation: every strategy that runs on it.
        let run = |opts: &ExecOptions| {
            let db = CorDatabase::build_standard(
                pool(),
                &spec(),
                Some(CacheConfig {
                    capacity: 64,
                    ..CacheConfig::default()
                }),
            )
            .unwrap();
            db.pool().flush_and_clear().unwrap();
            run_all_supported(&db, &q, opts)
                .into_iter()
                .map(|(s, r)| {
                    let mut v = r.expect("strategy runs").values;
                    v.sort_unstable();
                    (s, v)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&ExecOptions::default()), run(&batched_opts));

        // Forced-iterative BFS exercises the sorted-batch probe path
        // specifically; forced-merge exercises scan readahead.
        for join in [JoinChoice::ForceIterative, JoinChoice::ForceMerge] {
            let db = CorDatabase::build_standard(pool(), &spec(), None).unwrap();
            db.pool().flush_and_clear().unwrap();
            let plain = bfs(
                &db,
                &q,
                false,
                &ExecOptions {
                    join,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                db.pool().stats().batch_snapshot(),
                Default::default(),
                "knobs off: no batched submissions, no prefetches"
            );
            db.pool().flush_and_clear().unwrap();
            let opts = ExecOptions {
                join,
                ..batched_opts
            };
            let batched = bfs(&db, &q, false, &opts).unwrap();
            let (mut a, mut b) = (plain.values, batched.values);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }

        // Clustered representation: readahead over the ClusterRel scan.
        let s = spec();
        let assignment = ClusterAssignment::from_pairs(
            s.parents
                .iter()
                .flat_map(|o| o.children.iter().map(move |c| (*c, o.key))),
        );
        let mk = || {
            let db = CorDatabase::build_clustered(pool(), &s, &assignment).unwrap();
            db.pool().flush_and_clear().unwrap();
            db
        };
        let db = mk();
        let plain = dfs_clust(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(db.pool().stats().batch_snapshot(), Default::default());
        let db = mk();
        let ahead = dfs_clust(&db, &q, &batched_opts).unwrap();
        let (mut a, mut b) = (plain.values, ahead.values);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(
            db.pool().stats().prefetch_issued() > 0,
            "cluster scan readahead issued prefetches"
        );
    }
}
