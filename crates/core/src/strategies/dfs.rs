//! DFS (Sec. 3.1, strategy \[1\]).
//!
//! "For each OID of 'elders', fetch the corresponding subobject from the
//! relation person, and return its name." — a nested-loop join between
//! ParentRel and ChildRel: one index probe per referenced subobject.
//! Linear in the number of references, so it loses to BFS once NumTop
//! exceeds a few tens of objects (Fig. 3), but it needs no temporary.

use super::fetch_required;
use crate::database::CorDatabase;
use crate::query::{extract_ret, RetrieveQuery, StrategyOutput};
use crate::CorError;

/// Run a retrieve depth-first.
pub fn dfs(db: &CorDatabase, query: &RetrieveQuery) -> Result<StrategyOutput, CorError> {
    let stats = db.pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = db.parents_in_range(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    let mut values = Vec::new();
    for (_key, children) in &parents {
        for &oid in children {
            let rec = fetch_required(db, oid)?;
            values.push(extract_ret(&rec, query.attr));
        }
    }
    let s2 = stats.snapshot();

    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}
