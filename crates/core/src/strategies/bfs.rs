//! BFS and BFSNODUP (Sec. 3.1, strategies \[2\] and \[3\]).
//!
//! "Collect the OID's from qualifying tuples of group into a temporary
//! relation temp ... next execute `retrieve (person.name) where person.OID
//! = temp.OID`." The temporary is a real heap file and is materialized
//! (its pages are forced), which is the "extra cost of forming the
//! temporary relation" that makes BFS slightly worse than DFS at low
//! NumTop.
//!
//! The join is chosen by cost: iterative substitution (index probes) when
//! the temporary is small, merge join (sort the temporary, then co-scan
//! the OID-ordered ChildRel leaves) when it is large. "Whenever we talk of
//! a competitive BFS strategy, we imply a merge-join."
//!
//! With `dedup` (BFSNODUP) duplicates are eliminated while sorting the
//! temporary; with sharing (`ShareFactor > 1`) this shrinks the join input
//! but also changes the result multiset — each shared subobject is
//! returned once instead of once per referencing object.

use super::{ExecOptions, JoinChoice};
use crate::database::CorDatabase;
use crate::query::{extract_ret, RetAttr, RetrieveQuery, StrategyOutput};
use crate::CorError;
use cor_access::{external_sort, merge_join, BTreeFile, HeapFile};
use cor_obs::{Phase, PhaseGuard};
use cor_pagestore::PAGE_SIZE;
use cor_relational::{Oid, RelId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Run a retrieve breadth-first.
pub fn bfs(
    db: &CorDatabase,
    query: &RetrieveQuery,
    dedup: bool,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    let stats = db.pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = db.parents_in_range(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    // Partition the collected OIDs by child relation (Sec. 6.2: with
    // NumChildRel relations, BFS runs one join per relation encountered).
    let mut by_rel: BTreeMap<RelId, Vec<Oid>> = BTreeMap::new();
    for (_key, children) in &parents {
        for &oid in children {
            by_rel.entry(oid.rel).or_default().push(oid);
        }
    }

    let mut values = Vec::new();
    for (rel, oids) in &by_rel {
        join_fetch(db, *rel, oids, query.attr, dedup, opts, &mut values)?;
    }
    let s2 = stats.snapshot();

    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}

/// Materialize `oids` into a temporary, join it against ChildRel `rel`,
/// and append the projected attribute values. Shared with SMART's
/// high-NumTop path.
pub(crate) fn join_fetch(
    db: &CorDatabase,
    rel: RelId,
    oids: &[Oid],
    attr: RetAttr,
    dedup: bool,
    opts: &ExecOptions,
    values: &mut Vec<i64>,
) -> Result<(), CorError> {
    if oids.is_empty() {
        return Ok(());
    }
    let tree = db.child_tree(rel)?;

    // Form the temporary relation (heap file of 10-byte OID records) and
    // materialize it — the paper charges BFS for temp formation.
    let temp = {
        let _phase = PhaseGuard::enter(Phase::TempBuild);
        let temp = HeapFile::create(Arc::clone(db.pool()))?;
        for oid in oids {
            temp.append(&oid.to_key_bytes())?;
        }
        temp.flush()?;
        temp
    };

    let use_merge = match opts.join {
        JoinChoice::ForceMerge => true,
        JoinChoice::ForceIterative => false,
        JoinChoice::Auto => {
            estimate_merge_cost(oids.len(), temp.num_pages(), tree, opts)
                < estimate_iterative_cost(oids.len(), tree)
        }
    };

    if use_merge {
        // Reading the temp back and sorting it is sort work; run spills
        // re-assert their own Sort bracket inside.
        let sorted = {
            let _phase = PhaseGuard::enter(Phase::Sort);
            external_sort(
                db.pool(),
                temp.scan().map(|(_, rec)| rec),
                opts.sort_work_mem,
                dedup,
            )?
        };
        // The co-scan of the OID-ordered ChildRel leaves is the join
        // proper (sort-stream pulls retag themselves as Sort). With
        // readahead enabled the merge-run leaf pages are prefetched in
        // coalesced batches ahead of the scan cursor.
        let _phase = PhaseGuard::enter(Phase::MergeJoin);
        let scan = tree.scan_all().with_readahead(opts.io.readahead);
        for (_oid, rec) in merge_join(sorted, scan) {
            values.push(extract_ret(&rec, attr));
        }
    } else {
        // Iterative substitution: probe per temp record, "fetched exactly
        // as in DFS" — so leave the probes to the index-level default
        // tags. BFSNODUP still dedups first.
        if dedup {
            let keys = {
                let _phase = PhaseGuard::enter(Phase::Sort);
                external_sort(
                    db.pool(),
                    temp.scan().map(|(_, rec)| rec),
                    opts.sort_work_mem,
                    true,
                )?
            };
            probe_all(tree, keys, attr, opts, values)?;
        } else {
            probe_all(tree, temp.scan().map(|(_, key)| key), attr, opts, values)?;
        }
    }
    Ok(())
}

/// Probe the index once per key, in key arrival order. With batching
/// enabled the keys are probed through the B-tree's sorted-batch lookup
/// in windows of `opts.io.batch` — one inner-node descent per leaf run
/// and one coalesced read per run of adjacent leaves — instead of one
/// root-to-leaf descent each. Values come back in the same order either
/// way.
fn probe_all(
    tree: &BTreeFile,
    keys: impl Iterator<Item = Vec<u8>>,
    attr: RetAttr,
    opts: &ExecOptions,
    values: &mut Vec<i64>,
) -> Result<(), CorError> {
    if opts.io.batch <= 1 {
        for key in keys {
            probe_one(tree, &key, attr, values)?;
        }
        return Ok(());
    }
    let keys: Vec<Vec<u8>> = keys.collect();
    for window in keys.chunks(opts.io.batch) {
        let refs: Vec<&[u8]> = window.iter().map(Vec::as_slice).collect();
        for (key, rec) in window.iter().zip(tree.get_many(&refs)?) {
            let rec = rec
                .ok_or_else(|| CorError::DanglingOid(Oid::from_key_bytes(key).expect("oid key")))?;
            values.push(extract_ret(&rec, attr));
        }
    }
    Ok(())
}

fn probe_one(
    tree: &BTreeFile,
    key: &[u8],
    attr: RetAttr,
    values: &mut Vec<i64>,
) -> Result<(), CorError> {
    let rec = tree
        .get(key)?
        .ok_or_else(|| CorError::DanglingOid(Oid::from_key_bytes(key).expect("oid key")))?;
    values.push(extract_ret(&rec, attr));
    Ok(())
}

/// Estimated I/O of joining `n` collected OIDs against ChildRel `rel`
/// under the better of the two plans (used by SMART to decide whether
/// exploiting the cache pays at all).
pub(crate) fn estimate_join_cost(
    db: &CorDatabase,
    rel: RelId,
    n: usize,
    opts: &ExecOptions,
) -> Result<u64, CorError> {
    if n == 0 {
        return Ok(0);
    }
    let tree = db.child_tree(rel)?;
    let temp_pages = ((n * cor_relational::OID_BYTES) / PAGE_SIZE + 1) as u32;
    Ok(
        estimate_iterative_cost(n, tree).min(estimate_merge_cost(n, temp_pages, tree, opts))
            + temp_pages as u64,
    )
}

/// Estimated I/O for iterative substitution: the first probe pays a full
/// root-to-leaf descent; later probes find the internal pages resident and
/// pay about one leaf read each (random OIDs rarely share leaves).
fn estimate_iterative_cost(n: usize, tree: &BTreeFile) -> u64 {
    tree.height() as u64 + n.saturating_sub(1) as u64
}

/// Estimated I/O for the merge join: scan every ChildRel leaf, plus spill
/// I/O if the temporary exceeds sort work memory.
fn estimate_merge_cost(n: usize, temp_pages: u32, tree: &BTreeFile, opts: &ExecOptions) -> u64 {
    let sort_bytes = n * (cor_relational::OID_BYTES + 16);
    let spill = if sort_bytes <= opts.sort_work_mem {
        0
    } else {
        2 * (sort_bytes / PAGE_SIZE) as u64 // write runs + read runs
    };
    tree.leaf_pages() as u64 + temp_pages as u64 + spill
}
