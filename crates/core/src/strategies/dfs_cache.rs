//! DFSCACHE (Sec. 3.2).
//!
//! "Check if the value of the subobjects of 'elders' is cached. If so,
//! fetch the attribute name from the cache. Otherwise, fetch the
//! subobjects from the person relation (this is called materialization),
//! cache their values, and return the attribute name."
//!
//! Units are the caching granule; freshly materialized units are inserted
//! (cache maintenance), which is exactly what a breadth-first plan cannot
//! do — a merge join returns subobjects in OID order and "the identity of
//! the units would be lost" (the reason a caching BFS is unviable).

use super::ExecOptions;
use crate::database::CorDatabase;
use crate::query::{extract_ret, RetrieveQuery, StrategyOutput};
use crate::unit::hashkey_of;
use crate::CorError;
use cor_relational::Oid;

/// Materialize one unit: fetch every member subobject, batching the index
/// probes when `opts.io.batch > 1` (a unit's OIDs are consecutive in the
/// common no-sharing layout, so a batched probe coalesces their leaf
/// reads). Absent OIDs fail loudly — the paper's databases never dangle.
fn materialize_unit(
    db: &CorDatabase,
    children: &[Oid],
    opts: &ExecOptions,
) -> Result<Vec<Vec<u8>>, CorError> {
    db.fetch_child_records(children, opts.io.batch)?
        .into_iter()
        .zip(children)
        .map(|(rec, &oid)| rec.ok_or(CorError::DanglingOid(oid)))
        .collect()
}

/// Run a retrieve depth-first through the unit-value cache (whichever
/// placement the database was built with).
pub fn dfs_cache(
    db: &CorDatabase,
    query: &RetrieveQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    if db.has_inside_cache() {
        return dfs_cache_inside(db, query, opts);
    }
    let stats = db.pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = db.parents_in_range(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    let mut values = Vec::new();
    for (_key, children) in &parents {
        if children.is_empty() {
            continue;
        }
        let hashkey = hashkey_of(children);
        let cached = db.cache_mut()?.probe(hashkey)?;
        match cached {
            Some(records) => {
                for rec in &records {
                    values.push(extract_ret(rec, query.attr));
                }
            }
            None => {
                // Materialize the unit, return its values, and cache it.
                let records = materialize_unit(db, children, opts)?;
                for rec in &records {
                    values.push(extract_ret(rec, query.attr));
                }
                db.cache_mut()?.insert(hashkey, children, &records)?;
            }
        }
    }
    let s2 = stats.snapshot();

    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}

/// Inside-placement variant (Sec. 2.3): the cached copy arrives for free
/// with the scanned object tuple; misses materialize and write the copy
/// back into the tuple; nothing is shared between objects — the structural
/// weaknesses the paper cites when dismissing this placement.
fn dfs_cache_inside(
    db: &CorDatabase,
    query: &RetrieveQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    let stats = db.pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = db.parents_in_range_cached(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    let mut values = Vec::new();
    for (key, children, cached) in &parents {
        if children.is_empty() {
            continue;
        }
        match cached {
            Some(records) => {
                db.inside_touch(*key);
                for rec in records {
                    values.push(extract_ret(rec, query.attr));
                }
            }
            None => {
                db.inside_miss();
                let records = materialize_unit(db, children, opts)?;
                for rec in &records {
                    values.push(extract_ret(rec, query.attr));
                }
                db.inside_store(*key, &records)?;
            }
        }
    }
    let s2 = stats.snapshot();

    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}
