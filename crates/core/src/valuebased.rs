//! The value-based primary representation (Sec. 2.2.1) — the right column
//! of the representation matrix.
//!
//! "Subobjects are stored directly in the objects that reference them...
//! when a subobject is shared by more than one object we need to replicate
//! its value wherever required." (The NF² model and EXTRA's `own` type
//! support this representation.)
//!
//! Retrieval is a single ParentRel scan — the object "contains all the
//! information about its subobjects", so caching and clustering add
//! nothing (the shaded cells of Fig. 1). The price is paid on update:
//! every replica of a shared subobject must be located and rewritten.
//! Locating replicas uses an in-memory replica catalog (the kind of
//! ownership bookkeeping an NF² system keeps); the page writes to each
//! referencing object are charged as real I/O.

use crate::cache::{decode_unit_value, encode_unit_value};
use crate::database::{DatabaseSpec, SubobjectSpec};
use crate::query::{extract_ret, RetrieveQuery, StrategyOutput, UpdateQuery};
use crate::CorError;
use cor_access::{decode, encode, BTreeFile, DEFAULT_FILL};
use cor_pagestore::{BufferPool, IoDelta};
use cor_relational::{Oid, RelId, Schema, Tuple, Value, ValueType};
use std::collections::HashMap;
use std::sync::Arc;

/// Relation id of the value-based ParentRel.
pub const VALUE_PARENT_REL: RelId = 3;

/// Encoded `(key, record)` pairs ready for a bulk load.
type LoadEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Schema of the value-based ParentRel: subobject values are inlined in
/// the `members` byte column (full child records, replicated per
/// referencing object).
pub fn value_parent_schema() -> Schema {
    Schema::new(&[
        ("oid", ValueType::Oid),
        ("ret1", ValueType::Int),
        ("ret2", ValueType::Int),
        ("ret3", ValueType::Int),
        ("dummy", ValueType::Str),
        ("members", ValueType::Bytes),
    ])
}

/// A loaded value-based database.
pub struct ValueDatabase {
    pool: Arc<BufferPool>,
    parent: BTreeFile,
    /// Replica catalog: which parents hold a copy of each subobject.
    replicas: HashMap<Oid, Vec<u64>>,
    parent_schema: Schema,
    parent_count: u64,
}

impl ValueDatabase {
    /// Build the value-based representation from the same logical spec the
    /// OID representation uses: every referenced subobject's record is
    /// inlined (replicated) into each referencing object.
    pub fn build(pool: Arc<BufferPool>, spec: &DatabaseSpec) -> Result<Self, CorError> {
        let pschema = value_parent_schema();
        let cschema = crate::database::child_schema();

        // Index the subobject records once for inlining.
        let mut records: HashMap<Oid, Vec<u8>> = HashMap::new();
        for rel in &spec.child_rels {
            for s in rel {
                records.insert(s.oid, encode(&cschema, &child_tuple(s))?);
            }
        }

        let mut replicas: HashMap<Oid, Vec<u64>> = HashMap::new();
        let entries: Result<LoadEntries, CorError> = spec
            .parents
            .iter()
            .map(|o| {
                let inlined: Vec<Vec<u8>> = o
                    .children
                    .iter()
                    .map(|oid| {
                        replicas.entry(*oid).or_default().push(o.key);
                        records.get(oid).cloned().ok_or(CorError::DanglingOid(*oid))
                    })
                    .collect::<Result<_, _>>()?;
                let tuple = Tuple::new(vec![
                    Value::Oid(Oid::new(VALUE_PARENT_REL, o.key)),
                    Value::Int(o.rets[0]),
                    Value::Int(o.rets[1]),
                    Value::Int(o.rets[2]),
                    Value::Str(o.dummy.clone()),
                    Value::Bytes(encode_unit_value(&inlined)),
                ]);
                let key = Oid::new(VALUE_PARENT_REL, o.key).to_key_bytes().to_vec();
                Ok((key, encode(&pschema, &tuple)?))
            })
            .collect();
        let parent = BTreeFile::bulk_load(Arc::clone(&pool), 10, entries?, DEFAULT_FILL)?;

        Ok(ValueDatabase {
            pool,
            parent,
            replicas,
            parent_schema: pschema,
            parent_count: spec.parents.len() as u64,
        })
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// ParentRel cardinality.
    pub fn parent_count(&self) -> u64 {
        self.parent_count
    }

    /// Number of replicas of `oid` (diagnostic; equals the number of
    /// objects sharing the subobject).
    pub fn replica_count(&self, oid: Oid) -> usize {
        self.replicas.get(&oid).map_or(0, |v| v.len())
    }

    /// Run a retrieve: one ParentRel range scan, everything inline.
    pub fn run_retrieve(&self, query: &RetrieveQuery) -> Result<StrategyOutput, CorError> {
        let stats = self.pool.stats().clone();
        let s0 = stats.snapshot();
        let lo_k = Oid::new(VALUE_PARENT_REL, query.lo).to_key_bytes();
        let hi_k = Oid::new(VALUE_PARENT_REL, query.hi).to_key_bytes();
        let mut values = Vec::new();
        for (_, rec) in self.parent.range(&lo_k, &hi_k)? {
            let t = decode(&self.parent_schema, &rec)?;
            let members = t.get(5).as_bytes().expect("members column");
            for child_rec in decode_unit_value(members).expect("inlined records decode") {
                values.push(extract_ret(&child_rec, query.attr));
            }
        }
        let s1 = stats.snapshot();
        // All I/O is object access: the subobjects travel with the object.
        Ok(StrategyOutput {
            values,
            par_io: s1.since(&s0),
            child_io: IoDelta::default(),
        })
    }

    /// Update one `ret` attribute of a subobject: every replica is
    /// rewritten in place. Returns how many replicas were touched.
    pub fn update_child_ret(&self, oid: Oid, ret_idx: usize, v: i64) -> Result<usize, CorError> {
        assert!(ret_idx < 3);
        let Some(parent_keys) = self.replicas.get(&oid) else {
            return Ok(0);
        };
        let cschema = crate::database::child_schema();
        for &pk in parent_keys {
            let pkey = Oid::new(VALUE_PARENT_REL, pk).to_key_bytes();
            let rec = self
                .parent
                .get(&pkey)?
                .ok_or(CorError::DanglingOid(Oid::new(VALUE_PARENT_REL, pk)))?;
            let mut t = decode(&self.parent_schema, &rec)?;
            let members = t.get(5).as_bytes().expect("members column");
            let mut children = decode_unit_value(members).expect("inlined records decode");
            for child_rec in &mut children {
                let ct = decode(&cschema, child_rec)?;
                if ct.get(0).as_oid() == Some(oid) {
                    let mut ct = ct;
                    ct.set(1 + ret_idx, Value::Int(v));
                    *child_rec = encode(&cschema, &ct)?;
                }
            }
            t.set(5, Value::Bytes(encode_unit_value(&children)));
            self.parent
                .update(&pkey, &encode(&self.parent_schema, &t)?)?;
        }
        Ok(parent_keys.len())
    }

    /// Apply an update query, returning the I/O spent (the replica
    /// rewrites are the whole story here).
    pub fn apply_update(&self, update: &UpdateQuery) -> Result<IoDelta, CorError> {
        let before = self.pool.stats().snapshot();
        for &oid in &update.targets {
            self.update_child_ret(oid, 0, update.new_ret1)?;
        }
        Ok(self.pool.stats().snapshot().since(&before))
    }
}

fn child_tuple(s: &SubobjectSpec) -> Tuple {
    Tuple::new(vec![
        Value::Oid(s.oid),
        Value::Int(s.rets[0]),
        Value::Int(s.rets[1]),
        Value::Int(s.rets[2]),
        Value::Str(s.dummy.clone()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{ObjectSpec, CHILD_REL_BASE};
    use crate::query::RetAttr;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    fn tiny_spec() -> DatabaseSpec {
        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        let child = |k: u64| SubobjectSpec {
            oid: c(k),
            rets: [10 * k as i64, 0, 0],
            dummy: "c".repeat(8),
        };
        DatabaseSpec {
            parents: vec![
                ObjectSpec {
                    key: 0,
                    rets: [0; 3],
                    dummy: "p".into(),
                    children: vec![c(0), c(1)],
                },
                ObjectSpec {
                    key: 1,
                    rets: [0; 3],
                    dummy: "p".into(),
                    children: vec![c(1), c(2)],
                },
                ObjectSpec {
                    key: 2,
                    rets: [0; 3],
                    dummy: "p".into(),
                    children: vec![],
                },
            ],
            child_rels: vec![(0..3).map(child).collect()],
        }
    }

    #[test]
    fn retrieve_returns_replicated_values() {
        let db = ValueDatabase::build(pool(16), &tiny_spec()).unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 2,
            attr: RetAttr::Ret1,
        };
        let out = db.run_retrieve(&q).unwrap();
        let mut v = out.values;
        v.sort_unstable();
        // Subobject 1 (ret1 = 10) is shared: appears twice.
        assert_eq!(v, vec![0, 10, 10, 20]);
        assert_eq!(out.child_io.total(), 0, "value-based pays no subobject I/O");
    }

    #[test]
    fn replica_counts_match_sharing() {
        let db = ValueDatabase::build(pool(16), &tiny_spec()).unwrap();
        assert_eq!(db.replica_count(Oid::new(CHILD_REL_BASE, 0)), 1);
        assert_eq!(db.replica_count(Oid::new(CHILD_REL_BASE, 1)), 2);
        assert_eq!(db.replica_count(Oid::new(CHILD_REL_BASE, 9)), 0);
    }

    #[test]
    fn update_rewrites_every_replica() {
        let db = ValueDatabase::build(pool(16), &tiny_spec()).unwrap();
        let touched = db
            .update_child_ret(Oid::new(CHILD_REL_BASE, 1), 0, 777)
            .unwrap();
        assert_eq!(touched, 2);
        let q = RetrieveQuery {
            lo: 0,
            hi: 2,
            attr: RetAttr::Ret1,
        };
        let mut v = db.run_retrieve(&q).unwrap().values;
        v.sort_unstable();
        assert_eq!(
            v,
            vec![0, 20, 777, 777],
            "both replicas must show the new value"
        );
    }

    #[test]
    fn update_of_unreferenced_subobject_is_free() {
        let db = ValueDatabase::build(pool(16), &tiny_spec()).unwrap();
        let before = db.pool().stats().snapshot();
        assert_eq!(
            db.update_child_ret(Oid::new(CHILD_REL_BASE, 9), 0, 1)
                .unwrap(),
            0
        );
        assert_eq!(db.pool().stats().snapshot().since(&before).total(), 0);
    }

    #[test]
    fn childless_object_contributes_nothing() {
        let db = ValueDatabase::build(pool(16), &tiny_spec()).unwrap();
        let q = RetrieveQuery {
            lo: 2,
            hi: 2,
            attr: RetAttr::Ret1,
        };
        assert!(db.run_retrieve(&q).unwrap().values.is_empty());
    }

    #[test]
    fn update_costs_scale_with_replication() {
        // Same logical data twice: once with sharing, once without. The
        // shared build must touch more pages per update.
        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        let child = |k: u64| SubobjectSpec {
            oid: c(k),
            rets: [0, 0, 0],
            dummy: "c".repeat(40),
        };
        let shared = DatabaseSpec {
            parents: (0..200)
                .map(|k| ObjectSpec {
                    key: k,
                    rets: [0; 3],
                    dummy: "p".repeat(30),
                    children: vec![c(0), c(1)], // everyone shares two subobjects
                })
                .collect(),
            child_rels: vec![(0..2).map(child).collect()],
        };
        let db = ValueDatabase::build(pool(8), &shared).unwrap();
        db.pool().flush_and_clear().unwrap();
        let upd = UpdateQuery {
            targets: vec![c(0)],
            new_ret1: 5,
        };
        let io = db.apply_update(&upd).unwrap();
        assert!(
            io.total() > 20,
            "200 replicas across many pages must cost real I/O (got {})",
            io.total()
        );
    }
}
