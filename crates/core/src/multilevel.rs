//! Multi-level ("multi-dot") queries.
//!
//! The paper's example query uses two dots — `group.members.name` — and
//! notes that "queries involving more than two dots in the target list
//! require more levels of relationships to be explored" (Sec. 3), citing
//! the recursion-vs-iteration framing of \[BANC86\]. The VLSI motivation
//! (cells → paths → rectangles) is exactly a three-dot query.
//!
//! A hierarchy is a chain of databases: level `i`'s subobject OIDs name
//! level `i+1`'s objects (`child OID key = next level's parent key`); the
//! last database resolves its subobjects normally. Two executors:
//!
//! * [`dfs_multilevel`] — recursion: descend per object reference;
//! * [`bfs_multilevel`] — iteration: one temporary of OIDs per level,
//!   joined breadth-first, optionally with duplicate elimination between
//!   levels. The paper observes "the benefits of BFSNODUP will increase
//!   with an increase in the number of levels explored" — duplicates
//!   multiply through shared intermediate objects, and eliminating them
//!   early shrinks every later join (reproduced by the `multilevel`
//!   bench).

use crate::database::{CorDatabase, PARENT_REL};
use crate::query::{extract_ret, RetAttr, RetrieveQuery, StrategyOutput};
use crate::strategies::{self, ExecOptions};
use crate::{CorError, Strategy};
use cor_access::{external_sort, merge_join, HeapFile};
use cor_relational::Oid;
use std::sync::Arc;

/// `retrieve (L0.children.children...attr) where lo <= L0.OID <= hi`,
/// descending through `levels.len()` databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiDotQuery {
    /// Lower bound on the level-0 object keys.
    pub lo: u64,
    /// Upper bound (inclusive).
    pub hi: u64,
    /// Attribute projected from the final level's subobjects.
    pub attr: RetAttr,
}

/// Validate a hierarchy: every level must be a standard-representation
/// database, and each level's subobject keys must resolve as the next
/// level's parent keys (checked lazily during execution; here we check
/// representations only).
fn check_levels(levels: &[CorDatabase]) -> Result<(), CorError> {
    if levels.is_empty() {
        return Err(CorError::WrongRepresentation("at least one level"));
    }
    for db in levels {
        // Both executors need ParentRel B-trees.
        db.parent_tree()?;
    }
    Ok(())
}

/// Depth-first (recursive) multi-level retrieval.
pub fn dfs_multilevel(
    levels: &[CorDatabase],
    query: &MultiDotQuery,
) -> Result<StrategyOutput, CorError> {
    check_levels(levels)?;
    let stats = levels[0].pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = levels[0].parents_in_range(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    let mut values = Vec::new();
    for (_key, children) in &parents {
        for &oid in children {
            descend(levels, 0, oid, query.attr, &mut values)?;
        }
    }
    let s2 = stats.snapshot();
    // ParCost covers only level-0 object access; everything deeper is
    // subobject exploration. (Each level's own I/O lands on its own pool's
    // counters; the totals here are correct when levels share a pool and
    // per-level otherwise — the driver sums per-level stats.)
    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}

fn descend(
    levels: &[CorDatabase],
    level: usize,
    oid: Oid,
    attr: RetAttr,
    values: &mut Vec<i64>,
) -> Result<(), CorError> {
    if level + 1 == levels.len() {
        // `oid` names a subobject of the last database.
        let rec = levels[level]
            .fetch_child_record(oid)?
            .ok_or(CorError::DanglingOid(oid))?;
        values.push(extract_ret(&rec, attr));
        return Ok(());
    }
    // `oid` names an object of the next database.
    let next = &levels[level + 1];
    let rows = next.parents_in_range(oid.key, oid.key)?;
    let (_, children) = rows.into_iter().next().ok_or(CorError::DanglingOid(oid))?;
    for child in children {
        descend(levels, level + 1, child, attr, values)?;
    }
    Ok(())
}

/// Breadth-first (iterative) multi-level retrieval. With `dedup`,
/// duplicate OIDs are eliminated between levels (the multi-level
/// BFSNODUP).
pub fn bfs_multilevel(
    levels: &[CorDatabase],
    query: &MultiDotQuery,
    dedup: bool,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    check_levels(levels)?;
    let stats = levels[0].pool().stats().clone();
    let s0 = stats.snapshot();
    let parents = levels[0].parents_in_range(query.lo, query.hi)?;
    let s1 = stats.snapshot();

    // Frontier: the subobject OIDs collected at the current level.
    let mut frontier: Vec<Oid> = parents
        .iter()
        .flat_map(|(_, cs)| cs.iter().copied())
        .collect();

    let mut values = Vec::new();
    for (level, db) in levels.iter().enumerate() {
        let last = level + 1 == levels.len();
        if last {
            // Resolve the frontier against the final database's ChildRels
            // using the standard BFS join machinery (handles per-relation
            // temporaries, plan choice, and dedup).
            let mut by_rel: std::collections::BTreeMap<u16, Vec<Oid>> = Default::default();
            for oid in frontier.drain(..) {
                by_rel.entry(oid.rel).or_default().push(oid);
            }
            for (rel, oids) in &by_rel {
                strategies::bfs_join_fetch(db, *rel, oids, query.attr, dedup, opts, &mut values)?;
            }
            break;
        }
        // Intermediate level: the frontier names the NEXT database's
        // objects. Materialize the frontier as a temporary of parent keys,
        // sort it, and join against the next ParentRel to collect the
        // level-deeper frontier — merge join for big frontiers, iterative
        // substitution for small ones (the same optimizer choice as the
        // single-level BFS, where duplicate elimination directly removes
        // probes).
        let next = &levels[level + 1];
        let temp = HeapFile::create(Arc::clone(next.pool()))?;
        for oid in frontier.drain(..) {
            temp.append(&Oid::new(PARENT_REL, oid.key).to_key_bytes())?;
        }
        temp.flush()?;
        let sorted = external_sort(
            next.pool(),
            temp.scan().map(|(_, rec)| rec),
            opts.sort_work_mem,
            dedup,
        )?;
        let tree = next.parent_tree()?;
        let schema = next.parent_schema().clone();
        let n = temp.len();
        let iter_cost = tree.height() as u64 + n.saturating_sub(1);
        let merge_cost = tree.leaf_pages() as u64 + temp.num_pages() as u64;
        let collect = |rec: Vec<u8>, frontier: &mut Vec<Oid>| -> Result<(), CorError> {
            let t = cor_access::decode(&schema, &rec)?;
            let children = t.get(5).as_oid_list().expect("children column");
            frontier.extend_from_slice(children);
            Ok(())
        };
        if merge_cost < iter_cost {
            for (_key, rec) in merge_join(sorted, tree.scan_all()) {
                collect(rec, &mut frontier)?;
            }
        } else {
            for key in sorted {
                let rec = tree.get(&key)?.ok_or_else(|| {
                    CorError::DanglingOid(Oid::from_key_bytes(&key).expect("oid key"))
                })?;
                collect(rec, &mut frontier)?;
            }
        }
    }
    let s2 = stats.snapshot();
    Ok(StrategyOutput {
        values,
        par_io: s1.since(&s0),
        child_io: s2.since(&s1),
    })
}

/// Run a multi-level query under a strategy name (DFS, BFS or BFSNODUP);
/// other strategies are single-level concepts.
///
/// This is the low-level dispatch behind `cor::Engine::retrieve_multilevel`.
pub fn execute_multilevel(
    levels: &[CorDatabase],
    strategy: Strategy,
    query: &MultiDotQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    match strategy {
        Strategy::Dfs => dfs_multilevel(levels, query),
        Strategy::Bfs => bfs_multilevel(levels, query, false, opts),
        Strategy::BfsNoDup => bfs_multilevel(levels, query, true, opts),
        other => {
            // Single-level fallback so one-level hierarchies still accept
            // every strategy.
            if levels.len() == 1 {
                let q = RetrieveQuery {
                    lo: query.lo,
                    hi: query.hi,
                    attr: query.attr,
                };
                strategies::execute_retrieve(&levels[0], other, &q, opts)
            } else {
                Err(CorError::WrongRepresentation(
                    "DFS/BFS/BFSNODUP for multi-level queries",
                ))
            }
        }
    }
}

/// Former name of [`execute_multilevel`].
#[deprecated(
    since = "0.2.0",
    note = "use `cor::Engine::retrieve_multilevel` (or `multilevel::execute_multilevel`) instead"
)]
pub fn run_multilevel(
    levels: &[CorDatabase],
    strategy: Strategy,
    query: &MultiDotQuery,
    opts: &ExecOptions,
) -> Result<StrategyOutput, CorError> {
    execute_multilevel(levels, strategy, query, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{DatabaseSpec, ObjectSpec, SubobjectSpec, CHILD_REL_BASE};
    use cor_pagestore::BufferPool;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(32).build())
    }

    /// Two-level hierarchy:
    /// groups (0..3) -> members (paths of people) -> hobbies.
    /// Level 0: 3 groups each referencing 2 "person" oids (person 1 shared
    /// by groups 0 and 1).
    /// Level 1: 4 persons, each referencing hobbies; hobby 0 shared.
    fn build_levels() -> Vec<CorDatabase> {
        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        // Level 0: groups -> persons.
        let level0 = DatabaseSpec {
            parents: vec![
                ObjectSpec {
                    key: 0,
                    rets: [0; 3],
                    dummy: "g".into(),
                    children: vec![c(0), c(1)],
                },
                ObjectSpec {
                    key: 1,
                    rets: [0; 3],
                    dummy: "g".into(),
                    children: vec![c(1), c(2)],
                },
                ObjectSpec {
                    key: 2,
                    rets: [0; 3],
                    dummy: "g".into(),
                    children: vec![c(3)],
                },
            ],
            child_rels: vec![(0..4)
                .map(|k| SubobjectSpec {
                    oid: c(k),
                    rets: [0; 3],
                    dummy: "p".into(),
                })
                .collect()],
        };
        // Level 1: persons -> hobbies. Hobby ret1 = 100 * hobby key.
        let level1 = DatabaseSpec {
            parents: vec![
                ObjectSpec {
                    key: 0,
                    rets: [0; 3],
                    dummy: "p".into(),
                    children: vec![c(0), c(1)],
                },
                ObjectSpec {
                    key: 1,
                    rets: [0; 3],
                    dummy: "p".into(),
                    children: vec![c(0)],
                },
                ObjectSpec {
                    key: 2,
                    rets: [0; 3],
                    dummy: "p".into(),
                    children: vec![c(2)],
                },
                ObjectSpec {
                    key: 3,
                    rets: [0; 3],
                    dummy: "p".into(),
                    children: vec![],
                },
            ],
            child_rels: vec![(0..3)
                .map(|k| SubobjectSpec {
                    oid: c(k),
                    rets: [100 * k as i64, 0, 0],
                    dummy: "h".into(),
                })
                .collect()],
        };
        vec![
            CorDatabase::build_standard(pool(), &level0, None).unwrap(),
            CorDatabase::build_standard(pool(), &level1, None).unwrap(),
        ]
    }

    #[test]
    fn dfs_two_levels_follows_every_path() {
        let levels = build_levels();
        let q = MultiDotQuery {
            lo: 0,
            hi: 2,
            attr: RetAttr::Ret1,
        };
        let mut v = dfs_multilevel(&levels, &q).unwrap().values;
        v.sort_unstable();
        // Paths: g0->p0->{h0,h1}, g0->p1->{h0}, g1->p1->{h0},
        // g1->p2->{h2}, g2->p3->{} => values {0,100,0,0,200}.
        assert_eq!(v, vec![0, 0, 0, 100, 200]);
    }

    #[test]
    fn bfs_matches_dfs_multiset() {
        let levels = build_levels();
        for (lo, hi) in [(0, 2), (0, 0), (1, 2), (2, 2)] {
            let q = MultiDotQuery {
                lo,
                hi,
                attr: RetAttr::Ret1,
            };
            let mut d = dfs_multilevel(&levels, &q).unwrap().values;
            let mut b = bfs_multilevel(&levels, &q, false, &ExecOptions::default())
                .unwrap()
                .values;
            d.sort_unstable();
            b.sort_unstable();
            assert_eq!(d, b, "range {lo}..={hi}");
        }
    }

    #[test]
    fn nodup_eliminates_shared_paths() {
        let levels = build_levels();
        let q = MultiDotQuery {
            lo: 0,
            hi: 2,
            attr: RetAttr::Ret1,
        };
        let mut v = bfs_multilevel(&levels, &q, true, &ExecOptions::default())
            .unwrap()
            .values;
        v.sort_unstable();
        // Dedup between levels: persons {0,1,2,3} once each, hobbies
        // {0,1,2} once each.
        assert_eq!(v, vec![0, 100, 200]);
    }

    #[test]
    fn single_level_multidot_equals_plain_retrieve() {
        let levels = build_levels();
        let q = MultiDotQuery {
            lo: 0,
            hi: 2,
            attr: RetAttr::Ret1,
        };
        let single = &levels[..1];
        let mut a = execute_multilevel(single, Strategy::Dfs, &q, &ExecOptions::default())
            .unwrap()
            .values;
        let plain = RetrieveQuery {
            lo: 0,
            hi: 2,
            attr: RetAttr::Ret1,
        };
        let mut b = strategies::execute_retrieve(
            &levels[0],
            Strategy::Dfs,
            &plain,
            &ExecOptions::default(),
        )
        .unwrap()
        .values;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn deep_strategies_reject_cached_modes() {
        let levels = build_levels();
        let q = MultiDotQuery {
            lo: 0,
            hi: 1,
            attr: RetAttr::Ret1,
        };
        assert!(
            execute_multilevel(&levels, Strategy::DfsCache, &q, &ExecOptions::default()).is_err()
        );
    }

    #[test]
    fn dangling_intermediate_reference_is_reported() {
        let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
        let level0 = DatabaseSpec {
            parents: vec![ObjectSpec {
                key: 0,
                rets: [0; 3],
                dummy: "g".into(),
                children: vec![c(99)], // no such person at level 1
            }],
            child_rels: vec![vec![SubobjectSpec {
                oid: c(99),
                rets: [0; 3],
                dummy: "p".into(),
            }]],
        };
        let level1 = DatabaseSpec {
            parents: vec![ObjectSpec {
                key: 0,
                rets: [0; 3],
                dummy: "p".into(),
                children: vec![],
            }],
            child_rels: vec![vec![]],
        };
        let levels = vec![
            CorDatabase::build_standard(pool(), &level0, None).unwrap(),
            CorDatabase::build_standard(pool(), &level1, None).unwrap(),
        ];
        let q = MultiDotQuery {
            lo: 0,
            hi: 0,
            attr: RetAttr::Ret1,
        };
        assert!(matches!(
            dfs_multilevel(&levels, &q),
            Err(CorError::DanglingOid(_))
        ));
    }
}
