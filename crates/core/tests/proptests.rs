//! Property tests for the paper's core machinery: the unit cache against
//! a model with a staleness invariant, QUEL round-trips, and clustering
//! assignment properties.

use complexobj::procedural::StoredQuery;
use complexobj::{parse_quel, ClusterAssignment, QuelStatement, UnitCache};
use cor_pagestore::BufferPool;
use cor_relational::Oid;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::builder().capacity(32).build())
}

#[derive(Debug, Clone)]
enum CacheOp {
    /// Insert unit `u` with a value tagged by `version`.
    Insert(u8),
    /// Probe unit `u`.
    Probe(u8),
    /// Update subobject `s` (invalidate everything containing it).
    Update(u8),
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        3 => (0u8..24).prop_map(CacheOp::Insert),
        3 => (0u8..24).prop_map(CacheOp::Probe),
        1 => (0u8..48).prop_map(CacheOp::Update),
    ]
}

/// Unit `u` contains subobjects {2u, 2u+1}.
fn members(u: u8) -> Vec<Oid> {
    vec![Oid::new(10, 2 * u as u64), Oid::new(10, 2 * u as u64 + 1)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The unit cache never serves a value written before the latest
    /// update of any member subobject, and never exceeds capacity.
    #[test]
    fn unit_cache_matches_model(
        capacity in 1usize..8,
        ops in proptest::collection::vec(arb_cache_op(), 1..80),
    ) {
        let mut cache = UnitCache::new(pool(), capacity).unwrap();
        // Model: what value each unit would hold if still cached, plus a
        // monotonically increasing version counter.
        let mut version = 0u64;
        let mut stored: HashMap<u8, u64> = HashMap::new(); // unit -> version at insert

        for op in ops {
            match op {
                CacheOp::Insert(u) => {
                    version += 1;
                    let tag = version.to_le_bytes().to_vec();
                    cache.insert(u as u64, &members(u), &[tag]).unwrap();
                    stored.insert(u, version);
                }
                CacheOp::Probe(u) => {
                    let got = cache.probe(u as u64).unwrap();
                    if let Some(records) = got {
                        // Whatever is served must be the most recent insert
                        // for that unit (evictions may have dropped it, but
                        // a stale value must never come back).
                        let v = u64::from_le_bytes(records[0].as_slice().try_into().unwrap());
                        prop_assert_eq!(Some(&v), stored.get(&u), "unit {} stale", u);
                    }
                }
                CacheOp::Update(s) => {
                    let oid = Oid::new(10, s as u64);
                    cache.invalidate_subobject(oid).unwrap();
                    // Model: any unit containing s is gone.
                    stored.retain(|&u, _| !members(u).contains(&oid));
                }
            }
            prop_assert!(cache.len() <= capacity, "capacity exceeded");
        }
    }

    /// Stored-query QUEL text round-trips for arbitrary bounds.
    #[test]
    fn stored_query_quel_roundtrip(
        rel in 10u16..20,
        a in any::<u64>(),
        b in any::<u64>(),
        ia in any::<i64>(),
        ib in any::<i64>(),
        ret_idx in 0usize..3,
    ) {
        let kq = StoredQuery::KeyRange { rel, lo: a.min(b), hi: a.max(b) };
        prop_assert_eq!(StoredQuery::parse_quel(&kq.to_quel()).unwrap(), kq);
        let rq = StoredQuery::RetRange { rel, ret_idx, lo: ia.min(ib), hi: ia.max(ib) };
        prop_assert_eq!(StoredQuery::parse_quel(&rq.to_quel()).unwrap(), rq);
    }

    /// Top-level QUEL retrieve statements round-trip through formatting.
    #[test]
    fn quel_retrieve_roundtrip(lo in 0u64..10_000, span in 0u64..10_000, attr in 1usize..=3, hops in 1usize..4) {
        let hi = lo + span;
        let path = "children.".repeat(hops);
        let text = format!("retrieve (ParentRel.{path}ret{attr}) where {lo} <= ParentRel.OID <= {hi}");
        let stmt = parse_quel(&text).unwrap();
        match stmt {
            QuelStatement::Retrieve(q) => {
                prop_assert_eq!(hops, 1);
                prop_assert_eq!((q.lo, q.hi), (lo, hi));
                prop_assert_eq!(q.attr.column(), attr);
            }
            QuelStatement::RetrieveMulti { query, depth } => {
                prop_assert_eq!(depth, hops);
                prop_assert_eq!((query.lo, query.hi), (lo, hi));
                prop_assert_eq!(query.attr.column(), attr);
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Random clustering assignments place every referenced subobject with
    /// exactly one of its referencing parents.
    #[test]
    fn cluster_assignment_is_total_and_valid(
        seed in any::<u64>(),
        refs in proptest::collection::vec((0u64..30, 0u64..40), 1..120),
    ) {
        // Build parent -> children lists from the (parent, child) pairs.
        let mut by_parent: HashMap<u64, Vec<Oid>> = HashMap::new();
        for (p, c) in &refs {
            by_parent.entry(*p).or_default().push(Oid::new(10, *c));
        }
        let parents: Vec<(u64, Vec<Oid>)> = by_parent.into_iter().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let assignment = ClusterAssignment::random(&parents, &mut rng);

        let mut referencing: HashMap<Oid, Vec<u64>> = HashMap::new();
        for (p, cs) in &parents {
            for c in cs {
                referencing.entry(*c).or_default().push(*p);
            }
        }
        for (oid, candidates) in &referencing {
            let chosen = assignment.parent_of(*oid);
            prop_assert!(chosen.is_some(), "subobject {oid} unassigned");
            prop_assert!(
                candidates.contains(&chosen.unwrap()),
                "subobject {} assigned to a non-referencing parent",
                oid
            );
        }
        prop_assert_eq!(assignment.len(), referencing.len());
    }
}
