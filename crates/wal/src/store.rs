//! Log stores: where the serialized record stream physically lives.
//!
//! A log is an ordered list of append-only *segments*; a segment is
//! named by the LSN of the first record it holds. The [`Wal`]
//! (crate::Wal) rotates to a fresh segment when the active one passes
//! the configured size, and checkpoints garbage-collect whole segments
//! whose every record precedes the redo horizon.
//!
//! [`MemLogStore`] models a real disk's durability semantics precisely
//! enough for crash testing: appended bytes sit in a volatile tail until
//! [`sync`](LogStore::sync) advances the durable watermark, and
//! [`crash`](MemLogStore::crash) discards everything above it — exactly
//! what a power failure does to an OS page cache. [`FileLogStore`] is
//! the real thing: one file per segment, `fdatasync` on sync.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use cor_pagestore::wal::Lsn;

/// Storage backend for the serialized log stream.
pub trait LogStore: Send + Sync {
    /// Append bytes to the active segment. Not necessarily durable until
    /// [`sync`](Self::sync).
    fn append(&self, bytes: &[u8]) -> io::Result<()>;

    /// Make every appended byte durable.
    fn sync(&self) -> io::Result<()>;

    /// Close the active segment and open a new one whose first record
    /// will carry `first_lsn`.
    fn rotate(&self, first_lsn: Lsn) -> io::Result<()>;

    /// Delete whole segments that only contain records with LSN below
    /// `lsn` (i.e. segments whose *successor's* first LSN is `<= lsn`).
    /// The active segment is never deleted. Returns how many segments
    /// were removed.
    fn gc_before(&self, lsn: Lsn) -> io::Result<usize>;

    /// The surviving segments' *durable* contents, in log order.
    /// Recovery reads this; bytes appended but never synced may or may
    /// not appear depending on the store (a real file store cannot know
    /// what the kernel already wrote out — [`MemLogStore`] models the
    /// worst case after [`crash`](MemLogStore::crash)).
    fn read_segments(&self) -> io::Result<Vec<Vec<u8>>>;

    /// Number of live segments.
    fn segment_count(&self) -> usize;

    /// Human-readable location for error messages ("mem-log", a
    /// directory path, ...).
    fn describe(&self) -> String;
}

struct MemSegment {
    first_lsn: Lsn,
    data: Vec<u8>,
    /// Bytes below this watermark survive a crash.
    durable_len: usize,
}

/// In-memory log store with an explicit durable watermark per segment,
/// for crash testing without touching the filesystem.
pub struct MemLogStore {
    segments: Mutex<Vec<MemSegment>>,
}

impl MemLogStore {
    /// Create a store with one empty active segment (first LSN 1).
    pub fn new() -> Self {
        MemLogStore {
            segments: Mutex::new(vec![MemSegment {
                first_lsn: 1,
                data: Vec::new(),
                durable_len: 0,
            }]),
        }
    }

    /// Simulate a power failure: every byte above each segment's durable
    /// watermark is lost, exactly as an unsynced OS page cache would be.
    pub fn crash(&self) {
        let mut segs = self.segments.lock();
        for s in segs.iter_mut() {
            s.data.truncate(s.durable_len);
        }
    }

    /// Simulate a torn log sector: crash, then additionally lose the
    /// last `n` *durable* bytes of the final segment (a sector the drive
    /// claimed to have written but tore). Recovery must cope via CRC.
    pub fn crash_torn(&self, n: usize) {
        self.crash();
        let mut segs = self.segments.lock();
        if let Some(last) = segs.last_mut() {
            let keep = last.data.len().saturating_sub(n);
            last.data.truncate(keep);
            last.durable_len = keep;
        }
    }

    /// Bytes appended but not yet durable (across all segments).
    pub fn unsynced_bytes(&self) -> usize {
        self.segments
            .lock()
            .iter()
            .map(|s| s.data.len() - s.durable_len)
            .sum()
    }
}

impl Default for MemLogStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        let mut segs = self.segments.lock();
        segs.last_mut()
            .expect("store always has an active segment")
            .data
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let mut segs = self.segments.lock();
        for s in segs.iter_mut() {
            s.durable_len = s.data.len();
        }
        Ok(())
    }

    fn rotate(&self, first_lsn: Lsn) -> io::Result<()> {
        // A rotation implies the previous segment is complete; real file
        // systems persist a closed file's contents once synced, and the
        // Wal syncs before rotating.
        let mut segs = self.segments.lock();
        segs.push(MemSegment {
            first_lsn,
            data: Vec::new(),
            durable_len: 0,
        });
        Ok(())
    }

    fn gc_before(&self, lsn: Lsn) -> io::Result<usize> {
        let mut segs = self.segments.lock();
        let mut removed = 0;
        while segs.len() >= 2 && segs[1].first_lsn <= lsn {
            segs.remove(0);
            removed += 1;
        }
        Ok(removed)
    }

    fn read_segments(&self) -> io::Result<Vec<Vec<u8>>> {
        Ok(self
            .segments
            .lock()
            .iter()
            .map(|s| s.data.clone())
            .collect())
    }

    fn segment_count(&self) -> usize {
        self.segments.lock().len()
    }

    fn describe(&self) -> String {
        "mem-log".to_string()
    }
}

struct FileLogInner {
    /// `(first_lsn, path)` in log order; the last entry is active.
    segments: Vec<(Lsn, PathBuf)>,
    active: File,
}

/// File-backed log store: one `wal-{first_lsn:010}.seg` file per segment
/// under a directory, `fdatasync` on [`sync`](LogStore::sync).
pub struct FileLogStore {
    dir: PathBuf,
    inner: Mutex<FileLogInner>,
}

impl FileLogStore {
    /// Open (or create) the log directory. Existing `wal-*.seg` files
    /// are adopted in name order and appending continues into the last
    /// one; an empty directory starts a segment with first LSN 1.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut segments: Vec<(Lsn, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(lsn) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<Lsn>().ok())
            {
                segments.push((lsn, path));
            }
        }
        segments.sort_unstable();
        if segments.is_empty() {
            segments.push((1, Self::segment_path(dir, 1)));
        }
        let (_, active_path) = segments.last().expect("at least one segment");
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(active_path)?;
        // The open may have created the directory and/or the first
        // segment file; pin both entries down before any append is
        // acknowledged against this store.
        Self::sync_dir(dir)?;
        Ok(FileLogStore {
            dir: dir.to_path_buf(),
            inner: Mutex::new(FileLogInner { segments, active }),
        })
    }

    fn segment_path(dir: &Path, first_lsn: Lsn) -> PathBuf {
        dir.join(format!("wal-{first_lsn:010}.seg"))
    }

    /// Fsync the log directory itself. `fdatasync` on a segment file
    /// makes its *contents* durable, but the directory entry naming it is
    /// separate metadata: without this, a power loss can make a fully
    /// synced segment vanish from the directory (truncating the log) or
    /// resurrect a GC'd one. Called after every create and unlink.
    fn sync_dir(dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self.inner.lock().active.write_all(bytes)
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.lock().active.sync_data()
    }

    fn rotate(&self, first_lsn: Lsn) -> io::Result<()> {
        let mut inner = self.inner.lock();
        // The closed segment must be fully on disk before we move on.
        inner.active.sync_data()?;
        let path = Self::segment_path(&self.dir, first_lsn);
        inner.active = OpenOptions::new().create(true).append(true).open(&path)?;
        // Make the new segment's directory entry durable: a synced
        // segment that is missing from the directory after power loss
        // silently truncates the log.
        Self::sync_dir(&self.dir)?;
        inner.segments.push((first_lsn, path));
        Ok(())
    }

    fn gc_before(&self, lsn: Lsn) -> io::Result<usize> {
        let mut inner = self.inner.lock();
        let mut removed = 0;
        while inner.segments.len() >= 2 && inner.segments[1].0 <= lsn {
            let (_, path) = inner.segments.remove(0);
            std::fs::remove_file(path)?;
            removed += 1;
        }
        if removed > 0 {
            // Pin the unlinks down, so a GC'd segment (whose records may
            // predate the checkpoint's horizon) cannot reappear after a
            // crash and confuse a later recovery.
            Self::sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    fn read_segments(&self) -> io::Result<Vec<Vec<u8>>> {
        let inner = self.inner.lock();
        inner
            .segments
            .iter()
            .map(|(_, path)| {
                let mut buf = Vec::new();
                File::open(path)?.read_to_end(&mut buf)?;
                Ok(buf)
            })
            .collect()
    }

    fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    fn describe(&self) -> String {
        self.dir.display().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn LogStore) {
        store.append(b"aaaa").unwrap();
        store.append(b"bbbb").unwrap();
        store.sync().unwrap();
        store.rotate(10).unwrap();
        store.append(b"cccc").unwrap();
        store.sync().unwrap();
        assert_eq!(store.segment_count(), 2);
        let segs = store.read_segments().unwrap();
        assert_eq!(segs, vec![b"aaaabbbb".to_vec(), b"cccc".to_vec()]);

        // GC below the second segment's first LSN removes only the first.
        assert_eq!(store.gc_before(5).unwrap(), 0, "5 < 10: nothing to drop");
        assert_eq!(store.gc_before(10).unwrap(), 1);
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.read_segments().unwrap(), vec![b"cccc".to_vec()]);
        // The active segment is never GC'd.
        assert_eq!(store.gc_before(Lsn::MAX).unwrap(), 0);
        assert_eq!(store.segment_count(), 1);
    }

    #[test]
    fn mem_store_append_rotate_gc() {
        exercise(&MemLogStore::new());
    }

    #[test]
    fn file_store_append_rotate_gc() {
        let dir = std::env::temp_dir().join(format!("cor-walstore-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = FileLogStore::open(&dir).unwrap();
        exercise(&store);
        assert!(store.describe().contains("cor-walstore"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_reopen_adopts_segments_in_order() {
        let dir = std::env::temp_dir().join(format!("cor-walreopen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = FileLogStore::open(&dir).unwrap();
            store.append(b"one").unwrap();
            store.rotate(100).unwrap();
            store.append(b"two").unwrap();
            store.sync().unwrap();
        }
        let store = FileLogStore::open(&dir).unwrap();
        assert_eq!(store.segment_count(), 2);
        assert_eq!(
            store.read_segments().unwrap(),
            vec![b"one".to_vec(), b"two".to_vec()]
        );
        // Appends continue into the last segment.
        store.append(b"-more").unwrap();
        assert_eq!(store.read_segments().unwrap()[1], b"two-more".to_vec());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_crash_loses_unsynced_tail() {
        let store = MemLogStore::new();
        store.append(b"durable").unwrap();
        store.sync().unwrap();
        store.append(b"-volatile").unwrap();
        assert_eq!(store.unsynced_bytes(), 9);
        store.crash();
        assert_eq!(store.read_segments().unwrap(), vec![b"durable".to_vec()]);
        assert_eq!(store.unsynced_bytes(), 0);
    }

    #[test]
    fn mem_store_torn_crash_chops_durable_bytes_too() {
        let store = MemLogStore::new();
        store.append(b"0123456789").unwrap();
        store.sync().unwrap();
        store.append(b"lost-anyway").unwrap();
        store.crash_torn(4);
        assert_eq!(store.read_segments().unwrap(), vec![b"012345".to_vec()]);
    }
}
