//! The write-ahead log: record appending, group commit, full-page-write
//! decisions, fuzzy checkpoints, and segment rotation/GC.
//!
//! # Full-page writes
//!
//! The torn-page hazard makes page-LSN gating alone unsound: a torn page
//! can carry a *new* LSN word over an *old* tail, so comparing LSNs
//! against it proves nothing. The fix is PostgreSQL's: the first
//! modification of a page after a checkpoint — or after the page was
//! written back to the store — is logged as a **full image**, applied
//! unconditionally at redo; only subsequent modifications within the
//! same dirty period are logged as byte-range **deltas**, gated on the
//! page LSN. Every dirty period thus starts from a trusted full image
//! that overwrites whatever a torn write left behind.
//!
//! # Group commit
//!
//! [`FsyncPolicy`] batches log syncs: `Always` syncs every append
//! (maximum durability, one fsync per update), `EveryN(n)` syncs every
//! `n` appends (group commit: updates between syncs share one fsync and
//! can be lost together in a crash), `Never` leaves syncing to the
//! WAL-before-data rule and checkpoints. Whatever the policy, the buffer
//! pool's [`WalHook::flush_to`] calls force the log down *before* any
//! page write-back, so the store never runs ahead of the durable log.

use parking_lot::{Mutex, MutexGuard};
use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cor_obs::{flight, wait};
use cor_pagestore::wal::{Lsn, WalHook, NO_LSN};
use cor_pagestore::{DiskError, PageBuf, PageId, PAGE_SIZE};

use crate::record::{decode_stream, Record, RecordBody, MAX_CHECKPOINT_DPT};
use crate::store::LogStore;

/// When the log syncs appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every record: nothing acknowledged is ever lost.
    #[default]
    Always,
    /// Group commit: sync after every `n` records. Up to `n - 1`
    /// acknowledged records can be lost in a crash; pages are still
    /// never ahead of the log (WAL-before-data syncs on demand).
    EveryN(u32),
    /// Sync only when WAL-before-data or a checkpoint demands it.
    Never,
}

/// Configuration for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Group-commit policy (default [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the active one passes this many
    /// bytes (default 1 MiB).
    pub segment_bytes: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 1 << 20,
        }
    }
}

/// Log-writer counters, snapshotted for the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStatsSnapshot {
    /// Records appended.
    pub appends: u64,
    /// Physical log syncs issued.
    pub fsyncs: u64,
    /// Serialized bytes appended.
    pub bytes: u64,
    /// Full-page-image records among the appends.
    pub images: u64,
    /// Byte-range delta records among the appends.
    pub deltas: u64,
    /// Checkpoint records among the appends.
    pub checkpoints: u64,
    /// Highest LSN appended.
    pub appended_lsn: Lsn,
    /// Highest LSN known durable.
    pub durable_lsn: Lsn,
}

/// Result of taking a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// LSN of the checkpoint record.
    pub lsn: Lsn,
    /// Redo horizon recorded by this checkpoint:
    /// `min(begin LSN, min recLSN)`, with the begin LSN captured before
    /// the dirty-page table so concurrently logged writes stay covered.
    /// Log records below it are dead and their segments eligible for GC.
    pub redo_start: Lsn,
    /// Entries in the dirty-page table (the full table, even when the
    /// stored record truncates it to [`MAX_CHECKPOINT_DPT`]).
    pub dirty_pages: usize,
    /// Whole log segments garbage-collected below the redo horizon.
    pub segments_removed: usize,
}

struct WalInner {
    /// LSN the next record will carry (starts at 1; 0 is [`NO_LSN`]).
    next_lsn: Lsn,
    /// Highest LSN appended to the store (volatile until synced).
    appended_lsn: Lsn,
    /// Highest LSN known durable.
    durable_lsn: Lsn,
    /// Pages whose current dirty period already logged a full image.
    /// Cleared at checkpoints; a page is removed when written back. A
    /// page *not* in this set logs a full image on its next write.
    imaged: HashSet<PageId>,
    /// Bytes appended to the active segment since the last rotation.
    active_seg_bytes: usize,
    /// Appends since the last sync, for [`FsyncPolicy::EveryN`].
    appends_since_sync: u32,
    /// Set when an append or sync against the store failed. A failed
    /// append may have left garbage bytes in the active segment; any
    /// record appended after that garbage would be invisible to recovery
    /// (decoding stops at the first bad frame), so the log refuses all
    /// further appends instead of silently dropping acknowledged work.
    poisoned: bool,
}

/// The write-ahead log. Cheap to share: `Arc<Wal>` implements
/// [`WalHook`] and plugs into `BufferPoolBuilder::wal`.
pub struct Wal {
    store: Arc<dyn LogStore>,
    config: WalConfig,
    inner: Mutex<WalInner>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    bytes: AtomicU64,
    images: AtomicU64,
    deltas: AtomicU64,
    checkpoints: AtomicU64,
}

impl Wal {
    /// Create a log over an *empty* store.
    pub fn new(store: Arc<dyn LogStore>, config: WalConfig) -> Self {
        Wal {
            store,
            config,
            inner: Mutex::new(WalInner {
                next_lsn: 1,
                appended_lsn: NO_LSN,
                durable_lsn: NO_LSN,
                imaged: HashSet::new(),
                active_seg_bytes: 0,
                appends_since_sync: 0,
                poisoned: false,
            }),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            images: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        }
    }

    /// Attach to a store that already holds records (e.g. after
    /// recovery): scans for the highest LSN, continues numbering after
    /// it, and rotates to a fresh segment so new records never share a
    /// segment with a possibly-torn tail. The imaged set starts empty,
    /// which is safe — it only means the first write to each page logs a
    /// full image again.
    pub fn attach(store: Arc<dyn LogStore>, config: WalConfig) -> io::Result<Self> {
        let mut max_lsn = NO_LSN;
        for seg in store.read_segments()? {
            for rec in decode_stream(&seg).records {
                max_lsn = max_lsn.max(rec.lsn);
            }
        }
        let wal = Self::new(Arc::clone(&store), config);
        if max_lsn != NO_LSN {
            {
                let mut inner = wal.inner.lock();
                inner.next_lsn = max_lsn + 1;
                inner.appended_lsn = max_lsn;
                inner.durable_lsn = max_lsn;
            }
            store.rotate(max_lsn + 1)?;
        }
        Ok(wal)
    }

    /// The backing store (recovery reads it directly).
    pub fn store(&self) -> &Arc<dyn LogStore> {
        &self.store
    }

    /// Current counter values.
    pub fn stats(&self) -> WalStatsSnapshot {
        let inner = self.inner.lock();
        WalStatsSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            images: self.images.load(Ordering::Relaxed),
            deltas: self.deltas.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            appended_lsn: inner.appended_lsn,
            durable_lsn: inner.durable_lsn,
        }
    }

    /// Highest LSN known durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.lock().durable_lsn
    }

    /// Highest LSN appended (volatile until synced).
    pub fn appended_lsn(&self) -> Lsn {
        self.inner.lock().appended_lsn
    }

    fn io_err(&self, op: &'static str, e: io::Error) -> DiskError {
        DiskError::io(op, self.store.describe(), e)
    }

    /// Acquire the log mutex on an append/flush path — the group-commit
    /// queue: writers serialize here and inherit each other's fsyncs.
    /// The acquisition time feeds the wait profile (`wal_lock` class)
    /// when profiling is on; one relaxed load otherwise.
    #[inline]
    fn lock_queue(&self) -> MutexGuard<'_, WalInner> {
        wait::timed(wait::WaitClass::WalLock, || self.inner.lock())
    }

    fn sync_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        if inner.durable_lsn == inner.appended_lsn {
            inner.appends_since_sync = 0;
            return Ok(());
        }
        if let Err(e) = wait::timed(wait::WaitClass::WalFsync, || self.store.sync()) {
            // After a failed fsync the kernel may have dropped the dirty
            // pages it could not write; a later "successful" sync would
            // prove nothing about these bytes. Fail fast from here on.
            inner.poisoned = true;
            flight::record(
                flight::FlightKind::WalPoison,
                u64::from(inner.appended_lsn),
                0,
                0,
            );
            return Err(e);
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        inner.durable_lsn = inner.appended_lsn;
        inner.appends_since_sync = 0;
        Ok(())
    }

    /// Append `body`, assigning the next LSN; rotates the segment first
    /// when the active one is over size, and applies the group-commit
    /// policy afterwards.
    fn append_record(&self, inner: &mut WalInner, body: RecordBody) -> io::Result<Lsn> {
        if inner.poisoned {
            return Err(io::Error::other(
                "write-ahead log poisoned by an earlier append/sync failure",
            ));
        }
        if inner.active_seg_bytes >= self.config.segment_bytes {
            // Close the segment durably, then start a fresh one named by
            // the LSN this record will carry.
            self.sync_locked(inner)?;
            self.store.rotate(inner.next_lsn)?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed); // rotate syncs the old segment
            inner.active_seg_bytes = 0;
        }
        let lsn = inner.next_lsn;
        let rec = Record { lsn, body };
        let mut buf = Vec::with_capacity(rec.encoded_len());
        rec.encode(&mut buf);
        if let Err(e) = self.store.append(&buf) {
            // The record may have landed partially: everything appended
            // after it would sit behind a bad frame and be dropped at
            // recovery, so no further appends may be acknowledged.
            inner.poisoned = true;
            flight::record(flight::FlightKind::WalPoison, u64::from(lsn), 0, 0);
            return Err(e);
        }
        inner.next_lsn += 1;
        inner.appended_lsn = lsn;
        inner.active_seg_bytes += buf.len();
        inner.appends_since_sync += 1;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        if flight::enabled() {
            let kind_tag = match &rec.body {
                RecordBody::PageImage { .. } => 1,
                RecordBody::PageDelta { .. } => 2,
                RecordBody::Checkpoint { .. } => 3,
            };
            flight::record(
                flight::FlightKind::WalAppend,
                u64::from(lsn),
                kind_tag,
                buf.len() as u64,
            );
        }
        match self.config.fsync {
            FsyncPolicy::Always => self.sync_locked(inner)?,
            FsyncPolicy::EveryN(n) => {
                if inner.appends_since_sync >= n {
                    self.sync_locked(inner)?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Take a fuzzy checkpoint: capture a *begin LSN*, call `capture_dpt`
    /// for the pool's dirty-page table, append a checkpoint record
    /// carrying the redo horizon `min(begin LSN, min recLSN)`, sync the
    /// log, reset the full-page-write epoch, and garbage-collect segments
    /// below the horizon.
    ///
    /// Taking the dirty-page table through a closure is what makes the
    /// checkpoint race-free against concurrent writers (ARIES
    /// begin/end-checkpoint): the begin LSN is read **before** the table
    /// is captured, so a page write logged in the window between the
    /// capture and the checkpoint append either carries an LSN `>=` the
    /// begin LSN (covered by redo regardless of the table) or finished
    /// updating its frame before the capture saw it (present in the
    /// table). The closure runs without the log lock held, so it may
    /// itself append records (the pool's frame latches order before the
    /// log lock).
    pub fn checkpoint(
        &self,
        capture_dpt: impl FnOnce() -> Vec<(PageId, Lsn)>,
    ) -> io::Result<CheckpointInfo> {
        let begin_lsn = self.inner.lock().next_lsn;
        let mut dirty_pages = capture_dpt();
        let total_dirty = dirty_pages.len();
        let redo_lsn = dirty_pages
            .iter()
            .map(|&(_, rec_lsn)| rec_lsn)
            .min()
            .unwrap_or(begin_lsn)
            .min(begin_lsn);
        dirty_pages.truncate(MAX_CHECKPOINT_DPT);
        let mut inner = self.inner.lock();
        let lsn = self.append_record(
            &mut inner,
            RecordBody::Checkpoint {
                redo_lsn,
                dirty_pages,
            },
        )?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        flight::record(
            flight::FlightKind::Checkpoint,
            u64::from(begin_lsn),
            u64::from(redo_lsn),
            u64::from(lsn),
        );
        self.sync_locked(&mut inner)?;
        // New FPW epoch: the next write to any page logs a full image,
        // so redo from this checkpoint never trusts a torn page.
        inner.imaged.clear();
        let segments_removed = self.store.gc_before(redo_lsn)?;
        Ok(CheckpointInfo {
            lsn,
            redo_start: redo_lsn,
            dirty_pages: total_dirty,
            segments_removed,
        })
    }
}

/// Compute the smallest contiguous byte range where `before` and
/// `after` differ; `None` when identical.
fn diff_range(before: &PageBuf, after: &PageBuf) -> Option<(usize, usize)> {
    let start = before.iter().zip(after.iter()).position(|(a, b)| a != b)?;
    let end = PAGE_SIZE
        - before
            .iter()
            .zip(after.iter())
            .rev()
            .position(|(a, b)| a != b)
            .expect("a difference exists");
    Some((start, end))
}

impl WalHook for Wal {
    fn log_page_write(
        &self,
        pid: PageId,
        before: &PageBuf,
        after: &PageBuf,
    ) -> Result<Lsn, DiskError> {
        let mut inner = self.lock_queue();
        // First write of a dirty period (or first since a checkpoint):
        // full image. Otherwise a delta — unless the changed range is so
        // large an image is no bigger.
        let image = if !inner.imaged.contains(&pid) {
            true
        } else {
            match diff_range(before, after) {
                None => return Ok(inner.appended_lsn.max(1)), // nothing changed; nothing to log
                Some((s, e)) => e - s + 8 >= 4 + PAGE_SIZE,
            }
        };
        let body = if image {
            RecordBody::PageImage {
                pid,
                image: Box::new(*after),
            }
        } else {
            let (s, e) = diff_range(before, after).expect("checked above");
            RecordBody::PageDelta {
                pid,
                offset: s as u16,
                bytes: after[s..e].to_vec(),
            }
        };
        // The imaged set and counters move only once the record is in the
        // store: marking the page imaged on a failed append would let the
        // next write log a delta against a baseline the log never got.
        let lsn = self
            .append_record(&mut inner, body)
            .map_err(|e| self.io_err("wal append", e))?;
        if image {
            inner.imaged.insert(pid);
            self.images.fetch_add(1, Ordering::Relaxed);
        } else {
            self.deltas.fetch_add(1, Ordering::Relaxed);
        }
        Ok(lsn)
    }

    fn log_page_image(&self, pid: PageId, image: &PageBuf) -> Result<Lsn, DiskError> {
        let mut inner = self.lock_queue();
        let lsn = self
            .append_record(
                &mut inner,
                RecordBody::PageImage {
                    pid,
                    image: Box::new(*image),
                },
            )
            .map_err(|e| self.io_err("wal append", e))?;
        inner.imaged.insert(pid);
        self.images.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    fn flush_to(&self, lsn: Lsn) -> Result<(), DiskError> {
        let mut inner = self.lock_queue();
        if inner.durable_lsn >= lsn {
            return Ok(());
        }
        self.sync_locked(&mut inner)
            .map_err(|e| self.io_err("wal sync", e))
    }

    fn page_flushed(&self, pid: PageId) {
        // The store now holds a version of this page; the next mutation
        // must re-image it (the write-back is a fresh torn-write hazard).
        self.inner.lock().imaged.remove(&pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemLogStore;

    fn buf_with(b: u8) -> PageBuf {
        [b; PAGE_SIZE]
    }

    #[test]
    fn first_write_images_then_deltas() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let zero = buf_with(0);
        let mut v1 = zero;
        v1[100..110].fill(7);
        let l1 = wal.log_page_write(3, &zero, &v1).unwrap();
        let mut v2 = v1;
        v2[200..204].fill(9);
        let l2 = wal.log_page_write(3, &v1, &v2).unwrap();
        assert!(l2 > l1);
        let s = wal.stats();
        assert_eq!((s.images, s.deltas), (1, 1));
        // Decode what landed.
        let segs = store.read_segments().unwrap();
        let recs = decode_stream(&segs[0]).records;
        assert!(matches!(recs[0].body, RecordBody::PageImage { pid: 3, .. }));
        match &recs[1].body {
            RecordBody::PageDelta { pid, offset, bytes } => {
                assert_eq!((*pid, *offset), (3, 200));
                assert_eq!(bytes, &vec![9; 4]);
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn page_flushed_and_checkpoint_reset_the_fpw_epoch() {
        let wal = Wal::new(Arc::new(MemLogStore::new()), WalConfig::default());
        let zero = buf_with(0);
        let mut v1 = zero;
        v1[0] = 1;
        wal.log_page_write(5, &zero, &v1).unwrap(); // image
        let mut v2 = v1;
        v2[1] = 2;
        wal.log_page_write(5, &v1, &v2).unwrap(); // delta
        wal.page_flushed(5);
        let mut v3 = v2;
        v3[2] = 3;
        wal.log_page_write(5, &v2, &v3).unwrap(); // image again (flushed)
        wal.checkpoint(Vec::new).unwrap();
        let mut v4 = v3;
        v4[3] = 4;
        wal.log_page_write(5, &v3, &v4).unwrap(); // image again (checkpoint)
        let s = wal.stats();
        assert_eq!((s.images, s.deltas, s.checkpoints), (3, 1, 1));
    }

    #[test]
    fn whole_page_change_prefers_an_image_over_a_max_delta() {
        let wal = Wal::new(Arc::new(MemLogStore::new()), WalConfig::default());
        let zero = buf_with(0);
        let v1 = buf_with(1);
        wal.log_page_write(1, &zero, &v1).unwrap(); // image (first)
        let v2 = buf_with(2);
        wal.log_page_write(1, &v1, &v2).unwrap(); // whole page differs -> image
        let s = wal.stats();
        assert_eq!((s.images, s.deltas), (2, 0));
    }

    #[test]
    fn fsync_policies_batch_syncs() {
        let run = |fsync: FsyncPolicy, writes: u32| {
            let wal = Wal::new(
                Arc::new(MemLogStore::new()),
                WalConfig {
                    fsync,
                    ..WalConfig::default()
                },
            );
            let zero = buf_with(0);
            for i in 0..writes {
                let mut v = zero;
                v[i as usize] = 1;
                wal.log_page_write(i, &zero, &v).unwrap();
            }
            wal.stats()
        };
        assert_eq!(run(FsyncPolicy::Always, 10).fsyncs, 10);
        let grouped = run(FsyncPolicy::EveryN(4), 10);
        assert_eq!(grouped.fsyncs, 2, "10 appends / batch of 4 = 2 syncs");
        assert!(grouped.durable_lsn < grouped.appended_lsn);
        let never = run(FsyncPolicy::Never, 10);
        assert_eq!(never.fsyncs, 0);
        assert_eq!(never.durable_lsn, NO_LSN);
    }

    #[test]
    fn flush_to_is_idempotent_and_monotone() {
        let wal = Wal::new(
            Arc::new(MemLogStore::new()),
            WalConfig {
                fsync: FsyncPolicy::Never,
                ..WalConfig::default()
            },
        );
        let zero = buf_with(0);
        let mut v = zero;
        v[9] = 9;
        let lsn = wal.log_page_write(2, &zero, &v).unwrap();
        assert_eq!(wal.durable_lsn(), NO_LSN);
        wal.flush_to(lsn).unwrap();
        assert_eq!(wal.durable_lsn(), lsn);
        let fsyncs = wal.stats().fsyncs;
        wal.flush_to(lsn).unwrap(); // already durable: no extra sync
        assert_eq!(wal.stats().fsyncs, fsyncs);
    }

    #[test]
    fn segment_rotation_and_checkpoint_gc() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(
            store.clone(),
            WalConfig {
                fsync: FsyncPolicy::Always,
                segment_bytes: 4096, // ~2 image records per segment
            },
        );
        let zero = buf_with(0);
        for pid in 0..8 {
            let mut v = zero;
            v[0] = pid as u8 + 1;
            wal.log_page_write(pid, &zero, &v).unwrap();
            wal.page_flushed(pid); // keep every record an image
        }
        assert!(store.segment_count() > 2, "rotation must have happened");
        // All pages clean: the checkpoint's redo horizon is its own LSN,
        // so every older segment is garbage.
        let info = wal.checkpoint(Vec::new).unwrap();
        assert_eq!(info.dirty_pages, 0);
        assert!(info.segments_removed >= 2, "{info:?}");
        assert_eq!(store.segment_count(), 1);
        // A dirty-page table holds the horizon back.
        let mut v = zero;
        v[0] = 0xEE;
        let lsn = wal.log_page_write(9, &zero, &v).unwrap();
        let info = wal.checkpoint(|| vec![(9, lsn)]).unwrap();
        assert_eq!(info.redo_start, lsn);
        assert_eq!(info.dirty_pages, 1);
    }

    #[test]
    fn checkpoint_covers_writes_raced_during_dpt_capture() {
        // A writer that logs between the checkpoint's begin-LSN capture
        // and its record append — and is missed by the captured DPT —
        // must still land above the redo horizon.
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let zero = buf_with(0);
        let mut v = zero;
        v[0] = 7;
        let mut raced_lsn = NO_LSN;
        let info = wal
            .checkpoint(|| {
                raced_lsn = wal.log_page_write(3, &zero, &v).unwrap();
                Vec::new() // the snapshot predates the raced write
            })
            .unwrap();
        assert_ne!(raced_lsn, NO_LSN);
        assert!(
            info.redo_start <= raced_lsn,
            "redo horizon {} must not skip the raced write at {}",
            info.redo_start,
            raced_lsn
        );
        assert!(info.lsn > raced_lsn, "checkpoint record appends after");
        // The raced record's segment must have survived GC.
        let recs: Vec<Record> = store
            .read_segments()
            .unwrap()
            .iter()
            .flat_map(|s| decode_stream(s).records)
            .collect();
        assert!(recs.iter().any(|r| r.lsn == raced_lsn));
    }

    #[test]
    fn oversized_dpt_is_capped_in_the_record_but_not_the_horizon() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        // Push next_lsn past the table's recLSNs so the horizon comes
        // from the table, not the begin LSN.
        let zero = buf_with(0);
        for pid in 0..8 {
            let mut v = zero;
            v[0] = pid as u8 + 1;
            wal.log_page_write(pid, &zero, &v).unwrap();
        }
        let dpt: Vec<(PageId, Lsn)> = (0..(MAX_CHECKPOINT_DPT as u32 + 10))
            .map(|i| (i, i + 5))
            .collect();
        let info = wal.checkpoint(|| dpt.clone()).unwrap();
        assert_eq!(info.dirty_pages, MAX_CHECKPOINT_DPT + 10);
        assert_eq!(info.redo_start, 5, "horizon from the full table");
        let recs: Vec<Record> = store
            .read_segments()
            .unwrap()
            .iter()
            .flat_map(|s| decode_stream(s).records)
            .collect();
        match &recs.last().unwrap().body {
            RecordBody::Checkpoint {
                redo_lsn,
                dirty_pages,
            } => {
                assert_eq!(*redo_lsn, 5);
                assert_eq!(dirty_pages.len(), MAX_CHECKPOINT_DPT, "stored copy capped");
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }

    /// A store that can be told to fail its next append, then heals.
    struct FlakyStore {
        inner: MemLogStore,
        fail_next_append: std::sync::atomic::AtomicBool,
    }

    impl FlakyStore {
        fn new() -> Self {
            FlakyStore {
                inner: MemLogStore::new(),
                fail_next_append: std::sync::atomic::AtomicBool::new(false),
            }
        }
    }

    impl LogStore for FlakyStore {
        fn append(&self, bytes: &[u8]) -> io::Result<()> {
            if self.fail_next_append.swap(false, Ordering::SeqCst) {
                return Err(io::Error::other("injected append failure"));
            }
            self.inner.append(bytes)
        }
        fn sync(&self) -> io::Result<()> {
            self.inner.sync()
        }
        fn rotate(&self, first_lsn: Lsn) -> io::Result<()> {
            self.inner.rotate(first_lsn)
        }
        fn gc_before(&self, lsn: Lsn) -> io::Result<usize> {
            self.inner.gc_before(lsn)
        }
        fn read_segments(&self) -> io::Result<Vec<Vec<u8>>> {
            self.inner.read_segments()
        }
        fn segment_count(&self) -> usize {
            self.inner.segment_count()
        }
        fn describe(&self) -> String {
            "flaky-log".to_string()
        }
    }

    #[test]
    fn append_failure_poisons_the_log_and_skips_the_imaged_set() {
        let store = Arc::new(FlakyStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let zero = buf_with(0);
        let mut v1 = zero;
        v1[0] = 1;
        wal.log_page_write(4, &zero, &v1).unwrap(); // image, healthy
        store.fail_next_append.store(true, Ordering::SeqCst);
        let mut v2 = v1;
        v2[1] = 2;
        assert!(wal.log_page_write(4, &v1, &v2).is_err());
        // The store healed, but the log stays poisoned: the failed append
        // may have left garbage framing in the active segment.
        let mut v3 = v2;
        v3[2] = 3;
        let err = wal.log_page_write(4, &v2, &v3).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(wal.checkpoint(Vec::new).is_err());
        // Only the successful record moved the counters.
        let s = wal.stats();
        assert_eq!((s.appends, s.images, s.deltas), (1, 1, 0));
    }

    #[test]
    fn failed_image_append_does_not_move_the_counters() {
        let store = Arc::new(FlakyStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        store.fail_next_append.store(true, Ordering::SeqCst);
        let zero = buf_with(0);
        assert!(wal.log_page_image(6, &zero).is_err());
        let s = wal.stats();
        assert_eq!((s.appends, s.images, s.appended_lsn), (0, 0, NO_LSN));
    }

    #[test]
    fn attach_continues_lsn_numbering_after_existing_records() {
        let store = Arc::new(MemLogStore::new());
        let last = {
            let wal = Wal::new(store.clone(), WalConfig::default());
            let zero = buf_with(0);
            let mut v = zero;
            v[0] = 1;
            wal.log_page_write(0, &zero, &v).unwrap();
            let mut v2 = v;
            v2[1] = 2;
            wal.log_page_write(0, &v, &v2).unwrap()
        };
        let wal = Wal::attach(store.clone(), WalConfig::default()).unwrap();
        assert_eq!(wal.appended_lsn(), last);
        let zero = buf_with(0);
        let mut v = zero;
        v[5] = 5;
        let next = wal.log_page_write(1, &zero, &v).unwrap();
        assert_eq!(next, last + 1, "numbering continues");
        assert!(store.segment_count() >= 2, "fresh segment after attach");
    }
}
