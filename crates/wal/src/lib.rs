//! Write-ahead logging and ARIES-lite crash recovery for the complex
//! object store.
//!
//! The crate provides the durability half of the WAL protocol whose
//! enforcement half lives in `cor-pagestore` (per-page LSNs, the
//! [`WalHook`](cor_pagestore::wal::WalHook) seam, and the
//! WAL-before-data flush rule inside the buffer pool):
//!
//! * [`record`] — the on-log record format: CRC-framed full-page
//!   images, byte-range deltas, and checkpoint records.
//! * [`store`] — where the byte stream lives: [`MemLogStore`] (crash
//!   simulation with a durable watermark) and [`FileLogStore`]
//!   (segment files + `fdatasync`).
//! * [`log`] — [`Wal`], the append path: group commit via
//!   [`FsyncPolicy`], PostgreSQL-style full-page-write tracking,
//!   segment rotation, and checkpoint-driven garbage collection.
//! * [`recovery`] — [`recover`], the redo-only replay pass that
//!   rebuilds pages byte-identically after a crash.
//! * [`crc`] — the self-contained CRC-32 used by the record framing.
//!
//! The intended wiring: build a [`Wal`] over a [`LogStore`], hand it to
//! the buffer pool as its `WalHook`, call
//! [`Wal::checkpoint`] periodically with the pool's dirty-page table,
//! and after a crash run [`recover`] over the surviving store before
//! reopening.

#![warn(missing_docs)]

pub mod crc;
pub mod log;
pub mod record;
pub mod recovery;
pub mod store;

pub use cor_pagestore::wal::{Lsn, WalHook, NO_LSN};
pub use log::{CheckpointInfo, FsyncPolicy, Wal, WalConfig, WalStatsSnapshot};
pub use record::{decode_stream, DecodedStream, Record, RecordBody};
pub use recovery::{recover, RecoveryError, RecoveryStats};
pub use store::{FileLogStore, LogStore, MemLogStore};
