//! Log record format.
//!
//! Every record is framed as
//!
//! ```text
//! +-----------+----------+----------+---------+------------------+
//! | crc32 u32 | len  u32 | lsn  u32 | kind u8 | payload[len] ... |
//! +-----------+----------+----------+---------+------------------+
//! ```
//!
//! (all little-endian), with the CRC covering `len | lsn | kind |
//! payload`. Three record kinds exist:
//!
//! * **PageImage** — a full 2 KB after-image of one page. Written for
//!   the *first* modification of a page after a checkpoint or after a
//!   write-back (PostgreSQL-style full-page writes), and for freshly
//!   allocated pages. Redo applies images **unconditionally**: a torn
//!   page's LSN word is untrustworthy, so image records — not LSN
//!   comparisons — are what make torn pages recoverable.
//! * **PageDelta** — one contiguous changed byte range of a page.
//!   Written for subsequent modifications within a dirty period. Redo
//!   applies deltas gated on the page LSN (`page_lsn >= rec.lsn` ⇒
//!   skip), which makes replay idempotent.
//! * **Checkpoint** — the redo horizon plus the dirty-page table
//!   `(page_id, recLSN)*` at checkpoint time. The horizon (`redo_lsn`)
//!   is computed by the writer as `min(begin LSN, min recLSN)`, where
//!   the *begin LSN* was captured **before** the dirty-page table — so a
//!   page write raced between the capture and the checkpoint append is
//!   still covered by redo even though it is missing from the table.
//!   Recovery starts redo from the `redo_lsn` of the *last* complete
//!   checkpoint. The stored table is diagnostic (the horizon is explicit)
//!   and is capped at [`MAX_CHECKPOINT_DPT`] entries so every checkpoint
//!   record stays decodable.

use crate::crc::crc32;
use cor_pagestore::wal::Lsn;
use cor_pagestore::{PageBuf, PageId, PAGE_SIZE};

/// Framing bytes before the payload: crc (4) + len (4) + lsn (4) + kind (1).
pub const RECORD_HEADER: usize = 13;

/// Upper bound on a sane payload length; anything larger is treated as
/// tail corruption rather than attempted as an allocation.
const MAX_PAYLOAD: usize = PAGE_SIZE + 64 + 16 * 65536;

/// Most dirty-page-table entries a checkpoint record stores. The redo
/// horizon travels in the record's explicit `redo_lsn` — always computed
/// over the *full* table — so truncating the stored copy loses only
/// diagnostics, never correctness. The cap keeps the largest checkpoint
/// payload (8 + 8 × 65 536 bytes) comfortably under [`MAX_PAYLOAD`], so
/// a pool with millions of frames can still emit decodable checkpoints.
pub const MAX_CHECKPOINT_DPT: usize = 65_536;

const KIND_IMAGE: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;

/// A decoded log record body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordBody {
    /// Full after-image of a page; applied unconditionally at redo.
    PageImage {
        /// The page the image belongs to.
        pid: PageId,
        /// The full page contents after the logged mutation.
        image: Box<PageBuf>,
    },
    /// One contiguous changed byte range; applied iff `page_lsn < lsn`.
    PageDelta {
        /// The page the delta belongs to.
        pid: PageId,
        /// Byte offset of the changed range within the page.
        offset: u16,
        /// The changed bytes (after-image of the range).
        bytes: Vec<u8>,
    },
    /// Redo horizon + dirty-page table at checkpoint time.
    Checkpoint {
        /// Where redo must start for this checkpoint to be complete:
        /// `min(begin LSN, min recLSN over the full dirty-page table)`,
        /// with the begin LSN captured before the table (see module
        /// docs). Always `<=` the record's own LSN.
        redo_lsn: Lsn,
        /// `(page_id, recLSN)` for pages dirty in the pool when the
        /// checkpoint was taken; diagnostic, truncated to
        /// [`MAX_CHECKPOINT_DPT`] entries by the writer.
        dirty_pages: Vec<(PageId, Lsn)>,
    },
}

/// A decoded log record: LSN plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The decoded body.
    pub body: RecordBody,
}

impl Record {
    /// Serialize the record into `out` with framing and CRC.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let (kind, payload) = match &self.body {
            RecordBody::PageImage { pid, image } => {
                let mut p = Vec::with_capacity(4 + PAGE_SIZE);
                p.extend_from_slice(&pid.to_le_bytes());
                p.extend_from_slice(&image[..]);
                (KIND_IMAGE, p)
            }
            RecordBody::PageDelta { pid, offset, bytes } => {
                let mut p = Vec::with_capacity(8 + bytes.len());
                p.extend_from_slice(&pid.to_le_bytes());
                p.extend_from_slice(&offset.to_le_bytes());
                p.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                p.extend_from_slice(bytes);
                (KIND_DELTA, p)
            }
            RecordBody::Checkpoint {
                redo_lsn,
                dirty_pages,
            } => {
                let mut p = Vec::with_capacity(8 + 8 * dirty_pages.len());
                p.extend_from_slice(&redo_lsn.to_le_bytes());
                p.extend_from_slice(&(dirty_pages.len() as u32).to_le_bytes());
                for (pid, rec_lsn) in dirty_pages {
                    p.extend_from_slice(&pid.to_le_bytes());
                    p.extend_from_slice(&rec_lsn.to_le_bytes());
                }
                (KIND_CHECKPOINT, p)
            }
        };
        let mut covered = Vec::with_capacity(RECORD_HEADER - 4 + payload.len());
        covered.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        covered.extend_from_slice(&self.lsn.to_le_bytes());
        covered.push(kind);
        covered.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&covered).to_le_bytes());
        out.extend_from_slice(&covered);
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER
            + match &self.body {
                RecordBody::PageImage { .. } => 4 + PAGE_SIZE,
                RecordBody::PageDelta { bytes, .. } => 8 + bytes.len(),
                RecordBody::Checkpoint { dirty_pages, .. } => 8 + 8 * dirty_pages.len(),
            }
    }
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

/// Outcome of decoding one contiguous byte stream of records.
#[derive(Debug)]
pub struct DecodedStream {
    /// Records decoded, in log order.
    pub records: Vec<Record>,
    /// Bytes consumed by complete, CRC-valid records.
    pub consumed: usize,
    /// `true` when decoding stopped before the end of the input — a
    /// torn or corrupt tail follows `consumed`.
    pub torn_tail: bool,
}

/// Decode records from `bytes` until the stream ends or a torn/corrupt
/// record is hit. A short header, short payload, oversized length, bad
/// CRC, or unknown kind all stop decoding — after a crash the log is
/// expected to end mid-record, and everything from that point on is
/// discarded by recovery.
pub fn decode_stream(bytes: &[u8]) -> DecodedStream {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= RECORD_HEADER {
        let crc = read_u32(bytes, at);
        let len = read_u32(bytes, at + 4) as usize;
        let lsn = read_u32(bytes, at + 8);
        let kind = bytes[at + 12];
        if len > MAX_PAYLOAD || bytes.len() - at - RECORD_HEADER < len {
            break;
        }
        let covered = &bytes[at + 4..at + RECORD_HEADER + len];
        if crc32(covered) != crc {
            break;
        }
        let payload = &bytes[at + RECORD_HEADER..at + RECORD_HEADER + len];
        let body = match kind {
            KIND_IMAGE if len == 4 + PAGE_SIZE => {
                let pid = read_u32(payload, 0);
                let mut image = Box::new([0u8; PAGE_SIZE]);
                image.copy_from_slice(&payload[4..]);
                RecordBody::PageImage { pid, image }
            }
            KIND_DELTA if len >= 8 => {
                let pid = read_u32(payload, 0);
                let offset = read_u16(payload, 4);
                let n = read_u16(payload, 6) as usize;
                if len != 8 + n || offset as usize + n > PAGE_SIZE {
                    break;
                }
                RecordBody::PageDelta {
                    pid,
                    offset,
                    bytes: payload[8..].to_vec(),
                }
            }
            KIND_CHECKPOINT if len >= 8 => {
                let redo_lsn = read_u32(payload, 0);
                let n = read_u32(payload, 4) as usize;
                if n > MAX_CHECKPOINT_DPT || len != 8 + 8 * n {
                    break;
                }
                let dirty_pages = (0..n)
                    .map(|i| {
                        (
                            read_u32(payload, 8 + 8 * i),
                            read_u32(payload, 8 + 8 * i + 4),
                        )
                    })
                    .collect();
                RecordBody::Checkpoint {
                    redo_lsn,
                    dirty_pages,
                }
            }
            _ => break,
        };
        records.push(Record { lsn, body });
        at += RECORD_HEADER + len;
    }
    DecodedStream {
        records,
        consumed: at,
        torn_tail: at != bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        let mut image = Box::new([0u8; PAGE_SIZE]);
        image[0] = 0xAA;
        image[PAGE_SIZE - 1] = 0xBB;
        vec![
            Record {
                lsn: 1,
                body: RecordBody::PageImage { pid: 7, image },
            },
            Record {
                lsn: 2,
                body: RecordBody::PageDelta {
                    pid: 7,
                    offset: 100,
                    bytes: vec![1, 2, 3, 4, 5],
                },
            },
            Record {
                lsn: 3,
                body: RecordBody::Checkpoint {
                    redo_lsn: 1,
                    dirty_pages: vec![(7, 2), (9, 1)],
                },
            },
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        let records = sample_records();
        let mut buf = Vec::new();
        for r in &records {
            let before = buf.len();
            r.encode(&mut buf);
            assert_eq!(buf.len() - before, r.encoded_len());
        }
        let out = decode_stream(&buf);
        assert!(!out.torn_tail);
        assert_eq!(out.consumed, buf.len());
        assert_eq!(out.records, records);
    }

    #[test]
    fn empty_and_sub_header_streams_decode_to_nothing() {
        let out = decode_stream(&[]);
        assert!(out.records.is_empty() && !out.torn_tail);
        let out = decode_stream(&[1, 2, 3]);
        assert!(out.records.is_empty() && out.torn_tail);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let records = sample_records();
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        // Chop mid-way through the last record.
        let chopped = buf.len() - 9;
        let out = decode_stream(&buf[..chopped]);
        assert!(out.torn_tail);
        assert_eq!(out.records, records[..2].to_vec());
    }

    #[test]
    fn corrupt_record_stops_decoding() {
        let records = sample_records();
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        // Flip a payload byte of the second record: record 1 survives,
        // decoding stops at the corruption.
        let second_start = records[0].encoded_len();
        buf[second_start + RECORD_HEADER + 2] ^= 0xFF;
        let out = decode_stream(&buf);
        assert!(out.torn_tail);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0], records[0]);
        assert_eq!(out.consumed, second_start);
    }

    #[test]
    fn insane_length_field_is_rejected() {
        let mut buf = Vec::new();
        sample_records()[1].encode(&mut buf);
        // Overwrite the length with something absurd; CRC would also fail,
        // but the length guard must reject it before any huge allocation.
        buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let out = decode_stream(&buf);
        assert!(out.records.is_empty() && out.torn_tail);
    }

    #[test]
    fn checkpoint_dpt_over_the_cap_is_rejected_at_decode() {
        // The writer never emits more than MAX_CHECKPOINT_DPT entries;
        // a stream claiming more is treated as corruption, not as a
        // request for an unbounded allocation.
        let r = Record {
            lsn: 9,
            body: RecordBody::Checkpoint {
                redo_lsn: 1,
                dirty_pages: (0..(MAX_CHECKPOINT_DPT as u32 + 1))
                    .map(|i| (i, i))
                    .collect(),
            },
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let out = decode_stream(&buf);
        assert!(out.records.is_empty() && out.torn_tail);
        // At exactly the cap the record round-trips.
        let r = Record {
            lsn: 9,
            body: RecordBody::Checkpoint {
                redo_lsn: 1,
                dirty_pages: (0..MAX_CHECKPOINT_DPT as u32).map(|i| (i, i)).collect(),
            },
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let out = decode_stream(&buf);
        assert!(!out.torn_tail);
        assert_eq!(out.records, vec![r]);
    }

    #[test]
    fn delta_range_must_stay_inside_the_page() {
        let r = Record {
            lsn: 5,
            body: RecordBody::PageDelta {
                pid: 1,
                offset: (PAGE_SIZE - 2) as u16,
                bytes: vec![0; 8], // would run past the page end
            },
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let out = decode_stream(&buf);
        assert!(out.records.is_empty() && out.torn_tail);
    }
}
