//! ARIES-lite redo-only recovery.
//!
//! The engine has no multi-page transactions to roll back — the redo
//! unit is the individual logged page write — so recovery is a pure
//! redo pass:
//!
//! 1. **Analysis**: read every surviving segment, decode records until
//!    the (expected) torn tail, and find the *last* checkpoint record.
//!    The redo horizon is the checkpoint's recorded `redo_lsn` —
//!    computed by the writer as `min(begin LSN, min recLSN)` with the
//!    begin LSN captured *before* the dirty-page table, so page writes
//!    raced against the checkpoint are always covered; with no
//!    checkpoint, redo starts at the first record.
//! 2. **Redo**: walk records with `lsn >= redo_start` in log order.
//!    Full-page images are applied **unconditionally** (a torn page's
//!    LSN word cannot be trusted; images are what repair torn pages).
//!    Deltas are gated on the page LSN — applied only when
//!    `page_lsn < lsn` — which makes replay idempotent: re-running
//!    recovery reproduces byte-identical pages.
//!
//! After each applied record the page is stamped with the record's LSN,
//! mirroring what the buffer pool did at logging time, so recovered
//! pages are byte-identical to the pages an uncrashed run would have
//! written.

use std::io;

use cor_pagestore::wal::Lsn;
use cor_pagestore::{DiskError, DiskManager, PageMut, PageView, PAGE_SIZE};

use crate::record::{decode_stream, Record, RecordBody};
use crate::store::LogStore;

/// Errors surfaced by [`recover`].
#[derive(Debug)]
pub enum RecoveryError {
    /// The log store could not be read.
    Store(io::Error),
    /// A non-final segment has a corrupt or truncated record stream.
    /// Only the *last* segment may legitimately end mid-record (the
    /// crash tore it); corruption earlier in the log is unrecoverable
    /// with redo alone.
    CorruptSegment {
        /// Index of the corrupt segment in log order.
        segment: usize,
    },
    /// Applying a record to the page store failed.
    Disk(DiskError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Store(e) => write!(f, "log store unreadable: {e}"),
            RecoveryError::CorruptSegment { segment } => {
                write!(
                    f,
                    "log segment {segment} is corrupt before the final segment"
                )
            }
            RecoveryError::Disk(e) => write!(f, "page store failed during redo: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Store(e) => Some(e),
            RecoveryError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for RecoveryError {
    fn from(e: DiskError) -> Self {
        RecoveryError::Disk(e)
    }
}

/// What a [`recover`] pass did, for reports and the metrics exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Records decoded across all segments.
    pub records_scanned: u64,
    /// LSN of the last complete checkpoint found, if any.
    pub checkpoint_lsn: Option<Lsn>,
    /// First LSN redo considered.
    pub redo_start: Lsn,
    /// Full-page images applied (always unconditional).
    pub images_applied: u64,
    /// Deltas applied because the page LSN was older than the record.
    pub deltas_applied: u64,
    /// Deltas skipped because the page already carried the record's
    /// effects (`page_lsn >= lsn`).
    pub deltas_skipped: u64,
    /// Bytes dropped from the torn tail of the final segment.
    pub tail_dropped_bytes: u64,
    /// Pages appended to the store because redo referenced pages beyond
    /// its end (allocations whose extension never made it to the store).
    pub pages_extended: u64,
}

/// Replay the log in `store` onto `disk`. Returns what was done.
///
/// Safe to run on a clean store (redo finds every page already current
/// and skips deltas; images re-apply to identical bytes) and safe to run
/// twice — the second pass reconstructs byte-identical pages.
pub fn recover(
    disk: &dyn DiskManager,
    store: &dyn LogStore,
) -> Result<RecoveryStats, RecoveryError> {
    let segments = store.read_segments().map_err(RecoveryError::Store)?;
    let mut stats = RecoveryStats::default();
    let mut records: Vec<Record> = Vec::new();
    let last = segments.len().saturating_sub(1);
    for (i, seg) in segments.iter().enumerate() {
        let decoded = decode_stream(seg);
        if decoded.torn_tail {
            if i != last {
                return Err(RecoveryError::CorruptSegment { segment: i });
            }
            stats.tail_dropped_bytes = (seg.len() - decoded.consumed) as u64;
        }
        records.extend(decoded.records);
    }
    stats.records_scanned = records.len() as u64;

    // Analysis: the redo horizon from the last complete checkpoint. The
    // record carries it explicitly (clamped to the record's own LSN for
    // defense in depth); the stored dirty-page table is diagnostic only.
    let mut redo_start = records.first().map_or(Lsn::MAX, |r| r.lsn);
    for rec in &records {
        if let RecordBody::Checkpoint { redo_lsn, .. } = &rec.body {
            stats.checkpoint_lsn = Some(rec.lsn);
            redo_start = (*redo_lsn).min(rec.lsn);
        }
    }
    stats.redo_start = if records.is_empty() { 0 } else { redo_start };

    // Redo.
    let mut buf = [0u8; PAGE_SIZE];
    for rec in &records {
        if rec.lsn < redo_start {
            continue;
        }
        match &rec.body {
            RecordBody::Checkpoint { .. } => {}
            RecordBody::PageImage { pid, image } => {
                extend_to(disk, *pid, &mut stats)?;
                buf.copy_from_slice(&image[..]);
                PageMut::new(&mut buf).set_lsn(rec.lsn);
                disk.write_page(*pid, &buf)?;
                stats.images_applied += 1;
            }
            RecordBody::PageDelta { pid, offset, bytes } => {
                extend_to(disk, *pid, &mut stats)?;
                disk.read_page(*pid, &mut buf)?;
                if PageView::new(&buf).lsn() >= rec.lsn {
                    stats.deltas_skipped += 1;
                    continue;
                }
                let at = *offset as usize;
                buf[at..at + bytes.len()].copy_from_slice(bytes);
                PageMut::new(&mut buf).set_lsn(rec.lsn);
                disk.write_page(*pid, &buf)?;
                stats.deltas_applied += 1;
            }
        }
    }
    Ok(stats)
}

/// Grow the store until `pid` is addressable (the crash may have lost
/// in-memory allocations whose backing extension never happened).
fn extend_to(disk: &dyn DiskManager, pid: u32, stats: &mut RecoveryStats) -> Result<(), DiskError> {
    while disk.num_pages() <= pid {
        disk.allocate_page()?;
        stats.pages_extended += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Wal, WalConfig};
    use crate::store::MemLogStore;
    use cor_pagestore::wal::WalHook;
    use cor_pagestore::{MemDisk, PageBuf};
    use std::sync::Arc;

    fn page_bytes(disk: &dyn DiskManager, pid: u32) -> PageBuf {
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(pid, &mut buf).unwrap();
        buf
    }

    /// Drive the WAL by hand the way the pool would: log, then stamp.
    fn logged_write(wal: &Wal, page: &mut PageBuf, pid: u32, f: impl FnOnce(&mut PageBuf)) {
        let pre = *page;
        f(page);
        if pre[..] != page[..] {
            let lsn = wal.log_page_write(pid, &pre, page).unwrap();
            PageMut::new(&mut page[..]).set_lsn(lsn);
        }
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let disk = MemDisk::new();
        let store = MemLogStore::new();
        let stats = recover(&disk, &store).unwrap();
        assert_eq!(stats, RecoveryStats::default());
    }

    #[test]
    fn redo_rebuilds_lost_pages_from_images_and_deltas() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        // "In-memory" page that never reaches the data store (all writes
        // lost in the crash), only the log survives.
        let mut page = [0u8; PAGE_SIZE];
        logged_write(&wal, &mut page, 0, |p| p[0..4].fill(1)); // image
        logged_write(&wal, &mut page, 0, |p| p[100..104].fill(2)); // delta
        logged_write(&wal, &mut page, 0, |p| p[200..204].fill(3)); // delta

        let disk = MemDisk::new(); // empty: page 0 never written back
        let stats = recover(&disk, store.as_ref()).unwrap();
        assert_eq!(stats.images_applied, 1);
        assert_eq!(stats.deltas_applied, 2);
        assert_eq!(stats.pages_extended, 1);
        assert_eq!(page_bytes(&disk, 0), page, "byte-identical reconstruction");
    }

    #[test]
    fn double_recovery_is_byte_identical() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let mut page = [0u8; PAGE_SIZE];
        logged_write(&wal, &mut page, 2, |p| p[0..8].fill(0xAB));
        logged_write(&wal, &mut page, 2, |p| p[50..60].fill(0xCD));

        let disk = MemDisk::new();
        recover(&disk, store.as_ref()).unwrap();
        let first = page_bytes(&disk, 2);
        let stats = recover(&disk, store.as_ref()).unwrap();
        assert_eq!(page_bytes(&disk, 2), first);
        // The image re-applies unconditionally and resets the page LSN
        // below the deltas, so they re-apply too — still byte-identical.
        assert_eq!(stats.images_applied, 1);
        assert_eq!(stats.deltas_applied, 1);
    }

    #[test]
    fn deltas_already_on_disk_are_skipped() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let disk = MemDisk::new();
        disk.allocate_page().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        logged_write(&wal, &mut page, 0, |p| p[0..4].fill(7));
        logged_write(&wal, &mut page, 0, |p| p[10..14].fill(8));
        // The page made it to disk (write-back happened before the crash).
        disk.write_page(0, &page).unwrap();

        let stats = recover(&disk, store.as_ref()).unwrap();
        // Image applies unconditionally; the delta then re-applies since
        // the image reset the page LSN. Final bytes unchanged.
        assert_eq!(page_bytes(&disk, 0), page);
        assert!(stats.images_applied == 1);

        // A *later* delta against a current page is skipped: replay only
        // the delta portion of the log by checkpointing past the image.
        let mut page2 = page;
        logged_write(&wal, &mut page2, 0, |p| p[20..24].fill(9));
        disk.write_page(0, &page2).unwrap();
        wal.checkpoint(Vec::new).unwrap(); // empty DPT: redo starts at the checkpoint
        let mut page3 = page2;
        // After a checkpoint the next write images; flush it to disk too,
        // then append one pure delta that is ALSO already on disk.
        logged_write(&wal, &mut page3, 0, |p| p[30..34].fill(1)); // image (post-ckpt)
        logged_write(&wal, &mut page3, 0, |p| p[40..44].fill(2)); // delta
        disk.write_page(0, &page3).unwrap();
        let stats = recover(&disk, store.as_ref()).unwrap();
        assert_eq!(stats.deltas_skipped, 0, "image reset precedes the delta");
        assert_eq!(page_bytes(&disk, 0), page3);
    }

    #[test]
    fn recovery_starts_at_the_last_checkpoints_horizon() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let mut page = [0u8; PAGE_SIZE];
        logged_write(&wal, &mut page, 1, |p| p[0] = 1);
        wal.checkpoint(Vec::new).unwrap();
        let mut p4 = [0u8; PAGE_SIZE];
        logged_write(&wal, &mut p4, 4, |p| p[0] = 4);

        let disk = MemDisk::new();
        // Page 1's image precedes the checkpoint: not replayed. Only
        // page 4 is reconstructed; page 1 stays whatever the store holds
        // (here: it gets extended as a zero page on the way to page 4).
        let stats = recover(&disk, store.as_ref()).unwrap();
        assert_eq!(stats.checkpoint_lsn, Some(2));
        assert_eq!(stats.redo_start, 2);
        assert_eq!(stats.images_applied, 1, "only page 4's image");
        assert_eq!(page_bytes(&disk, 4), p4);
        assert!(page_bytes(&disk, 1).iter().all(|&b| b == 0));
    }

    #[test]
    fn write_raced_against_a_checkpoint_is_replayed() {
        // The write is logged between the checkpoint's begin-LSN capture
        // and its record append, and the DPT snapshot misses it; the
        // crash then loses the dirty frame. The recorded redo horizon
        // must still reach back to the raced record.
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let mut page = [0u8; PAGE_SIZE];
        wal.checkpoint(|| {
            logged_write(&wal, &mut page, 0, |p| p[0..4].fill(9));
            Vec::new()
        })
        .unwrap();

        let disk = MemDisk::new(); // dirty frame never hit the store
        let stats = recover(&disk, store.as_ref()).unwrap();
        assert_eq!(stats.images_applied, 1, "raced record replayed");
        assert_eq!(page_bytes(&disk, 0), page, "acknowledged write survives");
    }

    #[test]
    fn torn_log_tail_is_dropped_cleanly() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let mut page = [0u8; PAGE_SIZE];
        logged_write(&wal, &mut page, 0, |p| p[0] = 1);
        let before_torn = page;
        logged_write(&wal, &mut page, 0, |p| p[1] = 2);
        // Tear the last record's final bytes out of the durable log.
        store.crash_torn(5);

        let disk = MemDisk::new();
        let stats = recover(&disk, store.as_ref()).unwrap();
        assert!(stats.tail_dropped_bytes > 0);
        assert_eq!(stats.records_scanned, 1, "second record is gone");
        assert_eq!(page_bytes(&disk, 0), before_torn);
    }

    #[test]
    fn corruption_before_the_final_segment_is_fatal() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone(), WalConfig::default());
        let mut page = [0u8; PAGE_SIZE];
        logged_write(&wal, &mut page, 0, |p| p[0] = 1);
        store.crash_torn(3); // tear segment 0...
        store.rotate(99).unwrap(); // ...then make it non-final
        store.append(b"").unwrap();
        let disk = MemDisk::new();
        match recover(&disk, store.as_ref()) {
            Err(RecoveryError::CorruptSegment { segment: 0 }) => {}
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
    }
}
