//! Property tests for the WAL + recovery pipeline: a buffer pool with a
//! WAL attached runs a random op sequence, "crashes" at a random point
//! (dirty frames lost, only the durable log and flushed pages survive),
//! and recovery must rebuild every allocated page byte-identically.
//! Running recovery a second time must be a no-op in outcome.

use cor_pagestore::{BufferPool, MemDisk, PageBuf, PageId, PAGE_SIZE};
use cor_wal::{recover, FsyncPolicy, MemLogStore, Wal, WalConfig};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum WalOp {
    /// Allocate a fresh page.
    Allocate,
    /// Write `len` copies of `val` at `off` into an existing page.
    Write {
        page: usize,
        off: usize,
        len: usize,
        val: u8,
    },
    /// Checkpoint with the pool's dirty-page table (rotates + GCs).
    Checkpoint,
    /// Force one page's write-back (exercises WAL-before-data and the
    /// full-page-write epoch reset).
    Flush(usize),
}

fn arb_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        2 => Just(WalOp::Allocate),
        8 => (any::<usize>(), 16usize..PAGE_SIZE - 8, 1usize..8, any::<u8>())
            .prop_map(|(page, off, len, val)| WalOp::Write { page, off, len, val }),
        1 => Just(WalOp::Checkpoint),
        2 => any::<usize>().prop_map(WalOp::Flush),
    ]
}

struct Rig {
    disk: Arc<MemDisk>,
    store: Arc<MemLogStore>,
    wal: Arc<Wal>,
    pool: BufferPool,
    pages: Vec<PageId>,
}

fn rig() -> Rig {
    let disk = Arc::new(MemDisk::new());
    let store = Arc::new(MemLogStore::new());
    // Tiny segments force rotation; Always makes every record durable,
    // so an untorn crash loses no log.
    let wal = Arc::new(Wal::new(
        store.clone(),
        WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 * 1024,
        },
    ));
    // A tiny pool forces evictions mid-sequence, so write-backs (and the
    // WAL-before-data rule + re-imaging on the next write) get exercised.
    let pool = BufferPool::builder()
        .capacity(4)
        .shards(1)
        .disk(Box::new(disk.clone()))
        .wal(wal.clone())
        .build();
    Rig {
        disk,
        store,
        wal,
        pool,
        pages: Vec::new(),
    }
}

impl Rig {
    fn apply(&mut self, op: &WalOp) {
        match op {
            WalOp::Allocate => {
                self.pages.push(self.pool.allocate_page().unwrap());
            }
            WalOp::Write {
                page,
                off,
                len,
                val,
            } => {
                if self.pages.is_empty() {
                    return;
                }
                let pid = self.pages[page % self.pages.len()];
                let (off, len) = (*off, *len);
                let val = *val;
                self.pool
                    .write(pid, |mut p| {
                        p.bytes_mut()[off..off + len].fill(val);
                    })
                    .unwrap();
            }
            WalOp::Checkpoint => {
                self.wal
                    .checkpoint(|| self.pool.dirty_page_table())
                    .unwrap();
            }
            WalOp::Flush(i) => {
                if self.pages.is_empty() {
                    return;
                }
                let pid = self.pages[i % self.pages.len()];
                self.pool.flush_page(pid).unwrap();
            }
        }
    }

    /// The ground truth at the crash instant: every allocated page's
    /// bytes as the pool sees them (LSN stamps included).
    fn oracle(&self) -> Vec<(PageId, PageBuf)> {
        self.pages
            .iter()
            .map(|&pid| {
                let buf = self
                    .pool
                    .read(pid, |v| {
                        let mut b = [0u8; PAGE_SIZE];
                        b.copy_from_slice(v.bytes());
                        b
                    })
                    .unwrap();
                (pid, buf)
            })
            .collect()
    }
}

fn disk_page(disk: &MemDisk, pid: PageId) -> PageBuf {
    use cor_pagestore::DiskManager;
    let mut buf = [0u8; PAGE_SIZE];
    disk.read_page(pid, &mut buf).unwrap();
    buf
}

fn disk_image(disk: &MemDisk) -> Vec<PageBuf> {
    use cor_pagestore::DiskManager;
    (0..disk.num_pages())
        .map(|pid| disk_page(disk, pid))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Crash with an intact (fully fsynced) log: recovery rebuilds every
    /// allocated page byte-identically, and a second recovery pass
    /// changes nothing.
    #[test]
    fn recovery_rebuilds_the_crash_instant(
        ops in proptest::collection::vec(arb_op(), 1..60),
        crash_at in any::<usize>(),
    ) {
        let mut rig = rig();
        let crash_at = crash_at % ops.len() + 1;
        for op in &ops[..crash_at] {
            rig.apply(op);
        }
        let oracle = rig.oracle();
        let Rig { disk, store, pool, .. } = rig;
        drop(pool); // dirty frames die with the process
        store.crash(); // unsynced log bytes die too (none: fsync Always)

        recover(disk.as_ref(), store.as_ref()).unwrap();
        for &(pid, expect) in &oracle {
            prop_assert_eq!(
                disk_page(&disk, pid), expect,
                "page {} differs after recovery", pid
            );
        }

        let first = disk_image(&disk);
        let stats = recover(disk.as_ref(), store.as_ref()).unwrap();
        prop_assert_eq!(disk_image(&disk), first, "second recovery changed pages");
        prop_assert_eq!(stats.pages_extended, 0);
    }

    /// Crash with a torn log tail: recovery must still succeed (the torn
    /// record is discarded by CRC), remain idempotent, and land the store
    /// on some consistent prefix of the history — never scan more records
    /// than the untorn log held.
    #[test]
    fn torn_log_tail_recovers_to_a_prefix(
        ops in proptest::collection::vec(arb_op(), 1..40),
        tear in 1usize..64,
    ) {
        let mut rig = rig();
        for op in &ops {
            rig.apply(op);
        }
        let Rig { disk, store, pool, .. } = rig;
        drop(pool);
        let untorn = recover(disk.as_ref(), store.as_ref()).unwrap();
        let untorn_image = disk_image(&disk);

        store.crash_torn(tear);
        let torn = recover(disk.as_ref(), store.as_ref()).unwrap();
        prop_assert!(torn.records_scanned <= untorn.records_scanned);

        // Torn replay may rewind pages whose tail records were lost, but
        // it must stay deterministic: a second pass is a no-op.
        let first = disk_image(&disk);
        recover(disk.as_ref(), store.as_ref()).unwrap();
        prop_assert_eq!(disk_image(&disk), first);

        // If the tear happened to chop only whole records' worth of
        // nothing (no records lost), the image must match the untorn one.
        if torn.records_scanned == untorn.records_scanned {
            prop_assert_eq!(first, untorn_image);
        }
    }
}
