//! Exporter and histogram integration tests: a golden-file check that the
//! Prometheus text output is stable and parses, plus properties over
//! histogram snapshot merging.

use cor_obs::{
    labels, parse_prometheus, to_json, to_prometheus, HistSnapshot, Histogram, MetricsRegistry,
    MetricsSnapshot,
};
use proptest::prelude::*;

/// A deterministic snapshot exercising every metric kind, label escaping
/// and histogram rendering.
fn reference_snapshot() -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    for (shard, hits) in [(0u64, 90u64), (1, 41)] {
        reg.counter(
            "cor_pool_hits_total",
            "buffer pool page-table hits",
            labels(&[("shard", &shard.to_string())]),
        )
        .add(hits);
    }
    reg.gauge(
        "cor_pool_hit_ratio",
        "pool hit fraction",
        labels(&[("shard", "0")]),
    )
    .set(1);
    let lat = reg.histogram(
        "cor_query_latency_ns",
        "per-query wall time",
        labels(&[("strategy", "DFS"), ("op", "retrieve")]),
    );
    for v in [3u64, 9, 9, 150, 4096, 70_000] {
        lat.record(v);
    }
    let mut snap = reg.snapshot();
    // A hand-pushed family with a label value needing every escape.
    snap.push_counter(
        "cor_escapes_total",
        "label escaping fixture",
        labels(&[("path", "a\\b\"c\nd")]),
        1,
    );
    snap
}

#[test]
fn prometheus_output_matches_golden_file() {
    let text = to_prometheus(&reference_snapshot());
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        text, golden,
        "Prometheus rendering drifted from tests/golden/metrics.prom; \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn golden_output_parses_with_cumulative_buckets() {
    let text = to_prometheus(&reference_snapshot());
    let parsed = parse_prometheus(&text).expect("exporter output must parse");
    // Label escaping round-trips.
    let esc = parsed
        .iter()
        .find(|p| p.name == "cor_escapes_total")
        .unwrap();
    assert_eq!(esc.labels[0].1, "a\\b\"c\nd");
    // Histogram bucket lines are cumulative and end at the count.
    let buckets: Vec<f64> = parsed
        .iter()
        .filter(|p| p.name == "cor_query_latency_ns_bucket")
        .map(|p| p.value)
        .collect();
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    let count = parsed
        .iter()
        .find(|p| p.name == "cor_query_latency_ns_count")
        .unwrap();
    assert_eq!(*buckets.last().unwrap(), count.value);
    assert_eq!(count.value, 6.0);
}

#[test]
fn json_twin_carries_the_same_numbers() {
    let json = to_json(&reference_snapshot());
    assert!(json.contains("\"name\":\"cor_pool_hits_total\""));
    assert!(json.contains("\"count\":6"));
    assert!(json.contains("\"path\":\"a\\\\b\\\"c\\nd\""));
}

fn hist_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Merging per-stream snapshots is exactly the histogram of the
    /// concatenated stream — the property the concurrent driver relies on
    /// when it folds per-thread latency histograms together.
    #[test]
    fn merged_snapshots_equal_histogram_of_merged_stream(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&all));
    }

    /// Quantiles never undershoot the true order statistic and respect the
    /// bucket-width error bound.
    #[test]
    fn quantiles_bracket_true_order_statistics(
        values in proptest::collection::vec(0u64..1_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let snap = hist_of(&values);
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let est = snap.quantile(q);
        prop_assert!(est >= exact, "estimate {} under true {}", est, exact);
        prop_assert!(est <= snap.max(), "estimate above observed max");
    }
}
