//! Heat-map integration tests: proptest-pinned decay properties (order
//! preservation, convergence to zero) and a golden-file check over the
//! `cor_heat_*` exporter family.

use cor_obs::heat::{decay_value, DEFAULT_ALPHA_Q16};
use cor_obs::{
    parse_prometheus, to_prometheus, HeatClass, HeatMap, MetricsSnapshot, PAGE_CLASS_INTERNAL,
    PAGE_CLASS_LEAF,
};
use proptest::prelude::*;

/// A deterministic heat map exercising every class, decay, and the
/// top-K exporter path.
fn reference_report_snapshot() -> MetricsSnapshot {
    let m = HeatMap::with_geometry(4, 256);
    // Skewed parent traffic: ids 0..3 hot, a cold tail behind them.
    for (id, n) in [(0u64, 400u64), (1, 200), (2, 100), (3, 50)] {
        m.touch_n(HeatClass::Parent, id, n);
    }
    for id in 10..20u64 {
        m.touch(HeatClass::Parent, id);
    }
    m.touch_n(HeatClass::ClusterRoot, 7, 64);
    m.touch_n(HeatClass::PageClass, PAGE_CLASS_INTERNAL, 30);
    m.touch_n(HeatClass::PageClass, PAGE_CLASS_LEAF, 90);
    m.touch_n(HeatClass::PoolShard, 0, 12);
    m.touch_n(HeatClass::PoolShard, 1, 8);
    // One decay tick halves everything (and rounds the tail down).
    m.decay_tick(DEFAULT_ALPHA_Q16);
    let mut snap = MetricsSnapshot::default();
    m.report().push_to(&mut snap, 3, DEFAULT_ALPHA_Q16);
    snap
}

#[test]
fn heat_prometheus_output_matches_golden_file() {
    let text = to_prometheus(&reference_report_snapshot());
    let golden = include_str!("golden/heat.prom");
    assert_eq!(
        text, golden,
        "cor_heat_* rendering drifted from tests/golden/heat.prom; \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn heat_golden_output_parses_and_ranks() {
    let text = to_prometheus(&reference_report_snapshot());
    let parsed = parse_prometheus(&text).expect("heat exporter output must parse");
    // Top-K parent gauges are rank-ordered hottest-first.
    let mut tops: Vec<(String, f64)> = parsed
        .iter()
        .filter(|p| {
            p.name == "cor_heat_top" && p.labels.iter().any(|(k, v)| k == "class" && v == "parent")
        })
        .map(|p| {
            let rank = p
                .labels
                .iter()
                .find(|(k, _)| k == "rank")
                .unwrap()
                .1
                .clone();
            (rank, p.value)
        })
        .collect();
    tops.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(tops.len(), 3);
    assert!(
        tops.windows(2).all(|w| w[0].1 >= w[1].1),
        "ranks ordered hottest first: {tops:?}"
    );
    assert_eq!(tops[0].1, 200.0, "hottest parent decayed 400 -> 200");
    // Per-class touch totals present for every class.
    for class in ["parent", "cluster_root", "page_class", "pool_shard"] {
        assert!(
            parsed.iter().any(|p| p.name == "cor_heat_touches_total"
                && p.labels.iter().any(|(k, v)| k == "class" && v == class)),
            "missing touches_total for {class}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Decay is monotone: if a was at least as hot as b before a tick, it
    /// still is afterwards — rankings survive any number of ticks.
    #[test]
    fn decay_preserves_order(
        a in any::<u64>(),
        b in any::<u64>(),
        alpha in 0u64..=65536,
        ticks in 1usize..20,
    ) {
        let (hot, cold) = if a >= b { (a, b) } else { (b, a) };
        let (mut h, mut c) = (hot, cold);
        for _ in 0..ticks {
            h = decay_value(h, alpha);
            c = decay_value(c, alpha);
            prop_assert!(h >= c, "tick re-ordered {hot} vs {cold} under alpha {alpha}");
        }
    }

    /// For any alpha < 2^16 a nonzero counter strictly decreases every
    /// tick (`v * alpha / 2^16 < v`, and flooring cannot round back up),
    /// so by induction on `u64` every counter converges to exactly zero.
    #[test]
    fn decay_strictly_decreases_nonzero_counters(
        v in 1u64..=u64::MAX,
        alpha in 0u64..65536,
    ) {
        prop_assert!(decay_value(v, alpha) < v);
        prop_assert_eq!(decay_value(0, alpha), 0, "zero is a fixed point");
    }

    /// And counters actually reach zero within the analytic tick bound:
    /// alpha <= 0.96875 loses at least 0.045 bits per tick, so a
    /// sub-2^30 counter is extinct well inside 1024 ticks.
    #[test]
    fn decay_reaches_zero_within_bound(
        start in 1u64..1_000_000_000,
        alpha in 0u64..=63488,
    ) {
        let mut v = start;
        let mut ticks = 0u32;
        while v > 0 {
            v = decay_value(v, alpha);
            ticks += 1;
            prop_assert!(ticks <= 1024, "no convergence from {start} under alpha {alpha}");
        }
    }

    /// Whole-map decay matches the pure per-value function and drops
    /// fully-decayed entries from the report.
    #[test]
    fn map_decay_matches_pure_function(
        counts in proptest::collection::vec(1u64..1_000_000, 1..40),
        alpha in 1u64..65536,
    ) {
        let m = HeatMap::with_geometry(2, 128);
        for (id, &n) in counts.iter().enumerate() {
            m.touch_n(HeatClass::Parent, id as u64, n);
        }
        m.decay_tick(alpha);
        let report = m.report();
        for (id, &n) in counts.iter().enumerate() {
            let expect = decay_value(n, alpha);
            let got = report
                .entries
                .iter()
                .find(|e| e.class == HeatClass::Parent && e.id == id as u64)
                .map(|e| e.count);
            if expect == 0 {
                prop_assert_eq!(got, None, "fully-decayed entries leave the report");
            } else {
                prop_assert_eq!(got, Some(expect));
            }
        }
    }
}
