//! Trace-tree integration tests: proptest-driven phase-guard scripts
//! proving that per-node I/O attribution in a causal trace equals the
//! [`PhaseProfile`] ledger *exactly* — both are fed by the same calls,
//! so the tree is the profile, refined with structure — plus structural
//! well-formedness of the tree and its Chrome export under arbitrary
//! guard nesting.

use cor_obs::{tracetree, Phase, PhaseGuard, PhaseProfile, PHASE_COUNT};
use proptest::prelude::*;

/// One scripted operation against the phase layer: what a query does,
/// reduced to its observable effects.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `PhaseGuard::enter` — strategy-level bracket.
    Enter(Phase),
    /// `PhaseGuard::enter_default` — access-layer bracket.
    EnterDefault(Phase),
    /// Drop the innermost open guard (if any).
    Exit,
    /// One page read, charged like `IoStats::record_read` charges it:
    /// profile and trace collector from the same call site.
    Read,
    /// One page write, ditto.
    Write,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, 0usize..PHASE_COUNT).prop_map(|(op, ph)| {
        let phase = Phase::ALL[ph];
        match op {
            0 => Op::Enter(phase),
            1 => Op::EnterDefault(phase),
            2 => Op::Exit,
            3 => Op::Read,
            _ => Op::Write,
        }
    })
}

/// Run a script under an active trace, feeding `profile` and the
/// collector through the same charge points. Guards unwind innermost
/// first (LIFO), like real call frames.
fn run_script(ops: &[Op], profile: &PhaseProfile) -> tracetree::TraceGuard {
    let guard = tracetree::start("prop script");
    let mut stack: Vec<PhaseGuard> = Vec::new();
    for op in ops {
        match op {
            Op::Enter(phase) => stack.push(PhaseGuard::enter(*phase)),
            Op::EnterDefault(phase) => stack.push(PhaseGuard::enter_default(*phase)),
            Op::Exit => {
                stack.pop();
            }
            Op::Read => {
                profile.record_read();
                tracetree::charge_read();
            }
            Op::Write => {
                profile.record_write();
                tracetree::charge_write();
            }
        }
    }
    while stack.pop().is_some() {}
    guard
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The tentpole invariant: for any interleaving of phase brackets
    /// and I/O, the tree's per-phase read/write sums equal the
    /// `PhaseProfile` deltas for the traced window — not approximately,
    /// exactly. Attribution is never lost, duplicated, or misfiled.
    #[test]
    fn tree_sums_equal_profile_deltas(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let profile = PhaseProfile::new();
        let before = profile.snapshot();
        let tree = run_script(&ops, &profile)
            .finish()
            .expect("trace started by this test must finish");
        let delta = profile.snapshot().since(&before);

        let (reads, writes) = (tree.reads_by_phase(), tree.writes_by_phase());
        for phase in Phase::ALL {
            prop_assert_eq!(
                reads[phase.index()], delta.reads_of(phase),
                "{} reads drifted from the profile ledger", phase.name()
            );
            prop_assert_eq!(
                writes[phase.index()], delta.writes_of(phase),
                "{} writes drifted from the profile ledger", phase.name()
            );
        }
        prop_assert_eq!(tree.total_reads(), delta.total_reads());
        prop_assert_eq!(tree.total_writes(), delta.total_writes());
    }

    /// Any script yields a structurally valid tree (rooted, parents
    /// before children, child intervals inside their parents') whose
    /// Chrome export is balanced JSON carrying every node.
    #[test]
    fn tree_is_well_formed_and_exports(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let profile = PhaseProfile::new();
        let tree = run_script(&ops, &profile)
            .finish()
            .expect("trace started by this test must finish");
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());

        // Node count is bounded by the phase *transitions* (plus the
        // root): same-phase re-entry must not mint nodes.
        let enters = ops.iter()
            .filter(|o| matches!(o, Op::Enter(_) | Op::EnterDefault(_)))
            .count();
        prop_assert!(tree.nodes.len() <= enters + 1);

        let json = tree.to_chrome_json();
        prop_assert_eq!(
            json.matches('{').count(), json.matches('}').count(),
            "unbalanced braces in chrome export"
        );
        prop_assert_eq!(json.matches("\"ph\":\"X\"").count(), tree.nodes.len());
        prop_assert!(json.contains(&format!("\"trace_id\":{}", tree.id)));
    }
}

/// Charges landing while no trace is active must not leak into the next
/// trace on the same thread.
#[test]
fn untraced_charges_do_not_leak_into_later_traces() {
    let profile = PhaseProfile::new();
    profile.record_read();
    tracetree::charge_read();
    let tree = run_script(
        &[Op::Enter(Phase::HeapFetch), Op::Write, Op::Exit],
        &profile,
    )
    .finish()
    .expect("trace finishes");
    assert_eq!(tree.total_reads(), 0, "pre-trace read leaked into the tree");
    assert_eq!(tree.total_writes(), 1);
}
