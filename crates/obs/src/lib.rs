//! # cor-obs
//!
//! Zero-external-dependency observability substrate for the complex-object
//! reproduction. The paper's only observable is average I/O per query;
//! every performance PR in this repo is expected to ship with *evidence* —
//! hit ratios, per-component cost splits, latency distributions — and this
//! crate provides the pieces every layer shares:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars ([`metric`]);
//! * [`Histogram`] — log-bucketed streaming histograms whose
//!   [`HistSnapshot`]s merge exactly and answer quantiles ([`hist`]);
//! * [`MetricsRegistry`] → [`MetricsSnapshot`] — named, labeled metric
//!   families collected into one structured view ([`registry`]);
//! * [`TraceRing`] — a lock-free bounded ring of query [`Span`]s
//!   ([`trace`]);
//! * [`HeatMap`] / [`HeatReport`] — sharded, exponentially-decaying
//!   access counters for workload skew ([`heat`]);
//! * [`Flight`] / [`FlightKind`] — a bounded black-box event journal
//!   dumped on panic or fault ([`flight`]);
//! * [`SlidingWindow`] — trailing-window rate/percentile views over the
//!   cumulative histograms ([`window`]);
//! * [`to_prometheus`] / [`to_json`] — exporters over a snapshot, plus
//!   [`parse_prometheus`] for validating the text output ([`export`]);
//! * [`Phase`] / [`PhaseGuard`] / [`PhaseProfile`] — thread-scoped phase
//!   attribution for physical I/O, so a profiler can say *where* each
//!   page went, not just how many moved ([`phase`]);
//! * [`TraceTree`] — per-query causal span trees riding the phase layer,
//!   exported as Chrome trace-event JSON ([`tracetree`]);
//! * [`WaitClass`] / [`WaitProfile`] — timed-wait histograms over the
//!   engine's blocking points, the `cor_wait_*` families ([`wait`]);
//! * [`costmodel`] — the paper's closed-form expected-I/O formulas per
//!   strategy, for predicted-vs-measured comparison.
//!
//! Instrumentation is free when disabled: layers hold their telemetry in
//! an `Option` fixed at construction, and every recording call is a
//! handful of relaxed atomic adds when enabled.

#![warn(missing_docs)]

pub mod costmodel;
pub mod export;
pub mod flight;
pub mod heat;
pub mod hist;
pub mod metric;
pub mod phase;
pub mod registry;
pub mod trace;
pub mod tracetree;
pub mod wait;
pub mod window;

pub use export::{
    escape_json, escape_label_value, parse_prometheus, to_json, to_prometheus, ParsedSample,
};
pub use flight::{Flight, FlightEvent, FlightKind};
pub use heat::{HeatClass, HeatEntry, HeatMap, HeatReport, PAGE_CLASS_INTERNAL, PAGE_CLASS_LEAF};
pub use hist::{bucket_index, bucket_upper, HistSnapshot, Histogram, HIST_BUCKETS};
pub use metric::{hit_ratio, Counter, Gauge};
pub use phase::{
    current_phase, enable_timing, take_thread_wall, Phase, PhaseGuard, PhaseProfile, PhaseSnapshot,
    PHASE_COUNT,
};
pub use registry::{
    labels, Labels, MetricFamily, MetricKind, MetricSample, MetricValue, MetricsRegistry,
    MetricsSnapshot,
};
pub use trace::{Span, TraceRing};
pub use tracetree::{TraceGuard, TraceNode, TraceTree, MAX_TRACE_NODES};
pub use wait::{WaitClass, WaitProfile, WaitReport, WAIT_CLASSES};
pub use window::{SlidingWindow, WindowView};
