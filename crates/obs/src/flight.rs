//! Flight recorder: a bounded, structured black-box event journal.
//!
//! Cumulative counters say *how much* happened; the flight recorder says
//! *what the engine was doing just now*. It keeps the last N coarse
//! lifecycle events — engine open/close, checkpoint, WAL append/poison,
//! buffer-pool `NoFreeFrames`, slow queries, injected faults — in the
//! same seqlock ring the query tracer uses ([`TraceRing`]), so recording
//! never blocks, never allocates, and costs one relaxed [`AtomicBool`]
//! load when the recorder is off (the default).
//!
//! Consumers:
//!
//! * `crashtest` enables the recorder and attaches a JSON dump of the
//!   last events to every crash point — each injected fault carries its
//!   black box.
//! * [`install_panic_dump`] chains a panic hook that writes the dump to
//!   stderr, so an unexpected abort still tells its story.
//!
//! Events are fixed-size (`kind` + timestamp + three `u64` args whose
//! meaning the `kind` owns); anything needing strings or nesting belongs
//! in the metrics registry, not here.

use crate::trace::{Span, TraceRing};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Once, OnceLock};
use std::time::Instant;

/// What a flight-recorder event records. Discriminants are stable (they
/// appear in JSON dumps); 0 is reserved for "never written".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum FlightKind {
    /// An engine instance opened (a = catalog epoch or 0).
    EngineOpen = 1,
    /// An engine instance closed cleanly (a = catalog epoch or 0).
    EngineClose = 2,
    /// A WAL checkpoint completed (a = begin LSN, b = redo LSN).
    Checkpoint = 3,
    /// A WAL record was appended (a = LSN, b = record kind tag).
    WalAppend = 4,
    /// The WAL poisoned itself after a storage failure (a = next LSN).
    WalPoison = 5,
    /// The buffer pool found every candidate frame pinned
    /// (a = shard, b = page id, c = pinned frames).
    NoFreeFrames = 6,
    /// A query crossed the slow-query threshold
    /// (a = strategy tag, b = wall ns, c = values returned).
    SlowQuery = 7,
    /// The fault-injection harness armed or fired a fault
    /// (a = nth write, b = mode tag).
    FaultInjected = 8,
    /// A free-form progress marker (a/b/c owned by the caller).
    PointMark = 9,
    /// A captured query was traced: joins this black box with a
    /// `cor_obs::tracetree::TraceTree`
    /// (a = trace id, b = strategy tag, c = wall ns).
    TraceLink = 10,
    /// A `cor-aio` submission found the queue saturated: more runs were
    /// outstanding than the configured depth, so the new runs waited in
    /// the backend queue (a = queue depth, b = backlog at submit,
    /// c = runs in the submission).
    AioSaturated = 11,
}

impl FlightKind {
    /// Every kind, in discriminant order.
    pub const ALL: [FlightKind; 11] = [
        FlightKind::EngineOpen,
        FlightKind::EngineClose,
        FlightKind::Checkpoint,
        FlightKind::WalAppend,
        FlightKind::WalPoison,
        FlightKind::NoFreeFrames,
        FlightKind::SlowQuery,
        FlightKind::FaultInjected,
        FlightKind::PointMark,
        FlightKind::TraceLink,
        FlightKind::AioSaturated,
    ];

    /// Stable snake_case name for dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::EngineOpen => "engine_open",
            FlightKind::EngineClose => "engine_close",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::WalAppend => "wal_append",
            FlightKind::WalPoison => "wal_poison",
            FlightKind::NoFreeFrames => "no_free_frames",
            FlightKind::SlowQuery => "slow_query",
            FlightKind::FaultInjected => "fault_injected",
            FlightKind::PointMark => "point_mark",
            FlightKind::TraceLink => "trace_link",
            FlightKind::AioSaturated => "aio_saturated",
        }
    }

    /// The kind for a discriminant, if valid.
    pub fn from_code(code: u64) -> Option<FlightKind> {
        FlightKind::ALL.get(code.checked_sub(1)? as usize).copied()
    }
}

/// One recorded event: the kind, nanoseconds since the recorder was
/// created, and three argument words whose meaning the kind owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// What happened.
    pub kind: FlightKind,
    /// Nanoseconds since recorder creation (process-relative clock).
    pub t_ns: u64,
    /// First argument word (see [`FlightKind`]).
    pub a: u64,
    /// Second argument word.
    pub b: u64,
    /// Third argument word.
    pub c: u64,
}

/// The recorder: a [`TraceRing`] of events plus the epoch its timestamps
/// are relative to. Events map onto [`Span`]s field-for-field
/// (`op`=kind, `wall_ns`=t_ns, `tag`/`reads`/`writes`=a/b/c) so the ring
/// keeps its tested seqlock publication untouched.
pub struct Flight {
    ring: TraceRing,
    epoch: Instant,
}

impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flight")
            .field("recorded", &self.recorded())
            .field("capacity", &self.ring.capacity())
            .finish()
    }
}

/// Default ring depth: enough to cover a crashtest point's workload
/// window with room for WAL chatter.
pub const DEFAULT_CAPACITY: usize = 256;

impl Flight {
    /// A recorder retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Flight {
            ring: TraceRing::new(capacity),
            epoch: Instant::now(),
        }
    }

    /// Record an event. Wait-free; overwrites the oldest when full.
    pub fn record(&self, kind: FlightKind, a: u64, b: u64, c: u64) {
        self.ring.push(Span {
            op: kind as u64,
            tag: a,
            reads: b,
            writes: c,
            wall_ns: self.epoch.elapsed().as_nanos() as u64,
            payload: 0,
        });
    }

    /// Events recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.ring
            .snapshot()
            .into_iter()
            .filter_map(|s| {
                Some(FlightEvent {
                    kind: FlightKind::from_code(s.op)?,
                    t_ns: s.wall_ns,
                    a: s.tag,
                    b: s.reads,
                    c: s.writes,
                })
            })
            .collect()
    }

    /// The retained tail as a JSON object:
    /// `{"recorded": N, "events": [{"kind": "...", "t_ns": ..., ...}]}`.
    pub fn dump_json(&self) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str(&format!("{{\"recorded\":{},\"events\":[", self.recorded()));
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"t_ns\":{},\"a\":{},\"b\":{},\"c\":{}}}",
                e.kind.name(),
                e.t_ns,
                e.a,
                e.b,
                e.c
            ));
        }
        out.push_str("]}");
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Flight> = OnceLock::new();

/// Whether flight recording is on. One relaxed load — the entire cost of
/// a feed site while disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on or off process-wide. The ring keeps its contents
/// across off/on transitions (it is a black box, history is the point).
pub fn enable(on: bool) {
    if on {
        let _ = global();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global recorder (created on first use, default capacity).
pub fn global() -> &'static Flight {
    GLOBAL.get_or_init(|| Flight::new(DEFAULT_CAPACITY))
}

/// Record an event in the global recorder — the feed-site entry point.
/// A no-op costing one relaxed load while disabled.
#[inline]
pub fn record(kind: FlightKind, a: u64, b: u64, c: u64) {
    if enabled() {
        global().record(kind, a, b, c);
    }
}

/// Events the global recorder has seen over its lifetime.
pub fn recorded() -> u64 {
    global().recorded()
}

/// The global recorder's retained tail, oldest first.
pub fn snapshot() -> Vec<FlightEvent> {
    global().snapshot()
}

/// The global recorder's tail as JSON (see [`Flight::dump_json`]).
pub fn dump_json() -> String {
    global().dump_json()
}

/// Chain a panic hook that dumps the recorder tail to stderr when a
/// panic fires while recording is enabled. Idempotent; the previous hook
/// (including the default backtrace printer) still runs afterwards.
pub fn install_panic_dump() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if enabled() {
                eprintln!("flight-recorder dump: {}", dump_json());
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_the_ring() {
        let f = Flight::new(8);
        f.record(FlightKind::EngineOpen, 1, 0, 0);
        f.record(FlightKind::WalAppend, 42, 3, 0);
        f.record(FlightKind::Checkpoint, 42, 40, 0);
        let got = f.snapshot();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].kind, FlightKind::EngineOpen);
        assert_eq!(
            (got[1].kind, got[1].a, got[1].b),
            (FlightKind::WalAppend, 42, 3)
        );
        assert_eq!(got[2].kind, FlightKind::Checkpoint);
        assert!(
            got.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
            "timestamps are monotone"
        );
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let f = Flight::new(4);
        for i in 0..10 {
            f.record(FlightKind::PointMark, i, 0, 0);
        }
        let got = f.snapshot();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(f.recorded(), 10);
    }

    #[test]
    fn dump_json_is_wellformed_and_named() {
        let f = Flight::new(4);
        f.record(FlightKind::NoFreeFrames, 2, 77, 16);
        let json = f.dump_json();
        assert!(json.starts_with("{\"recorded\":1,\"events\":["));
        assert!(json.contains("\"kind\":\"no_free_frames\""));
        assert!(json.contains("\"a\":2,\"b\":77,\"c\":16"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in FlightKind::ALL {
            assert_eq!(FlightKind::from_code(kind as u64), Some(kind));
        }
        assert_eq!(FlightKind::from_code(0), None);
        assert_eq!(FlightKind::from_code(99), None);
    }

    #[test]
    fn global_record_is_inert_when_disabled() {
        enable(false);
        let before = recorded();
        record(FlightKind::PointMark, 1, 2, 3);
        assert_eq!(recorded(), before);
    }
}
