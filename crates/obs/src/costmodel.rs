//! Analytical expected-I/O cost model (paper Sec. 5).
//!
//! The paper derives each strategy's expected page I/O per retrieve as a
//! closed-form function of the workload parameters, then validates the
//! simulation against it. This module reproduces that analytical layer as
//! pure functions: a [`Workload`] (the paper's parameters), a
//! [`Geometry`] (page geometry of the built relations — measured from a
//! real database, or [`Geometry::estimate`]d from record sizes), and one
//! [`predict_*`](predict_by_name) function per strategy returning a
//! [`Prediction`] split into the paper's `ParCost`/`ChildCost`.
//!
//! Two standard selectivity estimators carry most of the weight:
//!
//! * [`expected_distinct`] — Cardenas' formula `n·(1 − (1 − 1/n)^r)` for
//!   the expected number of distinct values in `r` uniform draws from
//!   `n`; used for distinct units among `NumTop` qualifying objects and
//!   distinct leaf pages among subobject fetches (Yao's block-hit
//!   estimate in its large-blocking-factor form).
//! * a smooth residency model for index internal pages: a query that
//!   churns more distinct pages than the buffer holds evicts the
//!   internals between queries and pays the descent again
//!   ([`cold_fraction`]).
//!
//! The model predicts *retrieve* cost (the paper's figures hold
//! `Pr(UPDATE) = 0` except Fig. 5/6; update cost is not modeled). It is
//! validated two ways: shape tests here (Fig. 3 crossover, Fig. 4 cache
//! monotonicity, Fig. 7 overlap degradation) and measured-vs-predicted
//! tolerance tests in the workload crate and the `explain` binary's
//! smoke gate.

/// The paper's workload parameters, as floats for closed-form use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// `|ParentRel|`.
    pub parent_card: f64,
    /// `SizeUnit` — subobjects per unit.
    pub size_unit: f64,
    /// `UseFactor` — objects sharing a unit.
    pub use_factor: f64,
    /// `OverlapFactor` — units sharing a subobject.
    pub overlap_factor: f64,
    /// `NumTop` — objects selected per retrieve.
    pub num_top: f64,
    /// `SizeCache` — cache capacity in units.
    pub size_cache: f64,
    /// Buffer pool capacity in pages.
    pub buffer_pages: f64,
    /// SMART's NumTop threshold (`N = 300`).
    pub smart_threshold: f64,
    /// Sort work memory in bytes.
    pub sort_work_mem: f64,
}

impl Workload {
    /// `ShareFactor = UseFactor × OverlapFactor`.
    pub fn share_factor(&self) -> f64 {
        self.use_factor * self.overlap_factor
    }

    /// Eqn. (1): `|ChildRel| = |ParentRel| × SizeUnit / ShareFactor`.
    pub fn child_card(&self) -> f64 {
        (self.parent_card * self.size_unit / self.share_factor()).max(1.0)
    }

    /// `NumUnits = |ParentRel| / UseFactor`.
    pub fn num_units(&self) -> f64 {
        (self.parent_card / self.use_factor).max(1.0)
    }

    /// Subobject references per retrieve (`NumTop × SizeUnit`).
    pub fn refs(&self) -> f64 {
        self.num_top * self.size_unit
    }

    /// Expected distinct units among the `NumTop` qualifying objects.
    pub fn distinct_units(&self) -> f64 {
        expected_distinct(self.num_units(), self.num_top)
    }

    /// Expected distinct subobjects referenced per retrieve. With
    /// `OverlapFactor = 1` units partition ChildRel, so distinct units
    /// contribute disjoint members; with overlap, members collide.
    pub fn distinct_children(&self) -> f64 {
        if self.overlap_factor <= 1.0 {
            self.distinct_units() * self.size_unit
        } else {
            expected_distinct(self.child_card(), self.distinct_units() * self.size_unit)
        }
    }
}

/// Page geometry of the built relations. Measure it from a real database
/// for tight predictions, or [`Geometry::estimate`] it from record sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// ParentRel B-tree height in levels (including the leaf level).
    pub parent_height: f64,
    /// ParentRel leaf pages.
    pub parent_leaf_pages: f64,
    /// ChildRel B-tree height.
    pub child_height: f64,
    /// ChildRel leaf pages.
    pub child_leaf_pages: f64,
    /// ClusterRel B-tree height (clustered representation).
    pub cluster_height: f64,
    /// ClusterRel leaf pages.
    pub cluster_leaf_pages: f64,
    /// ISAM OID-index height.
    pub isam_height: f64,
    /// OID records per temporary heap page (BFS temp / sort runs).
    pub temp_records_per_page: f64,
    /// Bytes one sorted record occupies in sort work memory.
    pub sort_record_bytes: f64,
}

impl Geometry {
    /// Estimate the geometry from first principles: 2 KB slotted pages,
    /// the repo's ~200-byte parent and ~100-byte child records, B-tree
    /// fill factors of the bulk loader. Good enough for golden tests;
    /// the `explain` binary measures the real thing.
    pub fn estimate(w: &Workload) -> Geometry {
        let page = 2048.0_f64;
        // Slotted-page payload after header/slot overhead, bulk-load fill.
        let payload: f64 = (page - 32.0) * 0.85;
        let parent_bytes = 210.0_f64 + 12.0; // record + key/slot overhead
        let child_bytes = 104.0_f64 + 12.0;
        let parents_per_leaf = (payload / parent_bytes).floor().max(1.0);
        let children_per_leaf = (payload / child_bytes).floor().max(1.0);
        let parent_leaf_pages = (w.parent_card / parents_per_leaf).ceil().max(1.0);
        let child_leaf_pages = (w.child_card() / children_per_leaf).ceil().max(1.0);
        // Internal fan-out: 10-byte keys + page pointers.
        let fanout = (payload / 30.0).floor().max(2.0);
        let height = |leaves: f64| 1.0 + (leaves.ln() / fanout.ln()).ceil().max(0.0);
        // ClusterRel interleaves every parent and child record once.
        let cluster_rows_per_leaf = {
            let mix = (w.parent_card * parent_bytes + w.child_card() * child_bytes)
                / (w.parent_card + w.child_card());
            (payload / (mix + 12.0)).floor().max(1.0)
        };
        let cluster_leaf_pages = ((w.parent_card + w.child_card()) / cluster_rows_per_leaf)
            .ceil()
            .max(1.0);
        Geometry {
            parent_height: height(parent_leaf_pages),
            parent_leaf_pages,
            child_height: height(child_leaf_pages),
            child_leaf_pages,
            cluster_height: height(cluster_leaf_pages),
            cluster_leaf_pages,
            isam_height: height((w.child_card() / 90.0).ceil().max(1.0)),
            temp_records_per_page: 120.0,
            sort_record_bytes: 26.0,
        }
    }

    /// Parent tuples per leaf page.
    pub fn parents_per_leaf(&self, w: &Workload) -> f64 {
        (w.parent_card / self.parent_leaf_pages).max(1.0)
    }

    /// Cluster rows (objects + subobjects) per leaf page.
    pub fn cluster_rows_per_leaf(&self, w: &Workload) -> f64 {
        ((w.parent_card + w.child_card()) / self.cluster_leaf_pages).max(1.0)
    }
}

/// Cardenas' estimator: expected distinct values in `r` uniform draws
/// (with replacement) from a domain of `n`. Also Yao's block-hit count in
/// its i.i.d. form when `n` is a page count.
pub fn expected_distinct(n: f64, r: f64) -> f64 {
    if n <= 0.0 || r <= 0.0 {
        return 0.0;
    }
    if n <= 1.0 {
        return 1.0_f64.min(r);
    }
    n * (1.0 - (1.0 - 1.0 / n).powf(r))
}

/// How often per-query work re-faults index internal pages: `0` when a
/// query's distinct-page churn (plus the internals themselves) fits the
/// buffer — the internals stay resident across the sequence — rising
/// smoothly to `1` when churn is at least twice the buffer.
pub fn cold_fraction(churn: f64, internals: f64, buffer_pages: f64) -> f64 {
    if buffer_pages <= 0.0 {
        return 1.0;
    }
    ((churn + internals - buffer_pages) / buffer_pages).clamp(0.0, 1.0)
}

/// An analytical per-retrieve cost, split the way the paper splits
/// measured cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prediction {
    /// Expected I/O for accessing the qualifying objects (`ParCost`).
    pub par: f64,
    /// Expected I/O for everything else — subobject fetching,
    /// temporaries, sorting, joining, cache traffic (`ChildCost`).
    pub child: f64,
}

impl Prediction {
    /// Expected total I/O per retrieve.
    pub fn total(&self) -> f64 {
        self.par + self.child
    }
}

/// ParCost of a standard-representation range scan: the touched leaf
/// span plus whatever fraction of the descent is cold.
fn par_scan(w: &Workload, g: &Geometry, churn: f64) -> f64 {
    let leaves = w.num_top / g.parents_per_leaf(w) + 1.0;
    leaves
        + (g.parent_height - 1.0).max(0.0) * cold_fraction(churn, g.parent_height, w.buffer_pages)
}

/// Expected distinct ChildRel leaf pages touched when fetching the
/// query's distinct subobjects by index probe.
fn child_probe_pages(w: &Workload, g: &Geometry) -> f64 {
    expected_distinct(g.child_leaf_pages, w.distinct_children())
}

/// Expected physical reads for `probes` random index probes whose targets
/// span `distinct_pages` leaf pages under a `buffer_pages` LRU pool: each
/// distinct page faults once, and re-references miss in proportion to how
/// badly the working set overflows the buffer. This is the term that
/// makes DFS degrade past the buffer size (the paper's Fig. 3 right-hand
/// side) — with a big enough pool it collapses back to `distinct_pages`.
fn probe_reads(probes: f64, distinct_pages: f64, buffer_pages: f64) -> f64 {
    let d = distinct_pages.max(0.0);
    if d <= 0.0 {
        return 0.0;
    }
    let rereference_miss = ((d - buffer_pages) / d).clamp(0.0, 1.0);
    d + (probes - d).max(0.0) * rereference_miss
}

/// DFS (Sec. 3.1 \[1\]): one index probe per subobject reference. While
/// the working set fits the pool repeated references are free; past it,
/// each probe pays again ([`probe_reads`]). The descent's internal pages
/// are the hottest pages in the pool and stay warm even under churn, so
/// they contribute only a cold-start fraction.
pub fn predict_dfs(w: &Workload, g: &Geometry) -> Prediction {
    let probe_pages = child_probe_pages(w, g);
    let leaf_reads = probe_reads(w.refs(), probe_pages, w.buffer_pages);
    let churn = probe_pages + w.num_top / g.parents_per_leaf(w);
    let cold = cold_fraction(churn, g.child_height, w.buffer_pages);
    Prediction {
        par: par_scan(w, g, churn),
        child: leaf_reads + (g.child_height - 1.0).max(0.0) * cold,
    }
}

/// The BFS temporary's size in pages.
fn temp_pages(w: &Workload, g: &Geometry, records: f64) -> f64 {
    let _ = w;
    (records / g.temp_records_per_page).ceil().max(1.0)
}

/// Sort spill I/O: zero when the run fits work memory, otherwise one
/// write plus one read per spilled page.
fn sort_spill(w: &Workload, g: &Geometry, records: f64) -> f64 {
    let bytes = records * g.sort_record_bytes;
    if bytes <= w.sort_work_mem {
        0.0
    } else {
        2.0 * (records / g.temp_records_per_page).ceil()
    }
}

/// BFS / BFSNODUP (Sec. 3.1 \[2\]/\[3\]): materialize the temporary, then
/// the optimizer's choice of merge join (scan every ChildRel leaf) or
/// iterative substitution (probe per record). `dedup` removes duplicate
/// references while sorting (BFSNODUP).
pub fn predict_bfs(w: &Workload, g: &Geometry, dedup: bool) -> Prediction {
    let refs = w.refs();
    let t = temp_pages(w, g, refs);
    let probe_records = if dedup { w.distinct_children() } else { refs };

    // Mirror the executor's plan choice (its own coarse estimates), then
    // price the chosen plan with the physical model.
    let est_iter = g.child_height + (refs - 1.0).max(0.0);
    let est_merge = g.child_leaf_pages + t + sort_spill(w, g, refs);
    let churn;
    let join_cost;
    if est_merge < est_iter {
        // Merge join: sort the temp (read it back + spill), co-scan the
        // ChildRel leaf chain.
        join_cost =
            t + sort_spill(w, g, if dedup { probe_records } else { refs }) + g.child_leaf_pages;
        churn = g.child_leaf_pages + t;
    } else {
        // Iterative substitution: read the temp back and probe like DFS.
        let probe_pages = expected_distinct(g.child_leaf_pages, w.distinct_children());
        let spill = if dedup { sort_spill(w, g, refs) } else { 0.0 };
        join_cost = t
            + spill
            + probe_reads(probe_records, probe_pages, w.buffer_pages)
            + (g.child_height - 1.0).max(0.0)
                * cold_fraction(probe_pages + t, g.child_height, w.buffer_pages);
        churn = probe_pages + t;
    }
    Prediction {
        par: par_scan(w, g, churn),
        // Temp formation: one write per page forced, plus allocation-time
        // population happens in the buffer (no read).
        child: t + join_cost,
    }
}

/// Steady-state probability that a unit probe hits the cache: the cache
/// holds `SizeCache` of the `NumUnits` equally likely units.
pub fn cache_hit_ratio(w: &Workload) -> f64 {
    (w.size_cache / w.num_units()).clamp(0.0, 1.0)
}

/// DFSCACHE (Sec. 3.2): probe the unit-value cache per qualifying
/// object; hits read the cached value (~1 page from the hash relation),
/// misses materialize the unit like DFS and insert it.
pub fn predict_dfs_cache(w: &Workload, g: &Geometry) -> Prediction {
    let h = cache_hit_ratio(w);
    let d_u = w.distinct_units();
    let member_pages = expected_distinct(g.child_leaf_pages, w.size_unit);
    // Per distinct unit: hit -> one hash-bucket read; miss -> the
    // materializing probes plus the insert (bucket read + page write).
    let per_hit = 1.0;
    let per_miss = member_pages
        + (g.child_height - 1.0).max(0.0)
            * cold_fraction(member_pages, g.child_height, w.buffer_pages)
        + 2.0;
    let child = d_u * (h * per_hit + (1.0 - h) * per_miss);
    let churn = child;
    Prediction {
        par: par_scan(w, g, churn),
        child,
    }
}

/// DFSCLUST (Sec. 3.3): one cluster-range scan returns the objects and
/// their co-clustered subobjects; units clustered with an out-of-range
/// object cost an ISAM probe plus one leaf read each.
pub fn predict_dfs_clust(w: &Workload, g: &Geometry) -> Prediction {
    // Each unit is physically clustered with exactly one of its
    // ~UseFactor users, so a scanned object's unit is local with
    // probability 1/UseFactor (plus the chance the foreign owner also
    // falls in the scanned range).
    let p_local =
        (1.0 / w.use_factor + (1.0 - 1.0 / w.use_factor) * (w.num_top / w.parent_card)).min(1.0);
    // The scan covers the qualifying objects and the subobjects stored
    // with them (each object owns SizeUnit/UseFactor stored members on
    // average).
    let rows = w.num_top * (1.0 + w.size_unit / w.use_factor);
    let scan_pages = rows / g.cluster_rows_per_leaf(w) + 1.0;
    let d_u = w.distinct_units();
    let foreign = d_u * (1.0 - p_local);
    // Foreign unit: ISAM descent (internals warm like other indexes) +
    // one ClusterRel leaf holding the whole unit.
    let churn = scan_pages + 2.0 * foreign;
    let cold = cold_fraction(churn, g.isam_height + g.cluster_height, w.buffer_pages);
    let par = scan_pages + (g.cluster_height - 1.0).max(0.0) * cold;
    let child = foreign * (1.0 + 1.0 + (g.isam_height - 1.0).max(0.0) * cold);
    Prediction { par, child }
}

/// SMART (Sec. 5.3): DFSCACHE below the NumTop threshold; above it, a
/// cache-aware BFS that reads cached units and joins only the uncached
/// remainder — or ignores the cache entirely when that is cheaper.
pub fn predict_smart(w: &Workload, g: &Geometry) -> Prediction {
    if w.num_top <= w.smart_threshold {
        return predict_dfs_cache(w, g);
    }
    let h = cache_hit_ratio(w);
    let d_u = w.distinct_units();
    let cached_reads = d_u * h;
    // Join economics over the uncached remainder, mirroring the
    // executor's cost comparison.
    let uncached = Workload {
        num_top: w.num_top * (1.0 - h),
        ..*w
    };
    let with_cache = {
        let join = predict_bfs(&uncached, g, false);
        Prediction {
            par: par_scan(w, g, g.child_leaf_pages),
            child: cached_reads + join.child,
        }
    };
    let without = predict_bfs(w, g, false);
    if with_cache.total() < without.total() {
        with_cache
    } else {
        without
    }
}

/// Predict by strategy name (`DFS`, `BFS`, `BFSNODUP`, `DFSCACHE`,
/// `DFSCLUST`, `SMART` — the repo's canonical spellings).
pub fn predict_by_name(name: &str, w: &Workload, g: &Geometry) -> Option<Prediction> {
    match name {
        "DFS" => Some(predict_dfs(w, g)),
        "BFS" => Some(predict_bfs(w, g, false)),
        "BFSNODUP" => Some(predict_bfs(w, g, true)),
        "DFSCACHE" => Some(predict_dfs_cache(w, g)),
        "DFSCLUST" => Some(predict_dfs_clust(w, g)),
        "SMART" => Some(predict_smart(w, g)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Batched-I/O term
// ---------------------------------------------------------------------------

/// Expected *batched* I/O per retrieve: how many page transfers flow
/// through multi-page submissions and how many physical submissions they
/// collapse into. Orthogonal to [`Prediction`] — batching never changes
/// the transfer counts the paper measures, only how the disk is asked
/// for them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchPrediction {
    /// Pages expected to move through batched multi-page reads
    /// (`batch_reads` in the measured counters).
    pub batched_pages: f64,
    /// Physical submissions after run coalescing (`coalesced_runs`).
    pub submissions: f64,
}

impl BatchPrediction {
    /// Pages per physical submission (1.0 when nothing batched — a
    /// degenerate batch is one submission per page).
    pub fn coalescing_factor(&self) -> f64 {
        if self.submissions <= 0.0 {
            1.0
        } else {
            (self.batched_pages / self.submissions).max(1.0)
        }
    }
}

/// Submissions when `pages` **contiguous** pages stream through prefetch
/// windows of `window`: each window is one maximal run, so one
/// submission per window.
pub fn batched_submissions_contiguous(pages: f64, window: f64) -> f64 {
    if pages <= 0.0 {
        return 0.0;
    }
    if window <= 1.0 {
        return pages;
    }
    (pages / window).ceil()
}

/// Expected synchronous submission **rounds** once `depth` submissions
/// can be in flight concurrently: the executor drains a batch of
/// coalesced runs through a bounded completion queue, so the latency-
/// bearing unit shifts from one submission to one *round* of up to
/// `depth` overlapped submissions — `ceil(submissions / depth)`.
/// Depth ≤ 1 is the synchronous engine: one round per submission, so
/// the term degenerates to `submissions` exactly and depth-1 reports
/// stay identical to pre-aio ones.
pub fn queued_submission_rounds(submissions: f64, depth: f64) -> f64 {
    if submissions <= 0.0 {
        return 0.0;
    }
    if depth <= 1.0 {
        return submissions;
    }
    (submissions / depth).ceil()
}

/// Expected maximal adjacent runs among `selected` distinct pages drawn
/// uniformly from a file of `total`: of the `selected` pages, a fraction
/// `(selected-1)/total` of them continue the previous page's run, so
/// `runs = s − s(s−1)/n` (clamped to `[1, selected]`). Dense selections
/// collapse toward one run; sparse ones stay one submission per page.
pub fn expected_runs(selected: f64, total: f64) -> f64 {
    if selected <= 0.0 {
        return 0.0;
    }
    if total <= 1.0 {
        return 1.0;
    }
    (selected - selected * (selected - 1.0) / total).clamp(1.0, selected)
}

/// The batch term for one strategy's batched paths, given the executor's
/// I/O knobs (`batch` keys per sorted probe window, `readahead` pages per
/// scan prefetch window). Both off — the defaults — predicts exactly
/// zero, matching the byte-identical page-at-a-time run.
///
/// Paths mirror the executor: BFS batches its iterative probes or
/// readaheads the merge scan (same plan choice as [`predict_bfs`]);
/// DFSCACHE batches each uncached unit's materialization (a unit's
/// members are consecutive OIDs, so its leaves coalesce to ~one run);
/// DFSCLUST readaheads the ClusterRel range scan; DFS has no batched
/// path.
pub fn predict_batch(
    name: &str,
    w: &Workload,
    g: &Geometry,
    batch: f64,
    readahead: f64,
) -> Option<BatchPrediction> {
    let zero = BatchPrediction::default();
    let probes_batched = batch > 1.0;
    let scans_ahead = readahead > 0.0;
    let bfs_term = |dedup: bool| {
        let refs = w.refs();
        let t = temp_pages(w, g, refs);
        let est_iter = g.child_height + (refs - 1.0).max(0.0);
        let est_merge = g.child_leaf_pages + t + sort_spill(w, g, refs);
        if est_merge < est_iter {
            if !scans_ahead {
                return zero;
            }
            // Merge join: the leaf chain is contiguous (bulk load).
            BatchPrediction {
                batched_pages: g.child_leaf_pages,
                submissions: batched_submissions_contiguous(g.child_leaf_pages, readahead),
            }
        } else {
            if !probes_batched {
                return zero;
            }
            let probe_records = if dedup { w.distinct_children() } else { refs };
            let probe_pages = expected_distinct(g.child_leaf_pages, w.distinct_children());
            // Each distinct leaf faults once, through a batched window;
            // windows bound the coalescing from below.
            let windows = (probe_records / batch).ceil().max(1.0);
            BatchPrediction {
                batched_pages: probe_pages,
                submissions: expected_runs(probe_pages, g.child_leaf_pages)
                    .max(windows.min(probe_pages)),
            }
        }
    };
    match name {
        "DFS" => Some(zero),
        "BFS" => Some(bfs_term(false)),
        "BFSNODUP" => Some(bfs_term(true)),
        "DFSCACHE" => {
            if !probes_batched {
                return Some(zero);
            }
            let misses = w.distinct_units() * (1.0 - cache_hit_ratio(w));
            let member_pages = expected_distinct(g.child_leaf_pages, w.size_unit);
            Some(BatchPrediction {
                batched_pages: misses * member_pages,
                submissions: misses, // one coalesced run per unit batch
            })
        }
        "DFSCLUST" => {
            if !scans_ahead {
                return Some(zero);
            }
            let rows = w.num_top * (1.0 + w.size_unit / w.use_factor);
            let scan_pages = rows / g.cluster_rows_per_leaf(w) + 1.0;
            Some(BatchPrediction {
                batched_pages: scan_pages,
                submissions: batched_submissions_contiguous(scan_pages, readahead),
            })
        }
        "SMART" => {
            if w.num_top <= w.smart_threshold {
                predict_batch("DFSCACHE", w, g, batch, readahead)
            } else {
                Some(bfs_term(false))
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Per-policy buffer-miss term
// ---------------------------------------------------------------------------

/// The poolbench scan-flood shape: a `hot_pages` re-referenced set (the
/// B-tree inner nodes a query sequence keeps descending through)
/// interleaved with `scan_pages` of one-touch flood per round (a BFS
/// merge pass or DFSCLUST cluster scan), repeated `rounds` times against
/// a `buffer_pages` pool. Where the miss curve bends as the pool grows
/// depends on the replacement policy, not just the pool size — which is
/// exactly what the Cardenas-Yao term above cannot express.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodWorkload {
    /// Pages re-referenced every round (the hot set).
    pub hot_pages: f64,
    /// One-touch pages scanned per round (the flood).
    pub scan_pages: f64,
    /// Rounds of (hot probes + scan).
    pub rounds: f64,
    /// Pool capacity in pages.
    pub buffer_pages: f64,
}

/// Expected buffer misses for one replacement policy over a
/// [`FloodWorkload`]. Policy names are the stable lower-case spellings
/// (`lru`, `fifo`, `clock`, `sieve`, `2q`); unknown names return `None`.
///
/// Closed forms, with `H` hot, `S` scan, `B` buffer and `R` rounds —
/// every policy pays the `H + S` compulsory first-round faults, and they
/// differ only in the per-round *re*-miss term:
///
/// * **Recency-driven policies (LRU / FIFO / CLOCK)** cannot tell a
///   one-touch scan page from a hot page: once the round's churn
///   `H + S` overflows the pool, the flood evicts everything and every
///   re-reference misses. The re-miss fraction interpolates through
///   [`cold_fraction`] — 0 while `H + S ≤ B`, 1 from `2B` up — so the
///   predicted curve bends only at `B ≈ H + S`. CLOCK's second chance
///   is defeated by a cyclic flood (every bit is cleared each lap) and
///   is modelled as LRU.
/// * **Scan-resistant policies (SIEVE / 2Q)** retain the hot set in
///   their protected region — all but one frame for SIEVE's hand, the
///   `Am` three-quarters for 2Q — so hot pages re-miss only past *that*
///   bend (`B ≈ H`), while the one-touch scan pages re-miss every round
///   whenever the round does not fit the pool outright.
pub fn predict_policy_misses(policy: &str, w: &FloodWorkload) -> Option<f64> {
    let (h, s, b) = (w.hot_pages, w.scan_pages, w.buffer_pages);
    let repeats = (w.rounds - 1.0).max(0.0);
    let compulsory = h + s;
    let round_fits = h + s <= b;
    let protected = match policy {
        "lru" | "fifo" | "clock" => {
            // One shared region: re-misses are all-or-nothing in the
            // round churn, smoothed exactly like the index-descent term.
            let f = cold_fraction(h + s, 0.0, b);
            return Some(compulsory + repeats * f * (h + s));
        }
        "sieve" => (b - 1.0).max(0.0),
        "2q" => b - (b / 4.0).floor().max(1.0),
        _ => return None,
    };
    let hot_resident = h.min(protected.max(0.0));
    let hot_re = h - hot_resident;
    let scan_re = if round_fits { 0.0 } else { s };
    Some(compulsory + repeats * (hot_re + scan_re))
}

/// Relative error of a measured miss count against the model,
/// `|measured − predicted| / max(predicted, 1)` — the poolbench
/// measured-vs-predicted report.
pub fn policy_miss_rel_error(measured: f64, predicted: f64) -> f64 {
    (measured - predicted).abs() / predicted.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Sec. 4 defaults (the Fig. 3 operating point sweeps
    /// NumTop over these).
    fn paper(num_top: f64) -> Workload {
        Workload {
            parent_card: 10_000.0,
            size_unit: 5.0,
            use_factor: 5.0,
            overlap_factor: 1.0,
            num_top,
            size_cache: 1000.0,
            buffer_pages: 100.0,
            smart_threshold: 300.0,
            sort_work_mem: 32.0 * 2048.0,
        }
    }

    #[test]
    fn queued_rounds_degenerate_and_overlapped() {
        // Depth ≤ 1 must reproduce the synchronous submission count
        // exactly — the depth-1 identity the executor asserts.
        assert_eq!(queued_submission_rounds(17.0, 1.0), 17.0);
        assert_eq!(queued_submission_rounds(17.0, 0.0), 17.0);
        assert_eq!(queued_submission_rounds(0.0, 4.0), 0.0);
        // Overlap: 17 submissions at depth 4 drain in ceil(17/4) rounds.
        assert_eq!(queued_submission_rounds(17.0, 4.0), 5.0);
        assert_eq!(queued_submission_rounds(16.0, 4.0), 4.0);
        assert_eq!(queued_submission_rounds(3.0, 16.0), 1.0);
    }

    #[test]
    fn estimators_are_sane() {
        assert_eq!(expected_distinct(100.0, 0.0), 0.0);
        assert!((expected_distinct(100.0, 1.0) - 1.0).abs() < 1e-9);
        // Monotone, bounded by both n and r.
        let d = expected_distinct(2000.0, 100.0);
        assert!(d > 95.0 && d < 100.0, "{d}");
        assert!(expected_distinct(10.0, 1_000.0) <= 10.0 + 1e-9);
        assert_eq!(cold_fraction(10.0, 3.0, 100.0), 0.0);
        assert_eq!(cold_fraction(500.0, 3.0, 100.0), 1.0);
        let mid = cold_fraction(150.0, 0.0, 100.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn workload_algebra_matches_section_4() {
        let w = paper(100.0);
        assert_eq!(w.child_card(), 10_000.0);
        assert_eq!(w.num_units(), 2_000.0);
        assert_eq!(w.refs(), 500.0);
        let d = w.distinct_units();
        assert!(d > 95.0 && d < 100.0);
    }

    #[test]
    fn fig3_shape_dfs_wins_low_numtop_bfs_wins_high() {
        let g = Geometry::estimate(&paper(1.0));
        // Low NumTop: DFS needs no temporary, BFS pays for one.
        let lo_dfs = predict_dfs(&paper(1.0), &g).total();
        let lo_bfs = predict_bfs(&paper(1.0), &g, false).total();
        assert!(
            lo_dfs < lo_bfs,
            "NumTop=1: DFS {lo_dfs:.1} must beat BFS {lo_bfs:.1}"
        );
        // High NumTop: DFS degenerates to a probe per reference while the
        // merge join's leaf scan flattens BFS (the Fig. 3 crossover).
        let hi_dfs = predict_dfs(&paper(2_000.0), &g).total();
        let hi_bfs = predict_bfs(&paper(2_000.0), &g, false).total();
        assert!(
            hi_bfs < hi_dfs / 2.0,
            "NumTop=2000: BFS {hi_bfs:.1} must far undercut DFS {hi_dfs:.1}"
        );
        // And both grow monotonically in NumTop.
        for pair in [1.0, 10.0, 100.0, 1_000.0, 10_000.0].windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                predict_dfs(&paper(a), &g).total() < predict_dfs(&paper(b), &g).total(),
                "DFS monotone {a}->{b}"
            );
        }
    }

    #[test]
    fn fig3_shape_bfsnodup_no_worse_than_bfs_under_sharing() {
        let g = Geometry::estimate(&paper(1_000.0));
        let bfs = predict_bfs(&paper(1_000.0), &g, false).total();
        let nodup = predict_bfs(&paper(1_000.0), &g, true).total();
        assert!(
            nodup <= bfs + 1e-9,
            "dedup never adds I/O: {nodup} vs {bfs}"
        );
    }

    #[test]
    fn fig4_shape_cache_pays_off_monotonically() {
        let mut last = f64::INFINITY;
        for size_cache in [0.0, 250.0, 500.0, 1_000.0, 2_000.0] {
            let w = Workload {
                size_cache,
                ..paper(100.0)
            };
            let g = Geometry::estimate(&w);
            let c = predict_dfs_cache(&w, &g).total();
            assert!(
                c <= last + 1e-9,
                "larger cache must not cost more: {size_cache} -> {c}"
            );
            last = c;
        }
        // A full-coverage cache beats plain DFS.
        let w = Workload {
            size_cache: 2_000.0,
            ..paper(100.0)
        };
        let g = Geometry::estimate(&w);
        assert!(predict_dfs_cache(&w, &g).total() < predict_dfs(&w, &g).total());
    }

    #[test]
    fn fig5_shape_clustering_trades_parcost_for_childcost() {
        let w = paper(200.0);
        let g = Geometry::estimate(&w);
        let dfs = predict_dfs(&w, &g);
        let clust = predict_dfs_clust(&w, &g);
        // The cluster scan drags co-located subobjects through ParCost…
        assert!(clust.par > dfs.par, "{} vs {}", clust.par, dfs.par);
        // …and wins overall by collapsing ChildCost (Fig. 5's story).
        assert!(clust.child < dfs.child);
        assert!(clust.total() < dfs.total());
    }

    #[test]
    fn fig7_shape_overlap_degrades_clustering() {
        let base = Workload {
            overlap_factor: 1.0,
            ..paper(200.0)
        };
        let overlapped = Workload {
            overlap_factor: 5.0,
            use_factor: 1.0,
            ..paper(200.0)
        };
        let c1 = predict_dfs_clust(&base, &Geometry::estimate(&base)).total();
        // With OverlapFactor 5 / UseFactor 1 every unit is clustered with
        // its single user, so the penalty shows in the standard
        // strategies' distinct-subobject collapse instead; check the
        // model keeps distinct children below the no-overlap count.
        assert!(overlapped.distinct_children() < base.distinct_children());
        assert!(c1.is_finite() && c1 > 0.0);
    }

    #[test]
    fn smart_follows_dfscache_below_threshold_and_caps_above() {
        let w = paper(100.0);
        let g = Geometry::estimate(&w);
        assert_eq!(predict_smart(&w, &g), predict_dfs_cache(&w, &g));
        let hi = paper(2_000.0);
        let g = Geometry::estimate(&hi);
        let smart = predict_smart(&hi, &g).total();
        let bfs = predict_bfs(&hi, &g, false).total();
        assert!(
            smart <= bfs + 1e-9,
            "SMART never worse than plain BFS: {smart} vs {bfs}"
        );
    }

    #[test]
    fn golden_values_at_the_fig3_operating_point() {
        // Exact regression pins for the model at the paper's Sec. 4
        // point (NumTop = 100): any change to the formulas must be
        // deliberate and show up here.
        let w = paper(100.0);
        let g = Geometry::estimate(&w);
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        let dfs = predict_dfs(&w, &g);
        let bfs = predict_bfs(&w, &g, false);
        let clust = predict_dfs_clust(&w, &g);
        let cache = predict_dfs_cache(&w, &g);
        assert_eq!(round2(dfs.total()), 477.95);
        assert_eq!(round2(bfs.total()), 487.95);
        assert_eq!(round2(clust.total()), 308.91);
        assert_eq!(round2(cache.total()), 406.87);
        // The split stays the paper's ParCost + ChildCost.
        assert!((dfs.par + dfs.child - dfs.total()).abs() < 1e-12);
    }

    #[test]
    fn batch_term_is_zero_with_knobs_off_and_sane_with_them_on() {
        let w = paper(100.0);
        let g = Geometry::estimate(&w);
        // Knobs at their defaults (batch 1, readahead 0) predict exactly
        // zero batched I/O for every strategy — mirroring the executor's
        // byte-identical page-at-a-time path.
        for name in ["DFS", "BFS", "BFSNODUP", "DFSCACHE", "DFSCLUST", "SMART"] {
            let b = predict_batch(name, &w, &g, 1.0, 0.0).expect(name);
            assert_eq!(b, BatchPrediction::default(), "{name}");
            assert_eq!(b.coalescing_factor(), 1.0);
        }
        assert!(predict_batch("NOPE", &w, &g, 8.0, 4.0).is_none());
        // Knobs on: every batched path predicts at least one page per
        // submission, and never more submissions than pages.
        for name in ["BFS", "BFSNODUP", "DFSCACHE", "DFSCLUST", "SMART"] {
            let b = predict_batch(name, &w, &g, 8.0, 4.0).expect(name);
            assert!(b.batched_pages > 0.0, "{name}: {b:?}");
            assert!(
                b.submissions > 0.0 && b.submissions <= b.batched_pages + 1e-9,
                "{name}: {b:?}"
            );
            assert!(b.coalescing_factor() >= 1.0);
        }
        // DFS has no batched path even with the knobs on.
        let dfs = predict_batch("DFS", &w, &g, 8.0, 4.0).unwrap();
        assert_eq!(dfs, BatchPrediction::default());
    }

    #[test]
    fn batch_term_submissions_shrink_with_wider_windows() {
        // A readahead-driven scan path: DFSCLUST at a NumTop large enough
        // for a multi-page scan span.
        let w = paper(500.0);
        let g = Geometry::estimate(&w);
        let narrow = predict_batch("DFSCLUST", &w, &g, 1.0, 2.0).unwrap();
        let wide = predict_batch("DFSCLUST", &w, &g, 1.0, 16.0).unwrap();
        assert_eq!(narrow.batched_pages, wide.batched_pages);
        assert!(
            wide.submissions < narrow.submissions,
            "wider window must coalesce harder: {wide:?} vs {narrow:?}"
        );
        assert!(wide.coalescing_factor() > narrow.coalescing_factor());
        // Contiguous helper: window 1 degenerates to one submission per
        // page; the run estimator is bounded and monotone in density.
        assert_eq!(batched_submissions_contiguous(10.0, 1.0), 10.0);
        assert_eq!(batched_submissions_contiguous(10.0, 4.0), 3.0);
        assert_eq!(batched_submissions_contiguous(0.0, 4.0), 0.0);
        assert_eq!(expected_runs(0.0, 100.0), 0.0);
        assert!((expected_runs(100.0, 100.0) - 1.0).abs() < 1e-9);
        let sparse = expected_runs(5.0, 10_000.0);
        assert!(sparse > 4.9 && sparse <= 5.0, "{sparse}");
    }

    #[test]
    fn predict_by_name_covers_every_strategy() {
        let w = paper(50.0);
        let g = Geometry::estimate(&w);
        for name in ["DFS", "BFS", "BFSNODUP", "DFSCACHE", "DFSCLUST", "SMART"] {
            let p = predict_by_name(name, &w, &g).expect(name);
            assert!(p.total().is_finite() && p.total() > 0.0, "{name}");
        }
        assert!(predict_by_name("NOPE", &w, &g).is_none());
    }

    #[test]
    fn policy_term_scan_resistant_policies_bend_earlier() {
        // The poolbench gate operating point: 100-page pool, hot set that
        // fits, per-round flood that does not.
        let w = FloodWorkload {
            hot_pages: 60.0,
            scan_pages: 300.0,
            rounds: 10.0,
            buffer_pages: 100.0,
        };
        let lru = predict_policy_misses("lru", &w).unwrap();
        let clock = predict_policy_misses("clock", &w).unwrap();
        let sieve = predict_policy_misses("sieve", &w).unwrap();
        let two_q = predict_policy_misses("2q", &w).unwrap();
        // Recency policies re-fault the whole round, every round.
        assert_eq!(lru, 360.0 + 9.0 * 360.0);
        assert_eq!(clock, lru);
        assert_eq!(predict_policy_misses("fifo", &w), Some(lru));
        // Scan-resistant policies keep the hot set: only the flood re-misses.
        assert_eq!(sieve, 360.0 + 9.0 * 300.0);
        assert_eq!(two_q, sieve);
        assert!(sieve < lru);
        assert!(predict_policy_misses("mru", &w).is_none());
    }

    #[test]
    fn policy_term_collapses_when_the_round_fits_the_pool() {
        // Below every bend point all five policies predict compulsory
        // misses only — the curves are indistinguishable there.
        let w = FloodWorkload {
            hot_pages: 20.0,
            scan_pages: 30.0,
            rounds: 8.0,
            buffer_pages: 200.0,
        };
        for policy in ["lru", "fifo", "clock", "sieve", "2q"] {
            assert_eq!(predict_policy_misses(policy, &w), Some(50.0), "{policy}");
        }
    }

    #[test]
    fn policy_term_degrades_past_the_protected_capacity() {
        // Hot set bigger than 2Q's Am region: the overflow re-misses each
        // round, and SIEVE (protecting all but the hand's frame) misses
        // strictly less.
        let w = FloodWorkload {
            hot_pages: 90.0,
            scan_pages: 300.0,
            rounds: 10.0,
            buffer_pages: 100.0,
        };
        let sieve = predict_policy_misses("sieve", &w).unwrap();
        let two_q = predict_policy_misses("2q", &w).unwrap();
        // 2Q protects B - floor(B/4) = 75 pages; 15 hot pages churn.
        assert_eq!(two_q, 390.0 + 9.0 * (15.0 + 300.0));
        assert_eq!(sieve, 390.0 + 9.0 * 300.0);
        assert!(sieve < two_q);
        assert!(two_q < predict_policy_misses("lru", &w).unwrap());
        // Rel-error helper: exact match is zero, floor guards division.
        assert_eq!(policy_miss_rel_error(sieve, sieve), 0.0);
        assert_eq!(policy_miss_rel_error(3.0, 0.0), 3.0);
    }
}
