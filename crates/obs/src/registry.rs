//! The metrics registry and its structured snapshot.
//!
//! A [`MetricsRegistry`] hands out shared handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) keyed by metric name + label set, and can later collect
//! every registered metric into a [`MetricsSnapshot`] — the structured,
//! exporter-independent view that the Prometheus and JSON exporters render.
//!
//! Layers that predate the registry (the buffer pool's shard telemetry,
//! the unit-cache counters) keep their own cheap atomics; the engine folds
//! them into the same snapshot with the `push_*` builders, so every metric
//! flows through one format regardless of where it lives.
//!
//! Registration takes a mutex; the returned handles are lock-free. Hot
//! paths therefore resolve their handles once at construction time.

use crate::hist::{HistSnapshot, Histogram};
use crate::metric::{Counter, Gauge};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Label set of one metric sample: `(name, value)` pairs.
pub type Labels = Vec<(String, String)>;

/// Build a [`Labels`] value from `&str` pairs.
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram snapshot.
    Histogram(HistSnapshot),
}

/// One labeled sample within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The sample's label set (may be empty).
    pub labels: Labels,
    /// The sample's value.
    pub value: MetricValue,
}

/// All samples of one named metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`snake_case`, no trailing `_total`-style suffix
    /// mangling is applied — the name is exported verbatim).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Kind shared by every sample in the family.
    pub kind: MetricKind,
    /// The samples.
    pub samples: Vec<MetricSample>,
}

/// A structured point-in-time view of a set of metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Families in registration/insertion order.
    pub families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// An empty snapshot to build on.
    pub fn new() -> Self {
        Self::default()
    }

    fn family_mut(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut MetricFamily {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(
                self.families[i].kind, kind,
                "metric {name} registered with two kinds"
            );
            return &mut self.families[i];
        }
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    /// Append a counter sample.
    pub fn push_counter(&mut self, name: &str, help: &str, labels: Labels, v: u64) {
        self.family_mut(name, help, MetricKind::Counter)
            .samples
            .push(MetricSample {
                labels,
                value: MetricValue::Counter(v),
            });
    }

    /// Append a gauge sample.
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: Labels, v: f64) {
        self.family_mut(name, help, MetricKind::Gauge)
            .samples
            .push(MetricSample {
                labels,
                value: MetricValue::Gauge(v),
            });
    }

    /// Append a histogram sample.
    pub fn push_histogram(&mut self, name: &str, help: &str, labels: Labels, v: HistSnapshot) {
        self.family_mut(name, help, MetricKind::Histogram)
            .samples
            .push(MetricSample {
                labels,
                value: MetricValue::Histogram(v),
            });
    }

    /// Fold another snapshot's families into this one (same-name families
    /// are concatenated sample-wise).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for fam in other.families {
            let dst = self.family_mut(&fam.name, &fam.help, fam.kind);
            dst.samples.extend(fam.samples);
        }
    }

    /// Find a family by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Check structural health: every family has at least one sample, no
    /// gauge is NaN or infinite, histogram bucket sums match their counts,
    /// and every `required` name is present. The `corstat` smoke gate runs
    /// this in CI.
    pub fn validate(&self, required: &[&str]) -> Result<(), String> {
        for name in required {
            if self.family(name).is_none() {
                return Err(format!("required metric {name} is missing"));
            }
        }
        for fam in &self.families {
            if fam.samples.is_empty() {
                return Err(format!("metric {} has no samples", fam.name));
            }
            for s in &fam.samples {
                match &s.value {
                    MetricValue::Gauge(v) if !v.is_finite() => {
                        return Err(format!("gauge {} is not finite: {v}", fam.name));
                    }
                    MetricValue::Histogram(h) => {
                        let bucket_total: u64 = h.occupied_buckets().map(|(_, c)| c).sum();
                        if bucket_total != h.count() {
                            return Err(format!(
                                "histogram {}: buckets sum to {bucket_total}, count is {}",
                                fam.name,
                                h.count()
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

enum Handle {
    C(Arc<Counter>),
    G(Arc<Gauge>),
    H(Arc<Histogram>),
}

struct Registered {
    help: String,
    kind: MetricKind,
    samples: Vec<(Labels, Handle)>,
}

/// A registry of live metric handles.
///
/// ```
/// use cor_obs::{labels, MetricsRegistry};
///
/// let reg = MetricsRegistry::new();
/// let hits = reg.counter("cache_hits", "cache probe hits", labels(&[("level", "l1")]));
/// hits.inc();
/// let snap = reg.snapshot();
/// assert_eq!(snap.families.len(), 1);
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    order: Vec<String>,
    families: HashMap<String, Registered>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("MetricsRegistry")
            .field("families", &inner.order)
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    #[allow(clippy::too_many_arguments)]
    fn register<T>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: Labels,
        make: impl FnOnce() -> Arc<T>,
        wrap: impl Fn(Arc<T>) -> Handle,
        unwrap: impl Fn(&Handle) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut inner = self.inner.lock().expect("registry lock");
        if !inner.families.contains_key(name) {
            inner.order.push(name.to_string());
            inner.families.insert(
                name.to_string(),
                Registered {
                    help: help.to_string(),
                    kind,
                    samples: Vec::new(),
                },
            );
        }
        let fam = inner.families.get_mut(name).expect("just inserted");
        assert_eq!(fam.kind, kind, "metric {name} registered with two kinds");
        if let Some((_, h)) = fam.samples.iter().find(|(l, _)| *l == labels) {
            return unwrap(h).expect("kind checked above");
        }
        let handle = make();
        fam.samples.push((labels, wrap(Arc::clone(&handle))));
        handle
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, help: &str, labels: Labels) -> Arc<Counter> {
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Arc::new(Counter::new()),
            Handle::C,
            |h| match h {
                Handle::C(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: Labels) -> Arc<Gauge> {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Arc::new(Gauge::new()),
            Handle::G,
            |h| match h {
                Handle::G(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str, help: &str, labels: Labels) -> Arc<Histogram> {
        self.register(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Arc::new(Histogram::new()),
            Handle::H,
            |h| match h {
                Handle::H(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Collect every registered metric into a snapshot, in registration
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut snap = MetricsSnapshot::new();
        for name in &inner.order {
            let fam = &inner.families[name];
            for (labels, handle) in &fam.samples {
                match handle {
                    Handle::C(c) => snap.push_counter(name, &fam.help, labels.clone(), c.get()),
                    Handle::G(g) => {
                        snap.push_gauge(name, &fam.help, labels.clone(), g.get() as f64)
                    }
                    Handle::H(h) => {
                        snap.push_histogram(name, &fam.help, labels.clone(), h.snapshot())
                    }
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events", "events seen", labels(&[("kind", "a")]));
        let c2 = reg.counter("events", "events seen", labels(&[("kind", "a")]));
        c.add(3);
        c2.inc(); // same handle
        reg.counter("events", "events seen", labels(&[("kind", "b")]))
            .inc();
        reg.gauge("depth", "queue depth", Labels::new()).set(-2);
        reg.histogram("lat", "latency", Labels::new()).record(100);

        let snap = reg.snapshot();
        assert_eq!(snap.families.len(), 3);
        let events = snap.family("events").unwrap();
        assert_eq!(events.samples.len(), 2);
        assert_eq!(events.samples[0].value, MetricValue::Counter(4));
        assert_eq!(events.samples[1].value, MetricValue::Counter(1));
        assert!(snap.validate(&["events", "depth", "lat"]).is_ok());
        assert!(snap.validate(&["absent"]).is_err());
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "", Labels::new());
        reg.gauge("x", "", Labels::new());
    }

    #[test]
    fn snapshot_merge_concatenates() {
        let mut a = MetricsSnapshot::new();
        a.push_counter("io", "io ops", labels(&[("shard", "0")]), 5);
        let mut b = MetricsSnapshot::new();
        b.push_counter("io", "io ops", labels(&[("shard", "1")]), 7);
        b.push_gauge("ratio", "hit ratio", Labels::new(), 0.5);
        a.merge(b);
        assert_eq!(a.family("io").unwrap().samples.len(), 2);
        assert!(a.family("ratio").is_some());
    }

    #[test]
    fn validate_rejects_non_finite_gauges() {
        let mut s = MetricsSnapshot::new();
        s.push_gauge("bad", "", Labels::new(), f64::NAN);
        assert!(s.validate(&[]).is_err());
    }
}
