//! Wait/contention profiling: timed waits on the engine's blocking
//! points, fed into streaming histograms.
//!
//! Cumulative counters say how much work happened; the wait profile says
//! how long threads *stood still* and where. Four wait classes cover the
//! places the storage tiers can block today — exactly the queues the
//! ROADMAP's async-I/O and latch-crabbing items must measure before and
//! after they land:
//!
//! * [`WaitClass::ShardLock`] — acquiring a buffer-pool stripe mutex in
//!   `pin`/`pin_many` (lock striping's residual contention);
//! * [`WaitClass::FrameStall`] — stalled inside the pool because every
//!   candidate frame was pinned, waiting for a concurrent unpin before
//!   either finding a victim or giving up with `NoFreeFrames`;
//! * [`WaitClass::WalLock`] — acquiring the WAL mutex (the group-commit
//!   queue: appenders serialize here);
//! * [`WaitClass::WalFsync`] — inside the physical log sync that makes a
//!   group of commits durable;
//! * [`WaitClass::AioCompletion`] — a demand access blocked on an
//!   in-flight `cor-aio` run that has not completed yet (readahead that
//!   was speculated but not finished when the page was needed).
//!
//! Like [`heat`](crate::heat) and [`flight`](crate::flight), the profile
//! is a process global behind an [`AtomicBool`]: a feed site costs one
//! relaxed load while disabled (the default), and nothing here touches a
//! page or an [`IoStats`] counter, so the paper's I/O accounting is
//! byte-identical either way (asserted in
//! `crates/workload/tests/observability.rs`). While enabled, a wait is
//! two monotonic-clock reads plus one [`Histogram::record`].
//!
//! The engine folds the profile into its metrics report as the
//! `cor_wait_*` families (see [`push_to`]) only while enabled, keeping
//! disabled-state exports byte-identical to pre-wait ones.

use crate::hist::{HistSnapshot, Histogram};
use crate::registry::{labels, MetricsSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of distinct wait classes.
pub const WAIT_CLASSES: usize = 5;

/// Where a thread waited. Discriminants are stable (they index the
/// profile's histogram array and appear in exported labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WaitClass {
    /// Buffer-pool stripe mutex acquisition (`pin` / `pin_many`).
    ShardLock = 0,
    /// All candidate frames pinned: the wait for a concurrent unpin,
    /// whether it ended in a victim or a `NoFreeFrames` refusal.
    FrameStall = 1,
    /// WAL mutex acquisition — the group-commit queue.
    WalLock = 2,
    /// The physical log sync (fsync) making appended records durable.
    WalFsync = 3,
    /// Blocked harvesting an in-flight `cor-aio` run on demand access.
    AioCompletion = 4,
}

impl WaitClass {
    /// Every class, in discriminant order.
    pub const ALL: [WaitClass; WAIT_CLASSES] = [
        WaitClass::ShardLock,
        WaitClass::FrameStall,
        WaitClass::WalLock,
        WaitClass::WalFsync,
        WaitClass::AioCompletion,
    ];

    /// Stable snake_case name (the `class` label in exports).
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::ShardLock => "shard_lock",
            WaitClass::FrameStall => "frame_stall",
            WaitClass::WalLock => "wal_lock",
            WaitClass::WalFsync => "wal_fsync",
            WaitClass::AioCompletion => "aio_completion",
        }
    }

    /// The class's index into profile arrays (`0..WAIT_CLASSES`).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The live profile: one streaming histogram of wait nanoseconds per
/// class. All-atomic; feed sites never block on the profile itself.
pub struct WaitProfile {
    hists: [Histogram; WAIT_CLASSES],
}

impl Default for WaitProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        WaitProfile {
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Record one wait of `ns` nanoseconds under `class`.
    #[inline]
    pub fn record(&self, class: WaitClass, ns: u64) {
        self.hists[class.index()].record(ns);
    }

    /// The per-class histograms, captured.
    pub fn report(&self) -> WaitReport {
        WaitReport {
            classes: std::array::from_fn(|i| self.hists[i].snapshot()),
        }
    }

    /// Zero every histogram (quiescent points only).
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }
}

/// A point-in-time copy of the profile, indexed by [`WaitClass::index`].
#[derive(Debug, Clone)]
pub struct WaitReport {
    /// One wait-time histogram (nanoseconds) per class.
    pub classes: [HistSnapshot; WAIT_CLASSES],
}

impl WaitReport {
    /// The histogram for `class`.
    pub fn of(&self, class: WaitClass) -> &HistSnapshot {
        &self.classes[class.index()]
    }

    /// Waits recorded across every class.
    pub fn total_waits(&self) -> u64 {
        self.classes.iter().map(HistSnapshot::count).sum()
    }

    /// Nanoseconds waited across every class.
    pub fn total_wait_ns(&self) -> u64 {
        self.classes.iter().map(HistSnapshot::sum).sum()
    }

    /// Append the `cor_wait_*` families to a metrics snapshot, one
    /// labeled sample per class: `cor_wait_count_total` /
    /// `cor_wait_ns_total` counters plus the full `cor_wait_ns`
    /// histogram.
    pub fn push_to(&self, snapshot: &mut MetricsSnapshot) {
        for class in WaitClass::ALL {
            let lbls = labels(&[("class", class.name())]);
            let h = self.of(class);
            snapshot.push_counter(
                "cor_wait_count_total",
                "waits recorded per blocking point",
                lbls.clone(),
                h.count(),
            );
            snapshot.push_counter(
                "cor_wait_ns_total",
                "nanoseconds spent waiting per blocking point",
                lbls.clone(),
                h.sum(),
            );
            snapshot.push_histogram(
                "cor_wait_ns",
                "wait-time distribution per blocking point",
                lbls,
                h.clone(),
            );
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<WaitProfile> = OnceLock::new();

/// Whether wait profiling is on. One relaxed load — the entire cost of a
/// feed site while disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn wait profiling on or off process-wide. The profile keeps its
/// contents across off/on transitions; [`WaitProfile::reset`] via
/// [`global`] starts a fresh window.
pub fn enable(on: bool) {
    if on {
        let _ = global();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global profile (created on first use).
pub fn global() -> &'static WaitProfile {
    GLOBAL.get_or_init(WaitProfile::new)
}

/// Record a wait in the global profile — the feed-site entry point for
/// sites that already measured their own interval. A no-op costing one
/// relaxed load while disabled.
#[inline]
pub fn record(class: WaitClass, ns: u64) {
    if enabled() {
        global().record(class, ns);
    }
}

/// Run `f`, timing it as a wait under `class` when profiling is on.
/// The disabled path runs `f` directly with zero clock reads.
#[inline]
pub fn timed<R>(class: WaitClass, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let t0 = Instant::now();
    let r = f();
    global().record(class, t0.elapsed().as_nanos() as u64);
    r
}

/// The global profile's current report.
pub fn report() -> WaitReport {
    global().report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_are_stable_and_indexed() {
        assert_eq!(WaitClass::ALL.len(), WAIT_CLASSES);
        for (i, c) in WaitClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(WaitClass::ShardLock.name(), "shard_lock");
        assert_eq!(WaitClass::WalFsync.name(), "wal_fsync");
        assert_eq!(WaitClass::AioCompletion.name(), "aio_completion");
    }

    #[test]
    fn profile_records_per_class() {
        let p = WaitProfile::new();
        p.record(WaitClass::ShardLock, 100);
        p.record(WaitClass::ShardLock, 200);
        p.record(WaitClass::WalFsync, 5_000);
        let r = p.report();
        assert_eq!(r.of(WaitClass::ShardLock).count(), 2);
        assert_eq!(r.of(WaitClass::ShardLock).sum(), 300);
        assert_eq!(r.of(WaitClass::WalFsync).count(), 1);
        assert_eq!(r.of(WaitClass::FrameStall).count(), 0);
        assert_eq!(r.total_waits(), 3);
        assert_eq!(r.total_wait_ns(), 5_300);
        p.reset();
        assert_eq!(p.report().total_waits(), 0);
    }

    #[test]
    fn report_pushes_all_families_per_class() {
        let p = WaitProfile::new();
        p.record(WaitClass::WalLock, 42);
        let mut snap = MetricsSnapshot::default();
        p.report().push_to(&mut snap);
        for name in ["cor_wait_count_total", "cor_wait_ns_total", "cor_wait_ns"] {
            let fam = snap
                .family(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(fam.samples.len(), WAIT_CLASSES, "{name}");
        }
        snap.validate(&["cor_wait_count_total", "cor_wait_ns_total", "cor_wait_ns"])
            .expect("wait families are structurally valid");
    }

    #[test]
    fn timed_is_inert_when_disabled() {
        // The global switch is shared; this test only asserts the
        // disabled path (other tests must not enable it concurrently).
        assert!(!enabled());
        let before = report().total_waits();
        let v = timed(WaitClass::FrameStall, || 7);
        assert_eq!(v, 7);
        record(WaitClass::FrameStall, 99);
        assert_eq!(report().total_waits(), before);
    }
}
