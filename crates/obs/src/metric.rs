//! Scalar metrics: monotonic counters and set-anywhere gauges.
//!
//! Both are single relaxed atomics, so a handle can be shared freely
//! between worker threads and a reporter. When telemetry is disabled the
//! owning layer simply holds no handle (an `Option` checked per event) —
//! that is the "free when disabled" contract every instrumented layer in
//! this workspace follows.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depth, resident pages, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    #[inline]
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Hit ratio `hits / (hits + misses)` as a fraction in `[0, 1]`,
/// defined as 0.0 when nothing was probed (never NaN — exporters and the
/// `corstat` smoke gate require finite values).
pub fn hit_ratio(hits: u64, misses: u64) -> f64 {
    let probes = hits + misses;
    if probes == 0 {
        0.0
    } else {
        hits as f64 / probes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::new();
        g.set(10);
        g.adjust(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn hit_ratio_is_finite() {
        assert_eq!(hit_ratio(0, 0), 0.0);
        assert_eq!(hit_ratio(3, 1), 0.75);
        assert!(hit_ratio(u64::MAX / 2, u64::MAX / 2).is_finite());
    }
}
