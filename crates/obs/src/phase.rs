//! Thread-scoped phase attribution for physical page I/O.
//!
//! The paper's yardstick is *how many* pages a query transfers; this
//! module answers *where they go*. A strategy (or an access method on its
//! behalf) brackets a region of work with a [`PhaseGuard`]; while the
//! guard is alive, every page transfer the thread drives through an
//! [`IoStats`](../../cor_pagestore) handle that carries a
//! [`PhaseProfile`] is charged to that phase. Attribution is exact by
//! construction: the profile is incremented in the same call that bumps
//! the total counters, so per-phase sums always equal the totals (with
//! [`Phase::Other`] as the catch-all for unbracketed work).
//!
//! Two guard flavours keep nesting sane:
//!
//! * [`PhaseGuard::enter`] — unconditional. Used by the *strategy* layer
//!   for semantically owned regions (`temp_build`, `sort`, `merge_join`,
//!   `cluster_scan`, `cache_probe`, `cache_maintain`).
//! * [`PhaseGuard::enter_default`] — takes effect only when no phase is
//!   active. Used by the *access* layer (B-tree descents and leaf reads)
//!   so its fine-grained default attribution never overrides an explicit
//!   strategy-level bracket — a cluster range scan stays `cluster_scan`
//!   even though it runs through the same B-tree code.
//!
//! Everything here is free when unused: a guard is two thread-local
//! `Cell` operations plus one relaxed atomic load (the timing switch),
//! and profiles are attached per [`IoStats`] handle, so the paper's I/O
//! accounting is byte-identical whether or not anything is profiled.
//!
//! Wall-clock attribution is opt-in via [`enable_timing`] (a process
//! global, default off): phase transitions then partition the thread's
//! wall time exactly across phases, readable via [`take_thread_wall`].

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of distinct phases (including the [`Phase::Other`] catch-all).
pub const PHASE_COUNT: usize = 9;

/// Where a page transfer is charged. See the module docs for which layer
/// emits which phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Unbracketed work: database build, buffer flushes between runs,
    /// update application — the catch-all that makes phase sums exact.
    Other = 0,
    /// Internal (non-leaf) pages read while descending an index.
    IndexDescent = 1,
    /// Leaf/data pages fetched to produce records (base-relation access).
    HeapFetch = 2,
    /// Cache-relation reads while probing the unit-value cache.
    CacheProbe = 3,
    /// Cache-relation writes/deletes: insertions, invalidations,
    /// evictions, and inside-placement copy maintenance.
    CacheMaintain = 4,
    /// Building and forcing the BFS temporary relation.
    TempBuild = 5,
    /// External-sort run generation and run merging (spill I/O).
    Sort = 6,
    /// The merge-join co-scan of the sorted temporary against ChildRel.
    MergeJoin = 7,
    /// The DFSCLUST cluster-range scan and its ISAM-guided random
    /// accesses to foreign clusters.
    ClusterScan = 8,
}

impl Phase {
    /// Every phase, catch-all first, in tag order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Other,
        Phase::IndexDescent,
        Phase::HeapFetch,
        Phase::CacheProbe,
        Phase::CacheMaintain,
        Phase::TempBuild,
        Phase::Sort,
        Phase::MergeJoin,
        Phase::ClusterScan,
    ];

    /// Stable snake_case name (used by exporters and JSONL traces).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Other => "other",
            Phase::IndexDescent => "index_descent",
            Phase::HeapFetch => "heap_fetch",
            Phase::CacheProbe => "cache_probe",
            Phase::CacheMaintain => "cache_maintain",
            Phase::TempBuild => "temp_build",
            Phase::Sort => "sort",
            Phase::MergeJoin => "merge_join",
            Phase::ClusterScan => "cluster_scan",
        }
    }

    /// Invert [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The phase's index into profile arrays (`0..PHASE_COUNT`).
    pub fn index(self) -> usize {
        self as usize
    }
}

thread_local! {
    static CURRENT: Cell<Phase> = const { Cell::new(Phase::Other) };
    static WALL_NS: Cell<[u64; PHASE_COUNT]> = const { Cell::new([0; PHASE_COUNT]) };
    static LAST_SWITCH: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Process-wide switch for wall-clock phase attribution. Off by default
/// so guards in hot paths cost no clock reads.
static TIMING: AtomicBool = AtomicBool::new(false);

/// The phase currently charged on this thread.
pub fn current_phase() -> Phase {
    CURRENT.with(|c| c.get())
}

/// Turn wall-clock phase attribution on or off for the whole process.
/// While on, every phase transition reads the monotonic clock and the
/// elapsed interval is charged to the outgoing phase.
pub fn enable_timing(on: bool) {
    if on {
        // Start a fresh interval so time before enabling is not charged.
        LAST_SWITCH.with(|l| l.set(Some(Instant::now())));
    }
    TIMING.store(on, Ordering::Relaxed);
}

fn timing_on() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Charge the interval since the last transition to the current phase
/// and restart the interval clock.
fn charge_current() {
    let now = Instant::now();
    let prev = LAST_SWITCH.with(|l| l.replace(Some(now)));
    if let Some(t0) = prev {
        let ns = u64::try_from((now - t0).as_nanos()).unwrap_or(u64::MAX);
        let idx = current_phase().index();
        WALL_NS.with(|w| {
            let mut a = w.get();
            a[idx] = a[idx].saturating_add(ns);
            w.set(a);
        });
    }
}

/// Drain this thread's per-phase wall-clock accumulators (nanoseconds,
/// indexed by [`Phase::index`]), charging the still-open interval to the
/// current phase first. Returns zeros when timing was never enabled.
pub fn take_thread_wall() -> [u64; PHASE_COUNT] {
    if timing_on() {
        charge_current();
    }
    WALL_NS.with(|w| w.replace([0; PHASE_COUNT]))
}

/// RAII bracket setting the thread's phase; restores the previous phase
/// on drop. Innermost unconditional guard wins.
#[must_use = "a phase guard attributes I/O only while it is alive"]
pub struct PhaseGuard {
    prev: Phase,
    changed: bool,
}

impl PhaseGuard {
    /// Enter `phase` unconditionally (strategy-level attribution).
    pub fn enter(phase: Phase) -> PhaseGuard {
        let prev = current_phase();
        let changed = prev != phase;
        if changed {
            if timing_on() {
                charge_current();
            }
            CURRENT.with(|c| c.set(phase));
            crate::tracetree::on_phase_enter(phase);
        }
        PhaseGuard { prev, changed }
    }

    /// Enter `phase` only if no phase is active (access-layer default
    /// attribution; an explicit outer bracket is never overridden).
    pub fn enter_default(phase: Phase) -> PhaseGuard {
        let prev = current_phase();
        if prev == Phase::Other {
            PhaseGuard::enter(phase)
        } else {
            PhaseGuard {
                prev,
                changed: false,
            }
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if self.changed {
            if timing_on() {
                charge_current();
            }
            CURRENT.with(|c| c.set(self.prev));
            crate::tracetree::on_phase_exit();
        }
    }
}

/// Per-phase physical I/O counters, attached to an `IoStats` handle.
/// Incremented by the same calls that bump the totals, so phase sums are
/// exactly the totals.
#[derive(Debug, Default)]
pub struct PhaseProfile {
    reads: [AtomicU64; PHASE_COUNT],
    writes: [AtomicU64; PHASE_COUNT],
}

impl PhaseProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one page read to the thread's current phase.
    #[inline]
    pub fn record_read(&self) {
        self.reads[current_phase().index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Charge one page write to the thread's current phase.
    #[inline]
    pub fn record_write(&self) {
        self.writes[current_phase().index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Capture the current per-phase counters.
    pub fn snapshot(&self) -> PhaseSnapshot {
        let mut snap = PhaseSnapshot::default();
        for i in 0..PHASE_COUNT {
            snap.reads[i] = self.reads[i].load(Ordering::Relaxed);
            snap.writes[i] = self.writes[i].load(Ordering::Relaxed);
        }
        snap
    }

    /// Zero every counter (quiescent points only; same caveats as
    /// `IoStats::reset`).
    pub fn reset(&self) {
        for i in 0..PHASE_COUNT {
            self.reads[i].store(0, Ordering::Relaxed);
            self.writes[i].store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a [`PhaseProfile`], indexed by
/// [`Phase::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseSnapshot {
    /// Reads per phase.
    pub reads: [u64; PHASE_COUNT],
    /// Writes per phase.
    pub writes: [u64; PHASE_COUNT],
}

impl PhaseSnapshot {
    /// Per-phase I/O since an earlier snapshot (saturating).
    pub fn since(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        let mut out = PhaseSnapshot::default();
        for i in 0..PHASE_COUNT {
            out.reads[i] = self.reads[i].saturating_sub(earlier.reads[i]);
            out.writes[i] = self.writes[i].saturating_sub(earlier.writes[i]);
        }
        out
    }

    /// Reads charged to `phase`.
    pub fn reads_of(&self, phase: Phase) -> u64 {
        self.reads[phase.index()]
    }

    /// Writes charged to `phase`.
    pub fn writes_of(&self, phase: Phase) -> u64 {
        self.writes[phase.index()]
    }

    /// Total I/O charged to `phase`.
    pub fn io_of(&self, phase: Phase) -> u64 {
        self.reads_of(phase) + self.writes_of(phase)
    }

    /// Reads summed over every phase (equals the `IoStats` read total
    /// when the profile was attached before counting began).
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Writes summed over every phase.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Total I/O summed over every phase.
    pub fn total_io(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("no_such_phase"), None);
        assert_eq!(Phase::ALL.len(), PHASE_COUNT);
    }

    #[test]
    fn guards_nest_and_restore() {
        assert_eq!(current_phase(), Phase::Other);
        {
            let _a = PhaseGuard::enter(Phase::Sort);
            assert_eq!(current_phase(), Phase::Sort);
            {
                let _b = PhaseGuard::enter(Phase::MergeJoin);
                assert_eq!(current_phase(), Phase::MergeJoin);
            }
            assert_eq!(current_phase(), Phase::Sort);
        }
        assert_eq!(current_phase(), Phase::Other);
    }

    #[test]
    fn default_guard_never_overrides_explicit_bracket() {
        let _outer = PhaseGuard::enter(Phase::ClusterScan);
        {
            let _inner = PhaseGuard::enter_default(Phase::HeapFetch);
            assert_eq!(current_phase(), Phase::ClusterScan);
        }
        assert_eq!(current_phase(), Phase::ClusterScan);
        drop(_outer);
        {
            let _inner = PhaseGuard::enter_default(Phase::HeapFetch);
            assert_eq!(current_phase(), Phase::HeapFetch);
        }
        assert_eq!(current_phase(), Phase::Other);
    }

    #[test]
    fn profile_attributes_to_current_phase_and_sums_exactly() {
        let profile = PhaseProfile::new();
        profile.record_read(); // Other
        {
            let _g = PhaseGuard::enter(Phase::TempBuild);
            profile.record_read();
            profile.record_write();
        }
        {
            let _g = PhaseGuard::enter(Phase::Sort);
            profile.record_write();
        }
        let snap = profile.snapshot();
        assert_eq!(snap.reads_of(Phase::Other), 1);
        assert_eq!(snap.io_of(Phase::TempBuild), 2);
        assert_eq!(snap.writes_of(Phase::Sort), 1);
        assert_eq!(snap.total_reads(), 2);
        assert_eq!(snap.total_writes(), 2);
        assert_eq!(snap.total_io(), 4);
        let earlier = snap;
        profile.record_read();
        let delta = profile.snapshot().since(&earlier);
        assert_eq!(delta.total_io(), 1);
        assert_eq!(delta.reads_of(Phase::Other), 1);
        profile.reset();
        assert_eq!(profile.snapshot().total_io(), 0);
    }

    #[test]
    fn phases_are_thread_scoped() {
        let _g = PhaseGuard::enter(Phase::CacheProbe);
        std::thread::spawn(|| {
            assert_eq!(current_phase(), Phase::Other);
        })
        .join()
        .unwrap();
        assert_eq!(current_phase(), Phase::CacheProbe);
    }

    // One test owns the process-global timing switch (parallel tests
    // would race a split enable/disable pair).
    #[test]
    fn timing_partitions_wall_time_and_is_silent_when_off() {
        enable_timing(true);
        let _ = take_thread_wall(); // open a fresh window
        {
            let _g = PhaseGuard::enter(Phase::Sort);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let wall = take_thread_wall();
        assert!(
            wall[Phase::Sort.index()] >= 1_000_000,
            "sort phase must be charged its sleep: {wall:?}"
        );

        enable_timing(false);
        let _ = take_thread_wall();
        {
            let _g = PhaseGuard::enter(Phase::MergeJoin);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(take_thread_wall(), [0; PHASE_COUNT]);
    }
}
