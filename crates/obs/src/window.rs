//! Sliding-window views over cumulative streaming histograms.
//!
//! The engine's latency histograms are cumulative: perfect for end-of-run
//! roll-ups, useless for watching a rate bend during a soak run. A
//! [`SlidingWindow`] turns them into live views by keeping a short deque
//! of timestamped snapshots and answering "what happened over the last
//! `max_age`?" with [`HistSnapshot::delta`] — exact bucket-wise
//! subtraction, no sample retention, no extra cost on the recording path.
//!
//! The intended loop (what `corstat --watch` runs):
//!
//! ```ignore
//! let mut win = SlidingWindow::new(Duration::from_secs(10));
//! loop {
//!     win.push(hist.snapshot());
//!     if let Some(view) = win.view() {
//!         eprintln!("{:.0} q/s, p99 {}ns", view.rate_per_sec, view.delta.quantile(0.99));
//!     }
//!     thread::sleep(tick);
//! }
//! ```

use crate::hist::HistSnapshot;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A bounded deque of timestamped cumulative snapshots, answering
/// rate/percentile questions about the trailing `max_age` window.
#[derive(Debug)]
pub struct SlidingWindow {
    max_age: Duration,
    samples: VecDeque<(Instant, HistSnapshot)>,
}

/// What happened over a window: the span it actually covers, the exact
/// delta histogram of samples recorded inside it, and the sample rate.
#[derive(Debug, Clone)]
pub struct WindowView {
    /// Time between the window's oldest and newest snapshots.
    pub span: Duration,
    /// Histogram of exactly the samples recorded inside the window.
    pub delta: HistSnapshot,
    /// Samples per second over the span (0.0 for a degenerate span).
    pub rate_per_sec: f64,
}

impl SlidingWindow {
    /// A window covering the trailing `max_age`.
    pub fn new(max_age: Duration) -> Self {
        SlidingWindow {
            max_age,
            samples: VecDeque::new(),
        }
    }

    /// The configured window length.
    pub fn max_age(&self) -> Duration {
        self.max_age
    }

    /// Record a cumulative snapshot taken now, dropping snapshots that
    /// have aged out. One snapshot older than `max_age` is retained as
    /// the window's baseline, so a freshly-pruned window still covers a
    /// full `max_age` rather than restarting from nothing.
    pub fn push(&mut self, snapshot: HistSnapshot) {
        self.push_at(Instant::now(), snapshot);
    }

    /// [`push`](Self::push) with an explicit timestamp (tests, replays).
    /// Timestamps must be non-decreasing.
    pub fn push_at(&mut self, at: Instant, snapshot: HistSnapshot) {
        self.samples.push_back((at, snapshot));
        // Keep the newest sample that is *older* than max_age as the
        // baseline; drop everything before it.
        while self.samples.len() > 1 {
            let second_age = at.saturating_duration_since(self.samples[1].0);
            if second_age >= self.max_age {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Snapshots currently retained (baseline included).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no snapshot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The trailing window: newest snapshot minus the baseline. `None`
    /// until two snapshots exist (a rate needs a span).
    pub fn view(&self) -> Option<WindowView> {
        let (t0, first) = self.samples.front()?;
        let (t1, last) = self.samples.back()?;
        if self.samples.len() < 2 {
            return None;
        }
        let span = t1.saturating_duration_since(*t0);
        let delta = last.delta(first);
        let rate_per_sec = if span.as_secs_f64() > 0.0 {
            delta.count() as f64 / span.as_secs_f64()
        } else {
            0.0
        };
        Some(WindowView {
            span,
            delta,
            rate_per_sec,
        })
    }

    /// Drop every retained snapshot.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn view_needs_two_samples() {
        let mut w = SlidingWindow::new(Duration::from_secs(1));
        assert!(w.view().is_none());
        w.push(HistSnapshot::default());
        assert!(w.view().is_none());
        w.push(HistSnapshot::default());
        assert!(w.view().is_some());
    }

    #[test]
    fn window_reports_only_recent_samples() {
        let h = Histogram::new();
        let mut w = SlidingWindow::new(Duration::from_secs(10));
        let t0 = Instant::now();
        h.record(1); // before the window baseline
        w.push_at(t0, h.snapshot());
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        w.push_at(t0 + Duration::from_secs(2), h.snapshot());
        let view = w.view().expect("two samples");
        assert_eq!(view.delta.count(), 3, "baseline sample excluded");
        assert_eq!(view.span, Duration::from_secs(2));
        assert!((view.rate_per_sec - 1.5).abs() < 1e-9);
        // Window min is its first occupied bucket's lower edge: above the
        // baseline sample (1), at most the smallest window sample (100).
        assert!(view.delta.min() > 1 && view.delta.min() <= 100);
        assert!(view.delta.max() >= 300);
    }

    #[test]
    fn old_samples_age_out_but_baseline_survives() {
        let h = Histogram::new();
        let mut w = SlidingWindow::new(Duration::from_secs(5));
        let t0 = Instant::now();
        for i in 0..10u64 {
            h.record(i);
            w.push_at(t0 + Duration::from_secs(i), h.snapshot());
        }
        // Window is 5s; at t=9 the baseline is the newest sample with
        // age >= 5s, i.e. t=4.
        assert!(w.len() <= 6, "pruned to the window: {}", w.len());
        let view = w.view().expect("view");
        assert_eq!(view.span, Duration::from_secs(5));
        assert_eq!(view.delta.count(), 5, "samples 5..=9");
    }

    #[test]
    fn zero_span_has_zero_rate() {
        let mut w = SlidingWindow::new(Duration::from_secs(1));
        let t = Instant::now();
        let h = Histogram::new();
        w.push_at(t, h.snapshot());
        h.record(7);
        w.push_at(t, h.snapshot());
        let view = w.view().expect("view");
        assert_eq!(view.delta.count(), 1);
        assert_eq!(view.rate_per_sec, 0.0);
    }
}
