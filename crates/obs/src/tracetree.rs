//! Causal trace trees: per-query parent/child span trees with exact I/O
//! attribution, exported as Chrome trace-event JSON.
//!
//! The span ring ([`TraceRing`](crate::trace::TraceRing)) answers "what
//! ran recently" with one flat span per operation; the phase layer
//! ([`phase`](crate::phase)) answers "which kind of work got the pages"
//! with per-query aggregates. Neither can say *where a single query's
//! time and I/O went, in order, with causality* — that needs a tree.
//! This module records one: every [`PhaseGuard`](crate::phase::PhaseGuard)
//! transition on the traced thread opens or closes a node, and every
//! page transfer the thread drives is charged to the innermost open
//! node. Because nodes open and close exactly when the thread's current
//! phase changes, per-phase sums over the tree's nodes equal the query's
//! [`PhaseProfile`](crate::phase::PhaseProfile) deltas *exactly* — the
//! same by-construction guarantee the phase layer gives, one level finer
//! (proptested in `crates/obs/tests/tracetree.rs`).
//!
//! Tracing is thread-scoped and strictly on-demand: a trace exists only
//! between [`start`] and [`TraceGuard::finish`] on one thread. When no
//! trace is active — the default, always — a feed site costs one
//! thread-local flag load and touches no page or [`IoStats`] counter, so
//! the paper's I/O accounting is byte-identical with the tracer compiled
//! in (asserted in `crates/workload/tests/observability.rs`).
//!
//! The finished [`TraceTree`] renders to Chrome trace-event JSON
//! ([`TraceTree::to_chrome_json`]) — load it at `chrome://tracing` or in
//! Perfetto. `Engine::trace_query` and the `corstat --trace` leg are the
//! producing ends; slow-query captures link flight-recorder events to
//! trace ids (`FlightKind::TraceLink`) so crashtest black boxes can be
//! joined with trees.

use crate::export::escape_json;
use crate::phase::{current_phase, Phase, PHASE_COUNT};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cap on nodes collected per trace. A query that switches phases more
/// often than this keeps charging the innermost retained node and the
/// overflow is reported in [`TraceTree::dropped`] — the tree stays a
/// tree, attribution stays exact, memory stays bounded.
pub const MAX_TRACE_NODES: usize = 4096;

/// One node of a trace tree: a contiguous interval during which the
/// traced thread stayed in one phase, with the I/O it drove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceNode {
    /// The phase the thread was in for this interval.
    pub phase: Phase,
    /// Index of the parent node in [`TraceTree::nodes`]; `None` only for
    /// the root (index 0).
    pub parent: Option<usize>,
    /// Nanoseconds from trace start to this node opening.
    pub start_ns: u64,
    /// The node's duration in nanoseconds (interval end − start).
    pub dur_ns: u64,
    /// Page reads charged while this node was innermost.
    pub reads: u64,
    /// Page writes charged while this node was innermost.
    pub writes: u64,
}

/// A finished causal trace: nodes in opening order, root at index 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// Process-unique trace id (shared with flight-recorder
    /// `trace_link` events for joining).
    pub id: u64,
    /// Caller-supplied label (query / strategy name).
    pub label: String,
    /// The nodes, in the order they opened. Index 0 is the root; every
    /// other node's `parent` points at an earlier index.
    pub nodes: Vec<TraceNode>,
    /// Phase transitions not materialised as nodes because the trace hit
    /// [`MAX_TRACE_NODES`]; their I/O was charged to the innermost
    /// retained node, so sums stay exact.
    pub dropped: u64,
    /// Total traced wall time in nanoseconds (root interval).
    pub total_ns: u64,
}

impl TraceTree {
    /// Page reads summed over every node.
    pub fn total_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.reads).sum()
    }

    /// Page writes summed over every node.
    pub fn total_writes(&self) -> u64 {
        self.nodes.iter().map(|n| n.writes).sum()
    }

    /// Per-phase read sums over the nodes, indexed by [`Phase::index`] —
    /// directly comparable to a `PhaseSnapshot` delta.
    pub fn reads_by_phase(&self) -> [u64; PHASE_COUNT] {
        let mut out = [0u64; PHASE_COUNT];
        for n in &self.nodes {
            out[n.phase.index()] += n.reads;
        }
        out
    }

    /// Per-phase write sums over the nodes, indexed by [`Phase::index`].
    pub fn writes_by_phase(&self) -> [u64; PHASE_COUNT] {
        let mut out = [0u64; PHASE_COUNT];
        for n in &self.nodes {
            out[n.phase.index()] += n.writes;
        }
        out
    }

    /// Check the tree is well-formed: a single root at index 0, every
    /// parent link pointing at an earlier node, and every child interval
    /// contained in its parent's.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("trace has no nodes".into());
        }
        if self.nodes[0].parent.is_some() {
            return Err("root node has a parent".into());
        }
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            let p = match n.parent {
                Some(p) if p < i => p,
                Some(p) => return Err(format!("node {i} has forward parent {p}")),
                None => return Err(format!("node {i} is a second root")),
            };
            let parent = &self.nodes[p];
            if n.start_ns < parent.start_ns
                || n.start_ns + n.dur_ns > parent.start_ns + parent.dur_ns
            {
                return Err(format!(
                    "node {i} interval [{}, {}] escapes parent {p} [{}, {}]",
                    n.start_ns,
                    n.start_ns + n.dur_ns,
                    parent.start_ns,
                    parent.start_ns + parent.dur_ns
                ));
            }
        }
        Ok(())
    }

    /// Render as Chrome trace-event JSON (one complete `"ph":"X"` event
    /// per node, microsecond timestamps) — loadable in Perfetto or
    /// `chrome://tracing`. The root event carries the trace label; every
    /// event's `args` carries the node's reads/writes and tree links.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.nodes.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = if i == 0 {
                format!("{}: {}", escape_json(&self.label), n.phase.name())
            } else {
                n.phase.name().to_string()
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"cor\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"trace_id\":{},\"node\":{},\
                 \"parent\":{},\"reads\":{},\"writes\":{}}}}}",
                name,
                n.start_ns as f64 / 1_000.0,
                n.dur_ns as f64 / 1_000.0,
                self.id,
                i,
                n.parent.map_or(-1i64, |p| p as i64),
                n.reads,
                n.writes,
            ));
        }
        out.push_str(&format!(
            "],\"trace_id\":{},\"dropped\":{}}}",
            self.id, self.dropped
        ));
        out
    }
}

/// A stack entry: the open node's index, and whether this entry owns
/// closing it (overflow entries alias the retained innermost node and
/// own nothing).
struct StackEntry {
    node: usize,
    owns: bool,
}

struct Collector {
    id: u64,
    label: String,
    t0: Instant,
    nodes: Vec<TraceNode>,
    stack: Vec<StackEntry>,
    dropped: u64,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Whether a trace is being collected on *this* thread. One thread-local
/// flag load — the entire cost of a feed site while no trace runs.
#[inline]
pub fn thread_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Begin collecting a trace on this thread. The root node opens in the
/// thread's current phase; phase transitions and page transfers feed the
/// tree until [`TraceGuard::finish`]. Returns an inert guard (finish
/// yields `None`) if a trace is already active on this thread — traces
/// do not nest.
pub fn start(label: &str) -> TraceGuard {
    if thread_active() {
        return TraceGuard { started: false };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut nodes = Vec::with_capacity(64);
    nodes.push(TraceNode {
        phase: current_phase(),
        parent: None,
        start_ns: 0,
        dur_ns: 0,
        reads: 0,
        writes: 0,
    });
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector {
            id,
            label: label.to_string(),
            t0: Instant::now(),
            nodes,
            stack: vec![StackEntry {
                node: 0,
                owns: true,
            }],
            dropped: 0,
        });
    });
    ACTIVE.with(|a| a.set(true));
    TraceGuard { started: true }
}

/// RAII handle for an in-flight trace. [`finish`](TraceGuard::finish)
/// closes it and returns the tree; dropping without finishing discards
/// the collection.
#[must_use = "a trace is collected only until the guard is finished or dropped"]
pub struct TraceGuard {
    started: bool,
}

impl TraceGuard {
    /// Close every open node and return the finished tree. `None` when
    /// this guard never started a trace (nested [`start`]).
    pub fn finish(mut self) -> Option<TraceTree> {
        if !self.started {
            return None;
        }
        self.started = false;
        ACTIVE.with(|a| a.set(false));
        let col = COLLECTOR.with(|c| c.borrow_mut().take())?;
        let Collector {
            id,
            label,
            t0,
            mut nodes,
            stack,
            dropped,
        } = col;
        let total_ns = t0.elapsed().as_nanos() as u64;
        for entry in stack.into_iter().rev() {
            if entry.owns {
                let n = &mut nodes[entry.node];
                n.dur_ns = total_ns.saturating_sub(n.start_ns);
            }
        }
        Some(TraceTree {
            id,
            label,
            nodes,
            dropped,
            total_ns,
        })
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.started {
            ACTIVE.with(|a| a.set(false));
            COLLECTOR.with(|c| *c.borrow_mut() = None);
        }
    }
}

/// Feed site for [`PhaseGuard::enter`](crate::phase::PhaseGuard): the
/// traced thread switched into `phase` — open a child of the innermost
/// node. No-op (one flag load) when no trace is active on this thread.
#[inline]
pub fn on_phase_enter(phase: Phase) {
    if !thread_active() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let top = col.stack.last().expect("root entry is never popped").node;
            if col.nodes.len() >= MAX_TRACE_NODES {
                col.dropped += 1;
                col.stack.push(StackEntry {
                    node: top,
                    owns: false,
                });
                return;
            }
            let idx = col.nodes.len();
            col.nodes.push(TraceNode {
                phase,
                parent: Some(top),
                start_ns: col.t0.elapsed().as_nanos() as u64,
                dur_ns: 0,
                reads: 0,
                writes: 0,
            });
            col.stack.push(StackEntry {
                node: idx,
                owns: true,
            });
        }
    });
}

/// Feed site for `PhaseGuard`'s drop: the transition that opened the
/// innermost node unwound — close it. Transitions that happened before
/// the trace started unwind against the root and are ignored (the root
/// closes only at [`TraceGuard::finish`]).
#[inline]
pub fn on_phase_exit() {
    if !thread_active() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            if col.stack.len() <= 1 {
                return;
            }
            let entry = col.stack.pop().expect("len checked above");
            if entry.owns {
                let end = col.t0.elapsed().as_nanos() as u64;
                let n = &mut col.nodes[entry.node];
                n.dur_ns = end.saturating_sub(n.start_ns);
            }
        }
    });
}

/// Feed site for `IoStats::record_read`: charge one page read to the
/// innermost open node. No-op (one flag load) when no trace is active.
#[inline]
pub fn charge_read() {
    if !thread_active() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let top = col.stack.last().expect("root entry is never popped").node;
            col.nodes[top].reads += 1;
        }
    });
}

/// Feed site for `IoStats::record_write`: charge one page write to the
/// innermost open node. No-op (one flag load) when no trace is active.
#[inline]
pub fn charge_write() {
    if !thread_active() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let top = col.stack.last().expect("root entry is never popped").node;
            col.nodes[top].writes += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseGuard;

    #[test]
    fn no_trace_means_feed_sites_are_inert() {
        assert!(!thread_active());
        on_phase_enter(Phase::Sort);
        on_phase_exit();
        charge_read();
        charge_write();
        assert!(!thread_active());
    }

    #[test]
    fn guards_build_a_tree_with_exact_io() {
        let guard = start("q1");
        charge_read(); // root, Other
        {
            let _a = PhaseGuard::enter(Phase::IndexDescent);
            charge_read();
            charge_read();
            {
                let _b = PhaseGuard::enter(Phase::HeapFetch);
                charge_read();
                charge_write();
            }
            charge_read(); // back in IndexDescent
        }
        let tree = guard.finish().expect("trace started");
        tree.validate().expect("well-formed");
        assert_eq!(tree.nodes.len(), 3);
        assert_eq!(tree.nodes[0].phase, Phase::Other);
        assert_eq!(tree.nodes[1].phase, Phase::IndexDescent);
        assert_eq!(tree.nodes[1].parent, Some(0));
        assert_eq!(tree.nodes[2].phase, Phase::HeapFetch);
        assert_eq!(tree.nodes[2].parent, Some(1));
        assert_eq!(tree.nodes[0].reads, 1);
        assert_eq!(tree.nodes[1].reads, 3);
        assert_eq!(tree.nodes[2].reads, 1);
        assert_eq!(tree.nodes[2].writes, 1);
        assert_eq!(tree.total_reads(), 5);
        assert_eq!(tree.total_writes(), 1);
        assert_eq!(tree.dropped, 0);
        assert!(!thread_active());
    }

    #[test]
    fn phase_sums_match_by_phase_accessors() {
        let guard = start("q2");
        {
            let _a = PhaseGuard::enter(Phase::Sort);
            charge_write();
            {
                let _b = PhaseGuard::enter(Phase::MergeJoin);
                charge_read();
            }
            {
                let _c = PhaseGuard::enter(Phase::MergeJoin);
                charge_read();
            }
        }
        let tree = guard.finish().unwrap();
        let reads = tree.reads_by_phase();
        let writes = tree.writes_by_phase();
        assert_eq!(reads[Phase::MergeJoin.index()], 2);
        assert_eq!(writes[Phase::Sort.index()], 1);
        assert_eq!(reads.iter().sum::<u64>(), tree.total_reads());
        // Two sibling MergeJoin brackets become two distinct nodes.
        assert_eq!(
            tree.nodes
                .iter()
                .filter(|n| n.phase == Phase::MergeJoin)
                .count(),
            2
        );
    }

    #[test]
    fn traces_do_not_nest() {
        let outer = start("outer");
        let inner = start("inner");
        assert!(inner.finish().is_none());
        assert!(
            thread_active(),
            "inner finish must not kill the outer trace"
        );
        let tree = outer.finish().unwrap();
        assert_eq!(tree.label, "outer");
        assert!(!thread_active());
    }

    #[test]
    fn dropping_the_guard_discards_the_trace() {
        {
            let _g = start("discarded");
            charge_read();
        }
        assert!(!thread_active());
        // A fresh trace starts clean.
        let g = start("fresh");
        let tree = g.finish().unwrap();
        assert_eq!(tree.total_reads(), 0);
    }

    #[test]
    fn overflow_keeps_attribution_exact() {
        let guard = start("overflow");
        for _ in 0..MAX_TRACE_NODES + 10 {
            let _g = PhaseGuard::enter(Phase::HeapFetch);
            charge_read();
        }
        let tree = guard.finish().unwrap();
        tree.validate().expect("still well-formed");
        assert!(tree.nodes.len() <= MAX_TRACE_NODES);
        assert_eq!(tree.dropped, 11); // 4095 children fit under the root
        assert_eq!(tree.total_reads(), (MAX_TRACE_NODES + 10) as u64);
    }

    #[test]
    fn pre_trace_guards_unwind_harmlessly() {
        let outer = PhaseGuard::enter(Phase::ClusterScan);
        let guard = start("straddle");
        charge_read();
        drop(outer); // exits a transition recorded before the trace began
        charge_read(); // still charged to the root
        let tree = guard.finish().unwrap();
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.nodes[0].phase, Phase::ClusterScan);
        assert_eq!(tree.nodes[0].reads, 2);
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let guard = start("q\"3\"");
        {
            let _a = PhaseGuard::enter(Phase::TempBuild);
            charge_write();
        }
        let tree = guard.finish().unwrap();
        let json = tree.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("q\\\"3\\\""));
        assert!(json.contains("\"name\":\"temp_build\""));
        assert!(json.contains(&format!("\"trace_id\":{}", tree.id)));
        assert!(json.ends_with("}"));
        // Balanced braces/brackets outside strings — cheap structural check.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = start("a").finish().unwrap();
        let b = start("b").finish().unwrap();
        assert_ne!(a.id, b.id);
    }
}
