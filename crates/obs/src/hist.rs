//! Log-bucketed streaming histograms.
//!
//! The driver used to compute p99 latency by collecting every sample in a
//! `Vec` and sorting it — O(n log n) at report time, O(n) memory, and
//! impossible to merge across threads without shipping the vectors around.
//! This histogram records a `u64` sample with two relaxed atomic adds into
//! a fixed 252-bucket table, so it can be shared by reference between
//! worker threads, sampled live while a run is in flight, and merged by
//! bucket-wise addition.
//!
//! # Bucket layout
//!
//! Values 0..7 get exact unit buckets. From 8 up, each power-of-two octave
//! `[2^e, 2^(e+1))` is split into 4 linear sub-buckets, so the relative
//! error of a reported quantile is bounded by the sub-bucket width: at most
//! 1/4 of the value (and the reported bound is the bucket's *upper* edge,
//! clamped to the observed max, so quantiles never under-report). 252
//! buckets cover the full `u64` range — nanosecond latencies and page
//! counts alike need no configuration.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in every histogram (unit buckets 0..8 plus 4
/// sub-buckets per octave up to `u64::MAX`).
pub const HIST_BUCKETS: usize = 252;

/// Index of the bucket `v` falls into.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // v in [2^exp, 2^(exp+1))
        let sub = ((v >> (exp - 2)) & 3) as usize;
        ((exp - 3) << 2) + sub + 8
    }
}

/// Largest value that maps into bucket `idx` (inclusive upper edge).
pub fn bucket_upper(idx: usize) -> u64 {
    debug_assert!(idx < HIST_BUCKETS);
    if idx < 8 {
        idx as u64
    } else {
        let exp = 3 + (idx - 8) / 4;
        let sub = ((idx - 8) % 4) as u64;
        let width = 1u64 << (exp - 2);
        // lo + width - 1; for the last bucket this is exactly u64::MAX.
        (1u64 << exp) + sub * width + (width - 1)
    }
}

/// A concurrent streaming histogram over `u64` samples.
///
/// All mutation is relaxed-atomic: `record` is wait-free and safe to call
/// from any number of threads through a shared reference. A [`snapshot`]
/// taken while writers are active is a monitoring view — each counter is
/// individually exact but the set is not read in one instant.
///
/// [`snapshot`]: Histogram::snapshot
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Capture the current bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between experiment phases; like
    /// `IoStats::reset`, concurrent recording during a reset can leave the
    /// histogram mid-way between old and new state).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable, queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (exact — from the tracked sum, not
    /// the buckets). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the rank-`ceil(q * count)` sample, clamped to the
    /// observed `[min, max]` so estimates never fall outside the data.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot into this one (bucket-wise addition). The
    /// result is exactly the histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // The live histogram's atomic adds wrap on overflow; wrap the same
        // way here so merge stays exactly equal to the combined stream.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded between `earlier` and `self`, assuming
    /// `earlier` is a previous snapshot of the same histogram: bucket-wise
    /// subtraction, so the result is exactly the histogram of the samples
    /// recorded in between. This is what turns cumulative histograms into
    /// sliding-window views (see `cor_obs::window`).
    ///
    /// Min/max of the window cannot be recovered from cumulative state, so
    /// they are re-derived from the delta's occupied buckets (lower edge of
    /// the first, upper edge of the last) — quantiles stay clamped to
    /// values the window could actually contain. Snapshots taken out of
    /// order (a counter appearing to shrink) saturate to empty rather than
    /// underflow.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 {
            return HistSnapshot::default();
        }
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        let (min, max) = match (first, last) {
            (Some(f), Some(l)) => {
                // Lower edge of bucket f: one past the previous bucket's
                // upper edge (unit buckets are their own edge).
                let lo = if f == 0 { 0 } else { bucket_upper(f - 1) + 1 };
                (lo, bucket_upper(l))
            }
            _ => return HistSnapshot::default(),
        };
        HistSnapshot {
            buckets,
            count,
            // Counters wrap like the live histogram's atomics; subtract the
            // same way so later-minus-earlier stays exact across a wrap.
            sum: self.sum.wrapping_sub(earlier.sum),
            min,
            max,
        }
    }

    /// Occupied buckets as `(inclusive upper edge, count)`, in increasing
    /// order of edge.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_upper(idx), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Every value maps into a bucket whose upper edge is >= the value,
        // and bucket upper edges are strictly increasing.
        for idx in 1..HIST_BUCKETS {
            assert!(bucket_upper(idx) > bucket_upper(idx - 1), "idx {idx}");
        }
        for v in (0..200u64).chain([1 << 20, (1 << 20) + 123, u64::MAX / 2, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "v={v} idx={idx}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "v={v} idx={idx}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 7);
        assert_eq!(s.mean(), 13.0 / 5.0);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, exact) in [(0.5, 5_000u64), (0.99, 9_900), (1.0, 10_000)] {
            let est = s.quantile(q);
            assert!(est >= exact, "q={q}: {est} < {exact}");
            assert!(
                (est as f64) <= exact as f64 * 1.25 + 1.0,
                "q={q}: {est} vs {exact}"
            );
        }
    }

    #[test]
    fn quantile_is_clamped_to_observed_range() {
        let h = Histogram::new();
        h.record(1000); // bucket upper edge is > 1000
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1000);
        assert_eq!(s.quantile(0.99), 1000);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s, HistSnapshot::default());
    }

    #[test]
    fn merge_equals_combined_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1u64, 5, 9, 100, 4096] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 9, 77, 1 << 30] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 40_000);
        assert_eq!(snap.occupied_buckets().map(|(_, c)| c).sum::<u64>(), 40_000);
    }

    #[test]
    fn delta_recovers_the_window() {
        let h = Histogram::new();
        for v in [1u64, 5, 9] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [100u64, 4096, 7] {
            h.record(v);
        }
        let d = h.snapshot().delta(&earlier);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 100 + 4096 + 7);
        // Window min/max come from bucket edges: 7 is a unit bucket
        // (exact); 4096 reports its bucket's upper edge.
        assert_eq!(d.min(), 7);
        assert_eq!(d.max(), bucket_upper(bucket_index(4096)));
        assert_eq!(d.occupied_buckets().map(|(_, c)| c).sum::<u64>(), 3);
        // Compare against a histogram of just the window's samples,
        // bucket-for-bucket.
        let w = Histogram::new();
        for v in [100u64, 4096, 7] {
            w.record(v);
        }
        let wsnap = w.snapshot();
        assert_eq!(
            d.occupied_buckets().collect::<Vec<_>>(),
            wsnap.occupied_buckets().collect::<Vec<_>>()
        );
        assert!(d.quantile(0.5) >= 7 && d.quantile(0.5) <= d.max());
    }

    #[test]
    fn delta_of_identical_snapshots_is_empty() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.delta(&s), HistSnapshot::default());
        // Out-of-order snapshots saturate to empty, never underflow.
        assert_eq!(HistSnapshot::default().delta(&s), HistSnapshot::default());
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }
}
