//! Lock-free bounded span ring.
//!
//! Query spans (strategy, I/O delta, wall time) are pushed from whatever
//! thread ran the query and harvested later by a reporter. The ring keeps
//! the most recent `capacity` spans: writers claim a slot with one
//! `fetch_add` ticket and publish through a per-slot sequence word
//! (seqlock), so pushing never blocks and never allocates. A reader that
//! races with a writer on the same slot simply skips that span — tracing
//! is best-effort by design, unlike the exact metric counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// One traced operation. All fields are plain `u64`s so a span can be
/// published atomically field-by-field under the slot's seqlock; the
/// pushing layer owns the meaning of `op`/`tag`/`payload` (the engine maps
/// `op` to retrieve/update/sequence and `tag` to the strategy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Operation kind code (owned by the pushing layer).
    pub op: u64,
    /// Operation tag, e.g. a strategy id.
    pub tag: u64,
    /// Physical page reads attributed to the operation.
    pub reads: u64,
    /// Physical page writes attributed to the operation.
    pub writes: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Free-form payload, e.g. values returned.
    pub payload: u64,
}

struct Slot {
    /// Seqlock word: `2*ticket + 1` while the owning writer is mid-write,
    /// `2*ticket + 2` once the span for `ticket` is published, 0 when the
    /// slot has never been written.
    seq: AtomicU64,
    op: AtomicU64,
    tag: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    wall_ns: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            op: AtomicU64::new(0),
            tag: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity ring of the most recent [`Span`]s.
pub struct TraceRing {
    slots: Vec<Slot>,
    next: AtomicU64,
    /// Spans a [`snapshot`](TraceRing::snapshot) could not return because a
    /// writer held or recycled the slot mid-read. Every ticket below the
    /// snapshot's end was claimed by a writer, so each skip is a real span
    /// lost to the race, not an empty slot.
    race_skips: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.pushed())
            .finish()
    }
}

impl TraceRing {
    /// A ring remembering the last `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs at least one slot");
        TraceRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            next: AtomicU64::new(0),
            race_skips: AtomicU64::new(0),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans pushed over the ring's lifetime (may exceed capacity).
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Spans skipped by snapshots racing writers (see `race_skips`).
    pub fn race_skips(&self) -> u64 {
        self.race_skips.load(Ordering::Relaxed)
    }

    /// Total spans lost to observation so far: ring overwrite (only the
    /// last `capacity` survive) plus reader/writer race skips. Lets a
    /// consumer distinguish "no queries ran" from "spans were dropped".
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.capacity() as u64) + self.race_skips()
    }

    /// Record a span, overwriting the oldest when full. Wait-free.
    pub fn push(&self, span: Span) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Seqlock write: odd = in progress, even = published.
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        slot.op.store(span.op, Ordering::Relaxed);
        slot.tag.store(span.tag, Ordering::Relaxed);
        slot.reads.store(span.reads, Ordering::Relaxed);
        slot.writes.store(span.writes, Ordering::Relaxed);
        slot.wall_ns.store(span.wall_ns, Ordering::Relaxed);
        slot.payload.store(span.payload, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// The retained spans, oldest first. Spans being overwritten while the
    /// snapshot runs are skipped rather than returned torn.
    pub fn snapshot(&self) -> Vec<Span> {
        let cap = self.slots.len() as u64;
        let end = self.next.load(Ordering::Acquire);
        let start = end.saturating_sub(cap);
        let mut out = Vec::with_capacity((end - start) as usize);
        for ticket in start..end {
            let slot = &self.slots[(ticket % cap) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if before != 2 * ticket + 2 {
                // Every ticket below `end` was claimed by a writer, so this
                // span exists but is mid-write or already recycled: a real
                // loss to the race, counted so consumers can see it.
                self.race_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let span = Span {
                op: slot.op.load(Ordering::Relaxed),
                tag: slot.tag.load(Ordering::Relaxed),
                reads: slot.reads.load(Ordering::Relaxed),
                writes: slot.writes.load(Ordering::Relaxed),
                wall_ns: slot.wall_ns.load(Ordering::Relaxed),
                payload: slot.payload.load(Ordering::Relaxed),
            };
            if slot.seq.load(Ordering::Acquire) == before {
                out.push(span);
            } else {
                self.race_skips.fetch_add(1, Ordering::Relaxed);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(i: u64) -> Span {
        Span {
            op: 1,
            tag: i % 6,
            reads: i,
            writes: i / 2,
            wall_ns: i * 100,
            payload: i,
        }
    }

    #[test]
    fn keeps_most_recent_in_order() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(span(i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|s| s.reads).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest first, last capacity spans retained"
        );
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn partial_fill_returns_only_written() {
        let ring = TraceRing::new(8);
        ring.push(span(1));
        ring.push(span(2));
        assert_eq!(ring.snapshot().len(), 2);
    }

    #[test]
    fn empty_ring_is_empty() {
        assert!(TraceRing::new(3).snapshot().is_empty());
    }

    #[test]
    fn dropped_counts_overwrite_and_race_skips() {
        let ring = TraceRing::new(4);
        assert_eq!(ring.dropped(), 0, "empty ring has lost nothing");
        for i in 0..10 {
            ring.push(span(i));
        }
        // No reader raced a writer, so losses are pure overwrite.
        assert_eq!(ring.race_skips(), 0);
        assert_eq!(ring.dropped(), 6);
        ring.snapshot();
        assert_eq!(ring.race_skips(), 0, "quiescent snapshot skips nothing");
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        let ring = TraceRing::new(16);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        // Internally consistent span: payload == reads.
                        ring.push(Span {
                            op: t,
                            tag: t,
                            reads: i,
                            writes: i,
                            wall_ns: i,
                            payload: i,
                        });
                    }
                });
            }
            // Reader races the writers.
            for _ in 0..200 {
                for sp in ring.snapshot() {
                    assert_eq!(sp.reads, sp.payload, "torn span surfaced");
                    assert_eq!(sp.reads, sp.writes, "torn span surfaced");
                }
            }
        });
        assert_eq!(ring.pushed(), 20_000);
        assert_eq!(ring.snapshot().len(), 16);
    }
}
