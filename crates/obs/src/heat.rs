//! Workload heat maps: sharded, lock-free, exponentially-decaying access
//! counters.
//!
//! The ROADMAP's dynamic re-clustering item needs *access-frequency*
//! statistics — which parents a workload actually traverses, which
//! clusters a DFSCLUST scan keeps re-reading, how skewed the traffic is —
//! exactly the input every reorganization policy in the dynamic-clustering
//! literature consumes. This module is that measurement layer: a
//! process-global [`HeatMap`] of `(class, id) → decaying counter` entries
//! fed from the strategy layer (parent visits, cluster-root scans), the
//! access layer (B-tree page classes), and the buffer pool (per-shard
//! touches).
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** Every feed site costs one relaxed [`AtomicBool`]
//!    load while the map is disabled (the default). Like
//!    [`phase`](crate::phase), the switch is a process global because the
//!    feeding layers (B-tree descents, pool shards, strategy loops) have
//!    no handle-plumbing path from the engine.
//! 2. **Lock-free when on.** A touch is a hash, a bounded linear probe
//!    over `(AtomicU64 key, AtomicU64 count)` slots, and one relaxed
//!    `fetch_add`. Insertion claims an empty slot by CAS; a full shard
//!    bumps an overflow counter instead of blocking or allocating.
//! 3. **Decay never re-orders.** [`HeatMap::decay_tick`] multiplies every
//!    counter by `alpha/2^16` (fixed-point). The map `c ↦ ⌊c·α⌋/2^16` is
//!    monotone, so hotter-than stays hotter-than across any number of
//!    ticks, and for `α < 2^16` every counter reaches zero — both
//!    properties are proptest-pinned in `tests/heat.rs`.
//!
//! Counters never perturb the paper's I/O accounting: touches are pure
//! memory operations on the side table; nothing here reads or writes
//! pages.

use crate::registry::{labels, MetricsSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// What an id in the heat map identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HeatClass {
    /// A complex object: the parent OID key a retrieve traversed.
    Parent = 0,
    /// A cluster root scanned by DFSCLUST (the object whose cluster range
    /// the scan covered).
    ClusterRoot = 1,
    /// A B-tree page class ([`PAGE_CLASS_INTERNAL`] / [`PAGE_CLASS_LEAF`]).
    PageClass = 2,
    /// A buffer-pool lock stripe (id = shard index).
    PoolShard = 3,
}

/// [`HeatClass::PageClass`] id for internal (descent) pages.
pub const PAGE_CLASS_INTERNAL: u64 = 0;
/// [`HeatClass::PageClass`] id for leaf/data pages.
pub const PAGE_CLASS_LEAF: u64 = 1;

impl HeatClass {
    /// Every class, in tag order.
    pub const ALL: [HeatClass; 4] = [
        HeatClass::Parent,
        HeatClass::ClusterRoot,
        HeatClass::PageClass,
        HeatClass::PoolShard,
    ];

    /// Stable snake_case name (used by exporters and reports).
    pub fn name(self) -> &'static str {
        match self {
            HeatClass::Parent => "parent",
            HeatClass::ClusterRoot => "cluster_root",
            HeatClass::PageClass => "page_class",
            HeatClass::PoolShard => "pool_shard",
        }
    }
}

/// Ids are packed with the class into one nonzero `u64` slot key: the
/// class tag plus one in the top byte, the id in the low 56 bits. Key 0
/// therefore never collides with a real entry and marks an empty slot.
const ID_BITS: u32 = 56;
/// Largest id a heat key can carry.
pub const MAX_HEAT_ID: u64 = (1 << ID_BITS) - 1;

fn pack(class: HeatClass, id: u64) -> u64 {
    ((class as u64 + 1) << ID_BITS) | (id & MAX_HEAT_ID)
}

fn unpack(key: u64) -> Option<(HeatClass, u64)> {
    let tag = (key >> ID_BITS) as u8;
    let class = *HeatClass::ALL.get(tag.checked_sub(1)? as usize)?;
    Some((class, key & MAX_HEAT_ID))
}

/// Fibonacci hash: spreads sequential ids across the table.
fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

struct HeatSlot {
    key: AtomicU64,
    count: AtomicU64,
}

struct HeatShard {
    slots: Vec<HeatSlot>,
}

impl HeatShard {
    fn new(slots: usize) -> Self {
        HeatShard {
            slots: (0..slots)
                .map(|_| HeatSlot {
                    key: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Add `n` to `key`'s counter, inserting it if absent. Returns false
    /// when every probed slot belongs to someone else (shard full).
    fn touch(&self, key: u64, n: u64) -> bool {
        let len = self.slots.len() as u64;
        let start = hash(key) % len;
        for i in 0..len {
            let slot = &self.slots[((start + i) % len) as usize];
            let k = slot.key.load(Ordering::Relaxed);
            if k == key {
                slot.count.fetch_add(n, Ordering::Relaxed);
                return true;
            }
            if k == 0 {
                match slot
                    .key
                    .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        slot.count.fetch_add(n, Ordering::Relaxed);
                        return true;
                    }
                    Err(existing) if existing == key => {
                        slot.count.fetch_add(n, Ordering::Relaxed);
                        return true;
                    }
                    Err(_) => continue, // raced another insert; keep probing
                }
            }
        }
        false
    }
}

/// Apply one decay tick to a single counter value: fixed-point multiply
/// by `alpha_q16 / 2^16`. Pure so the order-preservation and
/// convergence properties can be tested directly.
#[inline]
pub fn decay_value(count: u64, alpha_q16: u64) -> u64 {
    ((count as u128 * alpha_q16 as u128) >> 16) as u64
}

/// The default decay coefficient (Q16 fixed point): `0.5`, i.e. a
/// half-life of exactly one tick.
pub const DEFAULT_ALPHA_Q16: u64 = 1 << 15;

/// Ticks for a counter to halve under `alpha_q16` (∞ when `alpha >= 1`).
pub fn half_life_ticks(alpha_q16: u64) -> f64 {
    let alpha = alpha_q16 as f64 / 65536.0;
    if alpha >= 1.0 || alpha <= 0.0 {
        return f64::INFINITY;
    }
    (0.5f64).ln() / alpha.ln()
}

/// A sharded, fixed-capacity table of decaying access counters.
pub struct HeatMap {
    shards: Vec<HeatShard>,
    /// Touches dropped because the owning shard had no free slot.
    overflow: AtomicU64,
    /// Touches recorded (including overflowed ones).
    touches: AtomicU64,
    /// Decay ticks applied so far.
    ticks: AtomicU64,
}

impl std::fmt::Debug for HeatMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeatMap")
            .field("shards", &self.shards.len())
            .field("touches", &self.touches.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for HeatMap {
    fn default() -> Self {
        Self::new()
    }
}

impl HeatMap {
    /// Default geometry: 8 shards × 512 slots (4096 tracked keys).
    pub fn new() -> Self {
        Self::with_geometry(8, 512)
    }

    /// A map with `shards` stripes of `slots` keys each.
    pub fn with_geometry(shards: usize, slots: usize) -> Self {
        assert!(shards > 0 && slots > 0, "heat map needs capacity");
        HeatMap {
            shards: (0..shards).map(|_| HeatShard::new(slots)).collect(),
            overflow: AtomicU64::new(0),
            touches: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    /// Record `n` accesses of `(class, id)`. Wait-free apart from the
    /// bounded probe; a full shard counts overflow instead of blocking.
    pub fn touch_n(&self, class: HeatClass, id: u64, n: u64) {
        let key = pack(class, id);
        let shard = &self.shards[(hash(key) >> 32) as usize % self.shards.len()];
        self.touches.fetch_add(n, Ordering::Relaxed);
        if !shard.touch(key, n) {
            self.overflow.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one access of `(class, id)`.
    #[inline]
    pub fn touch(&self, class: HeatClass, id: u64) {
        self.touch_n(class, id, 1);
    }

    /// Multiply every counter by `alpha_q16 / 2^16` — order-preserving,
    /// and convergent to zero for any `alpha_q16 < 2^16`. Entries that
    /// reach zero keep their slot (re-touching them is cheaper than
    /// compacting); [`reset`](Self::reset) reclaims everything.
    pub fn decay_tick(&self, alpha_q16: u64) {
        for shard in &self.shards {
            for slot in &shard.slots {
                if slot.key.load(Ordering::Relaxed) == 0 {
                    continue;
                }
                // Racing touches between the load and the store may be
                // shrunk by one tick's decay — heat is a statistic, not a
                // ledger, and the bias is uniformly downward.
                let c = slot.count.load(Ordering::Relaxed);
                if c != 0 {
                    slot.count
                        .store(decay_value(c, alpha_q16), Ordering::Relaxed);
                }
            }
        }
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every entry and zero the lifetime counters (between measured
    /// runs; concurrent touches during a reset can survive it partially).
    pub fn reset(&self) {
        for shard in &self.shards {
            for slot in &shard.slots {
                slot.key.store(0, Ordering::Relaxed);
                slot.count.store(0, Ordering::Relaxed);
            }
        }
        self.overflow.store(0, Ordering::Relaxed);
        self.touches.store(0, Ordering::Relaxed);
        self.ticks.store(0, Ordering::Relaxed);
    }

    /// Touches recorded over the map's lifetime.
    pub fn touches(&self) -> u64 {
        self.touches.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of every live entry plus the roll-up counters.
    pub fn report(&self) -> HeatReport {
        let mut entries = Vec::new();
        for shard in &self.shards {
            for slot in &shard.slots {
                let key = slot.key.load(Ordering::Relaxed);
                if key == 0 {
                    continue;
                }
                let count = slot.count.load(Ordering::Relaxed);
                if count == 0 {
                    continue; // fully decayed
                }
                if let Some((class, id)) = unpack(key) {
                    entries.push(HeatEntry { class, id, count });
                }
            }
        }
        // Hottest first; ties broken by id so reports are deterministic.
        entries.sort_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        HeatReport {
            entries,
            touches: self.touches.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            ticks: self.ticks.load(Ordering::Relaxed),
        }
    }
}

/// One live heat-map entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeatEntry {
    /// What the id identifies.
    pub class: HeatClass,
    /// The identifier (parent key, cluster root, page class, shard).
    pub id: u64,
    /// The decayed access count.
    pub count: u64,
}

/// A point-in-time view of a [`HeatMap`]: every live entry hottest-first,
/// plus lifetime touch/overflow/tick counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatReport {
    /// Live entries, hottest first (ties by id).
    pub entries: Vec<HeatEntry>,
    /// Touches recorded over the map's lifetime.
    pub touches: u64,
    /// Touches dropped because a shard had no free slot.
    pub overflow: u64,
    /// Decay ticks applied.
    pub ticks: u64,
}

impl HeatReport {
    /// The `k` hottest entries of `class`.
    pub fn top_k(&self, class: HeatClass, k: usize) -> Vec<HeatEntry> {
        self.entries
            .iter()
            .filter(|e| e.class == class)
            .take(k)
            .copied()
            .collect()
    }

    /// Total decayed heat held by `class`.
    pub fn total(&self, class: HeatClass) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.class == class)
            .map(|e| e.count)
            .sum()
    }

    /// Skew summary: the fraction of `class`'s total heat held by its
    /// `k` hottest keys — near `k/n` for uniform traffic, near 1.0 for a
    /// concentrated (Zipf) workload. 0.0 when the class is empty.
    pub fn top_share(&self, class: HeatClass, k: usize) -> f64 {
        let total = self.total(class);
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.top_k(class, k).iter().map(|e| e.count).sum();
        top as f64 / total as f64
    }

    /// Export the report into `snapshot` as the `cor_heat_*` metric
    /// family set: per-class touch totals and tracked-key gauges, the
    /// lifetime overflow/tick counters, the configured half-life, and
    /// one `cor_heat_top` gauge per top-`k` entry per class.
    pub fn push_to(&self, snapshot: &mut MetricsSnapshot, k: usize, alpha_q16: u64) {
        for class in HeatClass::ALL {
            let lbls = labels(&[("class", class.name())]);
            snapshot.push_counter(
                "cor_heat_touches_total",
                "decayed access heat held per key class",
                lbls.clone(),
                self.total(class),
            );
            snapshot.push_gauge(
                "cor_heat_tracked_keys",
                "live heat-map entries per key class",
                lbls,
                self.entries.iter().filter(|e| e.class == class).count() as f64,
            );
        }
        snapshot.push_counter(
            "cor_heat_overflow_total",
            "touches dropped because a heat shard was full",
            labels(&[]),
            self.overflow,
        );
        snapshot.push_counter(
            "cor_heat_decay_ticks_total",
            "decay ticks applied to the heat map",
            labels(&[]),
            self.ticks,
        );
        snapshot.push_gauge(
            "cor_heat_half_life_ticks",
            "ticks for a counter to halve under the configured decay",
            labels(&[]),
            half_life_ticks(alpha_q16),
        );
        for class in HeatClass::ALL {
            for (rank, e) in self.top_k(class, k).iter().enumerate() {
                snapshot.push_gauge(
                    "cor_heat_top",
                    "decayed count of the k hottest keys per class",
                    labels(&[
                        ("class", class.name()),
                        ("rank", &rank.to_string()),
                        ("id", &e.id.to_string()),
                    ]),
                    e.count as f64,
                );
            }
        }
    }
}

/// Process-wide switch. Off by default: every feed site is one relaxed
/// load and nothing else.
static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<HeatMap> = OnceLock::new();

/// Whether heat collection is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn heat collection on or off for the whole process. The global map
/// keeps its contents across off/on transitions; call
/// [`global`]`().reset()` to start a fresh measurement window.
pub fn enable(on: bool) {
    if on {
        let _ = global();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global heat map (created on first use).
pub fn global() -> &'static HeatMap {
    GLOBAL.get_or_init(HeatMap::new)
}

/// Record one access of `(class, id)` in the global map — the feed-site
/// entry point. A no-op costing one relaxed load while disabled.
#[inline]
pub fn touch(class: HeatClass, id: u64) {
    if enabled() {
        global().touch(class, id);
    }
}

/// Record `n` accesses of `(class, id)` in the global map.
#[inline]
pub fn touch_n(class: HeatClass, id: u64, n: u64) {
    if enabled() {
        global().touch_n(class, id, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_accumulate_per_key() {
        let m = HeatMap::with_geometry(2, 64);
        m.touch(HeatClass::Parent, 7);
        m.touch(HeatClass::Parent, 7);
        m.touch_n(HeatClass::Parent, 9, 5);
        m.touch(HeatClass::ClusterRoot, 7); // same id, different class
        let r = m.report();
        assert_eq!(r.touches, 8);
        let top = r.top_k(HeatClass::Parent, 2);
        assert_eq!((top[0].id, top[0].count), (9, 5));
        assert_eq!((top[1].id, top[1].count), (7, 2));
        assert_eq!(r.top_k(HeatClass::ClusterRoot, 8).len(), 1);
        assert_eq!(r.total(HeatClass::Parent), 7);
    }

    #[test]
    fn decay_halves_and_preserves_order() {
        let m = HeatMap::with_geometry(1, 64);
        m.touch_n(HeatClass::Parent, 1, 1000);
        m.touch_n(HeatClass::Parent, 2, 10);
        m.decay_tick(DEFAULT_ALPHA_Q16);
        let r = m.report();
        assert_eq!(r.ticks, 1);
        let top = r.top_k(HeatClass::Parent, 2);
        assert_eq!((top[0].id, top[0].count), (1, 500));
        assert_eq!((top[1].id, top[1].count), (2, 5));
        // Enough ticks drive everything to zero and out of the report.
        for _ in 0..16 {
            m.decay_tick(DEFAULT_ALPHA_Q16);
        }
        assert!(m.report().entries.is_empty());
    }

    #[test]
    fn full_shard_overflows_instead_of_blocking() {
        let m = HeatMap::with_geometry(1, 4);
        for id in 0..64 {
            m.touch(HeatClass::Parent, id);
        }
        let r = m.report();
        assert_eq!(r.entries.len(), 4, "capacity bounds tracked keys");
        assert_eq!(r.touches, 64);
        assert_eq!(r.overflow, 60);
    }

    #[test]
    fn keys_pack_and_unpack() {
        for class in HeatClass::ALL {
            for id in [0u64, 1, MAX_HEAT_ID] {
                let key = pack(class, id);
                assert_ne!(key, 0, "real keys never alias the empty slot");
                assert_eq!(unpack(key), Some((class, id)));
            }
        }
        assert_eq!(unpack(0), None);
    }

    #[test]
    fn top_share_separates_skew_from_uniform() {
        let uniform = HeatMap::with_geometry(4, 256);
        let skewed = HeatMap::with_geometry(4, 256);
        for id in 0..100u64 {
            uniform.touch_n(HeatClass::Parent, id, 10);
            // 90% of skewed traffic lands on 5 keys.
            let n = if id < 5 { 180 } else { 1 };
            skewed.touch_n(HeatClass::Parent, id, n);
        }
        let u = uniform.report().top_share(HeatClass::Parent, 5);
        let s = skewed.report().top_share(HeatClass::Parent, 5);
        assert!(u < 0.10, "uniform top-5 share {u}");
        assert!(s > 0.85, "skewed top-5 share {s}");
    }

    #[test]
    fn global_touch_is_inert_when_disabled() {
        // Other tests may have enabled the global switch; force it off
        // and prove the feed-site entry point records nothing.
        enable(false);
        let before = global().touches();
        touch(HeatClass::PoolShard, 3);
        touch_n(HeatClass::PoolShard, 3, 10);
        assert_eq!(global().touches(), before);
    }

    #[test]
    fn concurrent_touches_are_exact() {
        let m = HeatMap::with_geometry(8, 512);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        m.touch(HeatClass::Parent, (t * 31 + i) % 97);
                    }
                });
            }
        });
        let r = m.report();
        assert_eq!(r.touches, 40_000);
        assert_eq!(r.overflow, 0);
        assert_eq!(r.entries.iter().map(|e| e.count).sum::<u64>(), 40_000);
        assert_eq!(r.entries.len(), 97);
    }

    #[test]
    fn half_life_matches_alpha() {
        assert!((half_life_ticks(DEFAULT_ALPHA_Q16) - 1.0).abs() < 1e-9);
        assert!(half_life_ticks(1 << 16).is_infinite());
        let hl = half_life_ticks(58982); // ~0.9
        assert!(hl > 6.0 && hl < 7.0, "alpha 0.9 halves in ~6.6 ticks: {hl}");
    }
}
