//! Exporters: Prometheus text format and JSON.
//!
//! Both render a [`MetricsSnapshot`], so anything the registry collects —
//! or the engine folds in from the pool and cache layers — comes out in
//! either format with no per-layer code. A small Prometheus *parser* is
//! also exported: the test suite uses it to prove the text output is
//! well-formed (label escaping round-trips, histogram buckets are
//! cumulative), and `corstat --smoke` uses it as a self-check.

use crate::hist::HistSnapshot;
use crate::registry::{Labels, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Escape a label value for the Prometheus text format (`\\`, `\"`, `\n`).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` line (`\\` and `\n` only, per the exposition format).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render the snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        if !fam.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        }
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for s in &fam.samples {
            match &s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", fam.name, render_labels(&s.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        fam.name,
                        render_labels(&s.labels, None),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (upper, count) in h.occupied_buckets() {
                        cum += count;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            fam.name,
                            render_labels(&s.labels, Some(("le", &upper.to_string())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        fam.name,
                        render_labels(&s.labels, Some(("le", "+Inf"))),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        fam.name,
                        render_labels(&s.labels, None),
                        h.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        fam.name,
                        render_labels(&s.labels, None),
                        h.count()
                    );
                }
            }
        }
    }
    out
}

/// Escape a string for JSON output.
pub fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &Labels) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn json_hist(h: &HistSnapshot) -> String {
    let buckets: Vec<String> = h
        .occupied_buckets()
        .map(|(upper, count)| format!("[{upper},{count}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        fmt_f64(h.mean()),
        h.quantile(0.5),
        h.quantile(0.99),
        buckets.join(",")
    )
}

/// Render the snapshot as a JSON document (machine-readable twin of the
/// Prometheus output; histograms additionally carry mean/p50/p99).
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let mut fams = Vec::with_capacity(snap.families.len());
    for fam in &snap.families {
        let samples: Vec<String> = fam
            .samples
            .iter()
            .map(|s| {
                let value = match &s.value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => fmt_f64(*v),
                    MetricValue::Histogram(h) => json_hist(h),
                };
                format!(
                    "{{\"labels\":{},\"value\":{}}}",
                    json_labels(&s.labels),
                    value
                )
            })
            .collect();
        fams.push(format!(
            "{{\"name\":\"{}\",\"help\":\"{}\",\"kind\":\"{}\",\"samples\":[{}]}}",
            escape_json(&fam.name),
            escape_json(&fam.help),
            fam.kind.as_str(),
            samples.join(",")
        ));
    }
    format!("{{\"families\":[{}]}}", fams.join(","))
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Full sample name (e.g. `latency_ns_bucket`).
    pub name: String,
    /// Decoded label pairs.
    pub labels: Vec<(String, String)>,
    /// Numeric value (`+Inf` in an `le` label stays in the labels; the
    /// sample value itself is always finite in our output).
    pub value: f64,
}

fn parse_label_block(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value not quoted near {rest}"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {rest}"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Parse Prometheus text-format output back into samples, validating the
/// line grammar (HELP/TYPE comments, name/label syntax, numeric values).
pub fn parse_prometheus(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut samples = Vec::new();
    let mut declared: Vec<String> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest
                .split_whitespace()
                .next()
                .ok_or_else(|| format!("line {ln}: TYPE without name"))?;
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {ln}: no value: {line}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {ln}: bad value {value}"))?;
        let (name, labels) = match head.split_once('{') {
            Some((name, rest)) => {
                let block = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {ln}: unterminated labels"))?;
                (name.to_string(), parse_label_block(block)?)
            }
            None => (head.to_string(), Vec::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {ln}: bad metric name {name}"));
        }
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(&name);
        if !declared.iter().any(|d| d == &name || d == base) {
            return Err(format!("line {ln}: sample {name} has no TYPE declaration"));
        }
        samples.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::registry::labels;

    #[test]
    fn counters_and_gauges_render_plainly() {
        let mut s = MetricsSnapshot::new();
        s.push_counter("ops_total", "ops", labels(&[("kind", "read")]), 12);
        s.push_gauge("ratio", "hit ratio", Labels::new(), 0.25);
        let text = to_prometheus(&s);
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total{kind=\"read\"} 12"));
        assert!(text.contains("ratio 0.25"));
    }

    #[test]
    fn label_escaping_roundtrips_through_parser() {
        let tricky = "a\"b\\c\nd";
        let mut s = MetricsSnapshot::new();
        s.push_counter("c", "h", labels(&[("k", tricky)]), 1);
        let parsed = parse_prometheus(&to_prometheus(&s)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].labels[0], ("k".to_string(), tricky.to_string()));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new();
        for v in [1u64, 1, 5, 100, 10_000] {
            h.record(v);
        }
        let mut s = MetricsSnapshot::new();
        s.push_histogram("lat", "latency", Labels::new(), h.snapshot());
        let parsed = parse_prometheus(&to_prometheus(&s)).unwrap();
        let buckets: Vec<&ParsedSample> =
            parsed.iter().filter(|p| p.name == "lat_bucket").collect();
        assert!(buckets.len() >= 4, "one line per occupied bucket + +Inf");
        let mut last = 0.0;
        for b in &buckets {
            assert!(b.value >= last, "buckets must be cumulative");
            last = b.value;
        }
        assert_eq!(buckets.last().unwrap().labels[0].1, "+Inf");
        assert_eq!(buckets.last().unwrap().value, 5.0);
        let count = parsed.iter().find(|p| p.name == "lat_count").unwrap();
        assert_eq!(count.value, 5.0);
        let sum = parsed.iter().find(|p| p.name == "lat_sum").unwrap();
        assert_eq!(sum.value, 10_107.0);
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let mut s = MetricsSnapshot::new();
        s.push_counter("c", "with \"quotes\"", labels(&[("k", "v\n")]), 3);
        let h = Histogram::new();
        h.record(7);
        s.push_histogram("lat", "", Labels::new(), h.snapshot());
        let json = to_json(&s);
        assert!(json.contains("\"help\":\"with \\\"quotes\\\"\""));
        assert!(json.contains("\"k\":\"v\\n\""));
        assert!(json.contains("\"p99\":7"));
        assert!(json.contains("\"buckets\":[[7,1]]"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("lonely_sample 1").is_err(), "no TYPE");
        assert!(parse_prometheus("# TYPE x counter\nx{k=\"v} 1").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx notanumber").is_err());
    }
}
