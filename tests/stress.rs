//! Long-running stress tests, `#[ignore]`d by default. Run with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! These replay paper-scale workloads across every strategy and
//! representation, checking answer agreement throughout — the heavyweight
//! version of the default-suite equivalence tests.

use complexobj::strategies::execute_retrieve;
use complexobj::{apply_update, ExecOptions, Query, Strategy};
use cor_workload::{
    build_for_strategy, generate, generate_matrix, generate_sequence, run_matrix_point,
    MatrixSystem, Params,
};

/// Full paper-scale database, all five equivalent strategies, 100 mixed
/// queries replayed in lockstep.
#[test]
#[ignore = "paper-scale stress run (~minutes); run explicitly"]
fn full_scale_strategy_equivalence_under_updates() {
    let p = Params {
        pr_update: 0.2,
        num_top: 200,
        sequence_len: 100,
        ..Params::paper_default()
    };
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    let strategies = [
        Strategy::Dfs,
        Strategy::Bfs,
        Strategy::DfsCache,
        Strategy::DfsClust,
        Strategy::Smart,
    ];
    let dbs: Vec<_> = strategies
        .iter()
        .map(|&s| build_for_strategy(&p, &generated, s).expect("db builds"))
        .collect();
    let opts = ExecOptions::default();

    for (i, q) in sequence.iter().enumerate() {
        match q {
            Query::Retrieve(r) => {
                let mut reference: Option<Vec<i64>> = None;
                for (s, db) in strategies.iter().zip(&dbs) {
                    let mut v = execute_retrieve(db, *s, r, &opts).expect("runs").values;
                    v.sort_unstable();
                    match &reference {
                        None => reference = Some(v),
                        Some(expect) => assert_eq!(&v, expect, "{s} diverged at query {i}"),
                    }
                }
            }
            Query::Update(u) => {
                for db in &dbs {
                    apply_update(db, u, db.has_cache()).expect("update applies");
                }
            }
        }
    }
}

/// Every representation-matrix system at 0.5 scale over an update-heavy
/// sequence, cross-checked on returned value counts.
#[test]
#[ignore = "matrix stress run (~minutes); run explicitly"]
fn half_scale_matrix_systems_agree() {
    let p = Params {
        pr_update: 0.3,
        num_top: 40,
        sequence_len: 120,
        ..Params::scaled(0.5)
    };
    let spec = generate_matrix(&p);
    let mut expected: Option<u64> = None;
    for system in MatrixSystem::ALL {
        let r = run_matrix_point(&p, &spec, system).expect("system runs");
        match expected {
            None => expected = Some(r.values_returned),
            Some(e) => {
                assert_eq!(
                    r.values_returned,
                    e,
                    "{} returned a different count",
                    system.name()
                )
            }
        }
    }
}

/// Buffer-pool soak: a paper-scale DFSCACHE run with a pathologically tiny
/// buffer must still answer correctly (thrash, not corrupt).
#[test]
#[ignore = "thrash soak (~minutes); run explicitly"]
fn tiny_buffer_thrash_soak() {
    let p = Params {
        buffer_pages: 8,
        pr_update: 0.1,
        num_top: 100,
        sequence_len: 60,
        ..Params::paper_default()
    };
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    let cached = build_for_strategy(&p, &generated, Strategy::DfsCache).unwrap();
    let plain = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
    let opts = ExecOptions::default();
    for q in &sequence {
        match q {
            Query::Retrieve(r) => {
                let mut a = execute_retrieve(&cached, Strategy::DfsCache, r, &opts)
                    .unwrap()
                    .values;
                let mut b = execute_retrieve(&plain, Strategy::Dfs, r, &opts)
                    .unwrap()
                    .values;
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
            Query::Update(u) => {
                apply_update(&cached, u, true).unwrap();
                apply_update(&plain, u, false).unwrap();
            }
        }
    }
}
