//! Error-path behaviour across the crates: errors carry useful messages,
//! chain their sources, and the library fails loudly rather than silently
//! on misuse.

use complexobj::database::{CorDatabase, DatabaseSpec, ObjectSpec, SubobjectSpec, CHILD_REL_BASE};
use complexobj::procedural::{QuelParseError, StoredQuery};
use complexobj::strategies::{execute_retrieve, ExecOptions};
use complexobj::{parse_quel, CorError, RetAttr, RetrieveQuery, Strategy};
use cor_access::{AccessError, BTreeFile, CatalogError};
use cor_pagestore::{BufferError, BufferPool, DiskError};
use cor_relational::Oid;
use std::error::Error;
use std::sync::Arc;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::builder().capacity(8).build())
}

#[test]
fn error_messages_are_informative() {
    assert!(DiskError::BadPage(7).to_string().contains("7"));
    let exhausted = BufferError::NoFreeFrames {
        pid: 7,
        shard: 1,
        pinned: 3,
        hit_ratio: Some(0.25),
        waited_ns: 1_200_000,
    }
    .to_string();
    assert!(exhausted.contains("pinned"));
    assert!(exhausted.contains('7') && exhausted.contains('3'));
    assert!(exhausted.contains("shard 1"), "{exhausted}");
    assert!(exhausted.contains("25.0%"), "{exhausted}");
    assert!(exhausted.contains("1.2ms"), "{exhausted}");
    assert!(AccessError::BadKeyLen(3).to_string().contains("3"));
    assert!(AccessError::EntryTooLarge.to_string().contains("large"));
    assert!(AccessError::UnsortedBulkLoad
        .to_string()
        .contains("ascending"));
    assert!(CorError::NoCache.to_string().contains("cache"));
    assert!(CorError::DanglingOid(Oid::new(10, 5))
        .to_string()
        .contains("10:5"));
    assert!(CorError::UnknownRelation(99).to_string().contains("99"));
    assert!(CorError::WrongRepresentation("clustered")
        .to_string()
        .contains("clustered"));
    assert!(CatalogError::NotFound("person".into())
        .to_string()
        .contains("person"));
    assert!(QuelParseError::UnknownAttribute("age".into())
        .to_string()
        .contains("age"));
}

#[test]
fn error_sources_chain() {
    // DiskError -> BufferError -> AccessError -> CorError.
    let cor: CorError = AccessError::Buffer(BufferError::Disk(DiskError::BadPage(3))).into();
    let access = cor.source().expect("CorError chains to AccessError");
    assert!(access.to_string().contains("buffer"));
    let buffer = access.source().expect("AccessError chains to BufferError");
    assert!(buffer.to_string().contains("disk"));
    let disk = buffer.source().expect("BufferError chains to DiskError");
    assert!(disk.to_string().contains("3"));
}

#[test]
fn quel_errors_name_the_problem() {
    let err = parse_quel("select 1").unwrap_err();
    assert!(err.to_string().contains("retrieve"), "{err}");
    let err =
        parse_quel("retrieve (ParentRel.children.ret9) where 1 <= ParentRel.OID <= 2").unwrap_err();
    assert!(err.to_string().contains("ret9"), "{err}");
    let err =
        StoredQuery::parse_quel("retrieve (childX.all) where 0 <= childX.OID <= 1").unwrap_err();
    assert!(err.to_string().to_lowercase().contains("relation"), "{err}");
}

#[test]
fn strategy_on_wrong_representation_fails_loudly() {
    let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
    let spec = DatabaseSpec {
        parents: vec![ObjectSpec {
            key: 0,
            rets: [0; 3],
            dummy: "p".into(),
            children: vec![c(0)],
        }],
        child_rels: vec![vec![SubobjectSpec {
            oid: c(0),
            rets: [0; 3],
            dummy: "c".into(),
        }]],
    };
    let db = CorDatabase::build_standard(pool(), &spec, None).unwrap();
    let q = RetrieveQuery {
        lo: 0,
        hi: 0,
        attr: RetAttr::Ret1,
    };
    let opts = ExecOptions::default();
    assert!(matches!(
        execute_retrieve(&db, Strategy::DfsClust, &q, &opts),
        Err(CorError::WrongRepresentation(_))
    ));
    assert!(matches!(
        execute_retrieve(&db, Strategy::DfsCache, &q, &opts),
        Err(CorError::NoCache)
    ));
}

#[test]
fn dangling_reference_is_reported_not_ignored() {
    let c = |k: u64| Oid::new(CHILD_REL_BASE, k);
    // Parent references child 99, which does not exist.
    let spec = DatabaseSpec {
        parents: vec![ObjectSpec {
            key: 0,
            rets: [0; 3],
            dummy: "p".into(),
            children: vec![c(99)],
        }],
        child_rels: vec![vec![SubobjectSpec {
            oid: c(0),
            rets: [0; 3],
            dummy: "c".into(),
        }]],
    };
    let db = CorDatabase::build_standard(pool(), &spec, None).unwrap();
    let q = RetrieveQuery {
        lo: 0,
        hi: 0,
        attr: RetAttr::Ret1,
    };
    for s in [Strategy::Dfs, Strategy::Bfs] {
        let err = execute_retrieve(&db, s, &q, &ExecOptions::default()).unwrap_err();
        assert!(
            matches!(err, CorError::DanglingOid(o) if o == c(99)),
            "{s} must surface the dangling OID, got {err}"
        );
    }
}

#[test]
fn btree_misuse_is_rejected_with_key_length() {
    let tree = BTreeFile::create(pool(), 8).unwrap();
    let err = tree.get(&[0u8; 5]).unwrap_err();
    assert!(matches!(err, AccessError::BadKeyLen(5)));
    assert!(matches!(
        BTreeFile::create(pool(), 0).map(|_| ()),
        Err(AccessError::BadKeyLen(0))
    ));
    assert!(matches!(
        BTreeFile::create(pool(), 65).map(|_| ()),
        Err(AccessError::BadKeyLen(65))
    ));
}
