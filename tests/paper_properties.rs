//! Property-based integration tests: the paper's structural invariants
//! hold on randomly generated databases, and the strategies agree on
//! randomly generated queries.

use complexobj::strategies::execute_retrieve;
use complexobj::{measure_sharing, ExecOptions, RetAttr, RetrieveQuery, Strategy};
use cor_workload::{build_for_strategy, generate, Params};
use proptest::prelude::*;

fn arb_params() -> impl Strategy_<Value = Params> {
    (1u32..=5, 1u32..=4, 1usize..=3, 0u64..=7).prop_map(|(uf, of, rels, seed)| Params {
        parent_card: 200,
        use_factor: uf,
        overlap_factor: of,
        num_child_rels: rels,
        size_cache: 16,
        buffer_pages: 16,
        sequence_len: 4,
        num_top: 10,
        seed: 0xFEED + seed,
        ..Params::paper_default()
    })
}

// `Strategy` collides between proptest and complexobj; alias proptest's.
use proptest::strategy::Strategy as Strategy_;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Equation (1): the generator produces |ChildRel| = |ParentRel| x
    /// SizeUnit / ShareFactor subobjects (within rounding), split across
    /// NumChildRel relations.
    #[test]
    fn generated_cardinalities_follow_equation_one(p in arb_params()) {
        let g = generate(&p);
        let total: usize = g.spec.child_rels.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total as u64, p.child_card());
        prop_assert_eq!(g.spec.parents.len() as u64, p.parent_card);
        prop_assert_eq!(g.spec.child_rels.len(), p.num_child_rels);
    }

    /// The dealt units hit the requested sharing factors: UseFactor within
    /// rounding, OverlapFactor within the boundary-chunk tolerance.
    #[test]
    fn generated_sharing_factors_match(p in arb_params()) {
        let g = generate(&p);
        let f = measure_sharing(&g.assignment, &g.units);
        prop_assert!((f.use_factor - p.use_factor as f64).abs() < 0.5,
            "use_factor {} vs requested {}", f.use_factor, p.use_factor);
        prop_assert!((f.overlap_factor - p.overlap_factor as f64).abs() < 0.5,
            "overlap {} vs requested {}", f.overlap_factor, p.overlap_factor);
    }

    /// Every unit is single-relation with distinct members of size
    /// SizeUnit (paper Sec. 3.2: units are per-relation collections).
    #[test]
    fn generated_units_are_well_formed(p in arb_params()) {
        let g = generate(&p);
        for u in &g.units {
            prop_assert_eq!(u.len(), p.size_unit);
            let mut m = u.oids().to_vec();
            m.sort_unstable();
            m.dedup();
            prop_assert_eq!(m.len(), p.size_unit, "duplicate members in unit");
            let rel = u.relation().unwrap();
            prop_assert!(u.oids().iter().all(|o| o.rel == rel));
        }
    }

    /// All strategies agree on random queries over random databases.
    #[test]
    fn strategies_agree_on_random_queries(
        p in arb_params(),
        lo in 0u64..190,
        span in 0u64..60,
        attr_idx in 0usize..3,
    ) {
        let hi = (lo + span).min(p.parent_card - 1);
        let q = RetrieveQuery { lo, hi, attr: RetAttr::ALL[attr_idx] };
        let g = generate(&p);
        let opts = ExecOptions { smart_threshold: 16, ..ExecOptions::default() };

        let mut reference: Option<Vec<i64>> = None;
        for s in [Strategy::Dfs, Strategy::Bfs, Strategy::DfsCache, Strategy::DfsClust, Strategy::Smart] {
            let db = build_for_strategy(&p, &g, s).expect("db builds");
            let mut v = execute_retrieve(&db, s, &q, &opts).expect("runs").values;
            v.sort_unstable();
            match &reference {
                None => reference = Some(v),
                Some(r) => prop_assert_eq!(&v, r, "{} diverged on {:?}", s, q),
            }
        }
    }

    /// I/O accounting is conserved: a retrieve's total equals ParCost +
    /// ChildCost, and a warm rerun never costs more than a cold run.
    #[test]
    fn io_accounting_is_consistent(p in arb_params(), lo in 0u64..150) {
        let q = RetrieveQuery { lo, hi: (lo + 20).min(p.parent_card - 1), attr: RetAttr::Ret1 };
        let g = generate(&p);
        let db = build_for_strategy(&p, &g, Strategy::Bfs).expect("db");
        db.pool().flush_and_clear().expect("cold");
        let opts = ExecOptions::default();
        let cold = execute_retrieve(&db, Strategy::Bfs, &q, &opts).expect("cold run");
        prop_assert_eq!(cold.total_io(), cold.par_io.total() + cold.child_io.total());
        let warm = execute_retrieve(&db, Strategy::Bfs, &q, &opts).expect("warm run");
        prop_assert!(warm.total_io() <= cold.total_io(),
            "warm {} > cold {}", warm.total_io(), cold.total_io());
    }
}
