//! Cross-crate integration: the three primary representations agree.
//!
//! The matrix workload (key-range units) is expressible in every column of
//! Fig. 1; on identical query/update histories all representations must
//! produce identical answers — they may only differ in I/O.

use complexobj::database::CHILD_REL_BASE;
use complexobj::procedural::{apply_proc_update, execute_proc_retrieve, ProcCaching, ProcDatabase};
use complexobj::strategies::execute_retrieve;
use complexobj::{
    apply_update, CorDatabase, ExecOptions, Query, RetAttr, RetrieveQuery, Strategy, UpdateQuery,
    ValueDatabase,
};
use cor_pagestore::BufferPool;
use cor_relational::Oid;
use cor_workload::{generate_matrix, generate_sequence, MatrixSpec, Params};
use std::sync::Arc;

fn params(pr_update: f64) -> Params {
    Params {
        parent_card: 150,
        use_factor: 3,
        overlap_factor: 1,
        size_cache: 16,
        buffer_pages: 16,
        sequence_len: 40,
        num_top: 8,
        pr_update,
        update_batch: 4,
        ..Params::paper_default()
    }
}

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::builder().capacity(32).build())
}

/// All systems replaying one history; answers compared per retrieve.
fn replay_all(p: &Params, spec: &MatrixSpec) {
    let sequence = generate_sequence(p);
    let opts = ExecOptions::default();

    let oid_db = CorDatabase::build_standard(pool(), &spec.oid_spec, None).unwrap();
    let value_db = ValueDatabase::build(pool(), &spec.oid_spec).unwrap();
    let proc_dbs: Vec<ProcDatabase> = [
        ProcCaching::None,
        ProcCaching::OutsideValues(p.size_cache),
        ProcCaching::OutsideOids(p.size_cache),
        ProcCaching::InsideValues(p.size_cache),
    ]
    .into_iter()
    .map(|c| ProcDatabase::build(pool(), &spec.proc_spec, c).unwrap())
    .collect();
    let scan_db = ProcDatabase::build(
        pool(),
        &spec.proc_scan_spec,
        ProcCaching::OutsideValues(p.size_cache),
    )
    .unwrap();

    for (i, q) in sequence.iter().enumerate() {
        match q {
            Query::Retrieve(r) => {
                let mut expect = execute_retrieve(&oid_db, Strategy::Dfs, r, &opts)
                    .unwrap()
                    .values;
                expect.sort_unstable();

                let mut value = value_db.run_retrieve(r).unwrap().values;
                value.sort_unstable();
                assert_eq!(value, expect, "value-based diverged at query {i}");

                for (j, db) in proc_dbs.iter().enumerate() {
                    let mut got = execute_proc_retrieve(db, r).unwrap().values;
                    got.sort_unstable();
                    assert_eq!(got, expect, "procedural mode {j} diverged at query {i}");
                }
                let mut got = execute_proc_retrieve(&scan_db, r).unwrap().values;
                got.sort_unstable();
                assert_eq!(got, expect, "scan-bound procedural diverged at query {i}");
            }
            Query::Update(u) => {
                apply_update(&oid_db, u, false).unwrap();
                value_db.apply_update(u).unwrap();
                for db in &proc_dbs {
                    apply_proc_update(db, u).unwrap();
                }
                apply_proc_update(&scan_db, u).unwrap();
            }
        }
    }
}

#[test]
fn representations_agree_retrieve_only() {
    let p = params(0.0);
    replay_all(&p, &generate_matrix(&p));
}

#[test]
fn representations_agree_with_updates() {
    let p = params(0.35);
    replay_all(&p, &generate_matrix(&p));
}

#[test]
fn representations_agree_with_overlapping_units() {
    let p = Params {
        overlap_factor: 5,
        use_factor: 1,
        ..params(0.2)
    };
    replay_all(&p, &generate_matrix(&p));
}

#[test]
fn ret_range_membership_change_is_seen_by_scan_procedural() {
    // The scan-bound procedural spec defines membership through ret3,
    // which updates never touch (they set ret1): membership is stable and
    // results must track value updates precisely. This test flips ret1 on
    // a known subobject and checks the three representations see it.
    let p = params(0.0);
    let spec = generate_matrix(&p);
    let oid_db = CorDatabase::build_standard(pool(), &spec.oid_spec, None).unwrap();
    let value_db = ValueDatabase::build(pool(), &spec.oid_spec).unwrap();
    let scan_db =
        ProcDatabase::build(pool(), &spec.proc_scan_spec, ProcCaching::OutsideValues(8)).unwrap();

    let q = RetrieveQuery {
        lo: 0,
        hi: 20,
        attr: RetAttr::Ret1,
    };
    let opts = ExecOptions::default();
    execute_proc_retrieve(&scan_db, &q).unwrap(); // warm the cache

    let upd = UpdateQuery {
        targets: vec![Oid::new(CHILD_REL_BASE, 3)],
        new_ret1: 424_242,
    };
    apply_update(&oid_db, &upd, false).unwrap();
    value_db.apply_update(&upd).unwrap();
    apply_proc_update(&scan_db, &upd).unwrap();

    let mut expect = execute_retrieve(&oid_db, Strategy::Dfs, &q, &opts)
        .unwrap()
        .values;
    let mut v1 = value_db.run_retrieve(&q).unwrap().values;
    let mut v2 = execute_proc_retrieve(&scan_db, &q).unwrap().values;
    expect.sort_unstable();
    v1.sort_unstable();
    v2.sort_unstable();
    assert_eq!(v1, expect);
    assert_eq!(v2, expect);
    // And if any scanned parent references subobject 3, the new value
    // must actually appear somewhere.
    if expect.contains(&424_242) {
        assert!(v2.contains(&424_242));
    }
}
