//! Cross-crate integration: every query-processing strategy computes the
//! same answer.
//!
//! The paper compares the strategies purely on I/O cost — which is only a
//! fair comparison because they are semantically interchangeable. These
//! tests pin that down: on the same logical database and query, DFS, BFS,
//! DFSCACHE, DFSCLUST and SMART return the same multiset of attribute
//! values, and BFSNODUP returns the deduplicated multiset.

use complexobj::strategies::execute_retrieve;
use complexobj::{ExecOptions, RetAttr, RetrieveQuery, Strategy};
use cor_workload::{build_for_strategy, generate, GeneratedDb, Params};

fn tiny_params(use_factor: u32, overlap_factor: u32, num_child_rels: usize) -> Params {
    Params {
        parent_card: 300,
        use_factor,
        overlap_factor,
        num_child_rels,
        size_cache: 40,
        buffer_pages: 16,
        sequence_len: 10,
        num_top: 20,
        ..Params::paper_default()
    }
}

fn sorted_values(
    params: &Params,
    generated: &GeneratedDb,
    strategy: Strategy,
    query: &RetrieveQuery,
) -> Vec<i64> {
    let db = build_for_strategy(params, generated, strategy).expect("database builds");
    let opts = ExecOptions {
        smart_threshold: 8,
        ..ExecOptions::default()
    };
    let out = execute_retrieve(&db, strategy, query, &opts).expect("query runs");
    let mut values = out.values;
    values.sort_unstable();
    values
}

const EQUIVALENT: [Strategy; 5] = [
    Strategy::Dfs,
    Strategy::Bfs,
    Strategy::DfsCache,
    Strategy::DfsClust,
    Strategy::Smart,
];

fn check_equivalence(params: &Params, queries: &[RetrieveQuery]) {
    let generated = generate(params);
    for query in queries {
        let reference = sorted_values(params, &generated, Strategy::Dfs, query);
        assert!(
            !reference.is_empty(),
            "query {query:?} must select something"
        );
        for s in EQUIVALENT {
            let got = sorted_values(params, &generated, s, query);
            assert_eq!(got, reference, "{s} diverged on {query:?}");
        }
        // BFSNODUP: deduplicate per (relation-level) distinct subobject.
        // Its output must match the reference after the same dedup. The
        // reference dedup needs OID identity, so recompute from DFS with
        // a set — equivalently, dedup identical values only when they come
        // from the same subobject. Cheap approximation: BFSNODUP's output
        // must be a sub-multiset of the reference with no more values than
        // distinct OIDs referenced.
        let nodup = sorted_values(params, &generated, Strategy::BfsNoDup, query);
        assert!(nodup.len() <= reference.len());
        let mut i = 0;
        for v in &nodup {
            while i < reference.len() && reference[i] < *v {
                i += 1;
            }
            assert!(
                i < reference.len() && reference[i] == *v,
                "BFSNODUP value {v} not in reference"
            );
            i += 1;
        }
    }
}

#[test]
fn equivalence_no_sharing() {
    let p = tiny_params(1, 1, 1);
    check_equivalence(
        &p,
        &[
            RetrieveQuery {
                lo: 0,
                hi: 0,
                attr: RetAttr::Ret1,
            },
            RetrieveQuery {
                lo: 10,
                hi: 40,
                attr: RetAttr::Ret2,
            },
            RetrieveQuery {
                lo: 0,
                hi: 299,
                attr: RetAttr::Ret3,
            },
        ],
    );
}

#[test]
fn equivalence_with_use_sharing() {
    let p = tiny_params(5, 1, 1);
    check_equivalence(
        &p,
        &[
            RetrieveQuery {
                lo: 5,
                hi: 25,
                attr: RetAttr::Ret1,
            },
            RetrieveQuery {
                lo: 250,
                hi: 299,
                attr: RetAttr::Ret2,
            },
        ],
    );
}

#[test]
fn equivalence_with_overlap_sharing() {
    let p = tiny_params(1, 5, 1);
    check_equivalence(
        &p,
        &[
            RetrieveQuery {
                lo: 0,
                hi: 30,
                attr: RetAttr::Ret1,
            },
            RetrieveQuery {
                lo: 100,
                hi: 200,
                attr: RetAttr::Ret3,
            },
        ],
    );
}

#[test]
fn equivalence_with_both_sharing_kinds() {
    let p = tiny_params(3, 2, 1);
    check_equivalence(
        &p,
        &[RetrieveQuery {
            lo: 7,
            hi: 77,
            attr: RetAttr::Ret2,
        }],
    );
}

#[test]
fn equivalence_multiple_child_relations() {
    let p = tiny_params(2, 1, 3);
    check_equivalence(
        &p,
        &[
            RetrieveQuery {
                lo: 0,
                hi: 50,
                attr: RetAttr::Ret1,
            },
            RetrieveQuery {
                lo: 290,
                hi: 299,
                attr: RetAttr::Ret2,
            },
        ],
    );
}

#[test]
fn equivalence_single_object_query() {
    // NumTop = 1 exercises the iterative-substitution BFS plan and the
    // DFSCACHE miss/insert path on a single unit.
    let p = tiny_params(5, 1, 1);
    let generated = generate(&p);
    for lo in [0u64, 150, 299] {
        let q = RetrieveQuery {
            lo,
            hi: lo,
            attr: RetAttr::Ret1,
        };
        let reference = sorted_values(&p, &generated, Strategy::Dfs, &q);
        for s in EQUIVALENT {
            assert_eq!(
                sorted_values(&p, &generated, s, &q),
                reference,
                "{s} at lo={lo}"
            );
        }
    }
}

#[test]
fn equivalence_under_forced_join_plans() {
    // BFS must return the same answer whichever join plan the optimizer
    // picks.
    let p = tiny_params(5, 1, 1);
    let generated = generate(&p);
    let q = RetrieveQuery {
        lo: 20,
        hi: 120,
        attr: RetAttr::Ret1,
    };
    let mut outs = Vec::new();
    for join in [
        complexobj::JoinChoice::Auto,
        complexobj::JoinChoice::ForceMerge,
        complexobj::JoinChoice::ForceIterative,
    ] {
        let db = build_for_strategy(&p, &generated, Strategy::Bfs).unwrap();
        let opts = ExecOptions {
            join,
            ..ExecOptions::default()
        };
        let mut v = execute_retrieve(&db, Strategy::Bfs, &q, &opts)
            .unwrap()
            .values;
        v.sort_unstable();
        outs.push(v);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[0], outs[2]);
}

#[test]
fn repeated_queries_stay_equivalent_as_cache_warms() {
    // DFSCACHE's second run answers from the cache; the answer must not
    // change.
    let p = tiny_params(5, 1, 1);
    let generated = generate(&p);
    let db = build_for_strategy(&p, &generated, Strategy::DfsCache).unwrap();
    let opts = ExecOptions::default();
    let q = RetrieveQuery {
        lo: 30,
        hi: 60,
        attr: RetAttr::Ret2,
    };
    let mut first = execute_retrieve(&db, Strategy::DfsCache, &q, &opts)
        .unwrap()
        .values;
    let mut second = execute_retrieve(&db, Strategy::DfsCache, &q, &opts)
        .unwrap()
        .values;
    first.sort_unstable();
    second.sort_unstable();
    assert_eq!(first, second);
    let counters = db.cache_mut().unwrap().counters();
    assert!(counters.hits > 0, "second run must hit the cache");
}
