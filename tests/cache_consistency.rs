//! Cross-crate integration: the unit-value cache never serves stale data.
//!
//! The paper's I-lock scheme (Sec. 3.2) exists precisely so that "updates
//! will [not] invalidate the units in the cache" silently. These tests
//! interleave updates with retrieves and compare every cached strategy's
//! answers against an uncached DFS baseline replaying the same history.

use complexobj::strategies::execute_retrieve;
use complexobj::{apply_update, ExecOptions, Query, RetAttr, RetrieveQuery, Strategy};
use cor_workload::{build_for_strategy, generate, generate_sequence, Params};

fn params(pr_update: f64) -> Params {
    Params {
        parent_card: 240,
        use_factor: 4,
        size_cache: 20,
        buffer_pages: 16,
        sequence_len: 60,
        num_top: 12,
        pr_update,
        update_batch: 6,
        ..Params::paper_default()
    }
}

/// Replay one mixed sequence on a cached database and an uncached
/// baseline, checking every retrieve agrees.
fn replay_and_compare(strategy: Strategy, pr_update: f64, smart_threshold: u64) {
    let p = params(pr_update);
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    assert!(
        sequence.iter().any(|q| matches!(q, Query::Update(_))),
        "sequence must contain updates for this test to bite"
    );

    let cached_db = build_for_strategy(&p, &generated, strategy).expect("cached db");
    let baseline_db = build_for_strategy(&p, &generated, Strategy::Dfs).expect("baseline db");
    let opts = ExecOptions {
        smart_threshold,
        ..ExecOptions::default()
    };

    // When testing SMART's breadth-first arm (threshold below NumTop), the
    // arm itself never fills the cache — warm it through the DFSCACHE arm
    // first so the replay actually reads cached units.
    if strategy == Strategy::Smart && smart_threshold < p.num_top {
        let warm = ExecOptions {
            smart_threshold: p.parent_card,
            ..ExecOptions::default()
        };
        let q = RetrieveQuery {
            lo: 0,
            hi: p.parent_card - 1,
            attr: RetAttr::Ret1,
        };
        execute_retrieve(&cached_db, Strategy::Smart, &q, &warm).expect("cache warm-up");
    }

    for (i, q) in sequence.iter().enumerate() {
        match q {
            Query::Retrieve(r) => {
                let mut got = execute_retrieve(&cached_db, strategy, r, &opts)
                    .expect("cached run")
                    .values;
                let mut expect = execute_retrieve(&baseline_db, Strategy::Dfs, r, &opts)
                    .expect("baseline")
                    .values;
                got.sort_unstable();
                expect.sort_unstable();
                assert_eq!(
                    got, expect,
                    "{strategy} stale/incorrect at query {i}: {r:?}"
                );
            }
            Query::Update(u) => {
                apply_update(&cached_db, u, true).expect("cached update");
                apply_update(&baseline_db, u, false).expect("baseline update");
            }
        }
    }

    let counters = cached_db.cache_mut().expect("cache present").counters();
    assert!(counters.insertions > 0, "cache was exercised");
    assert!(
        counters.invalidations > 0,
        "updates of cached subobjects must invalidate units (got {counters:?})"
    );
}

#[test]
fn dfs_cache_is_never_stale_light_updates() {
    replay_and_compare(Strategy::DfsCache, 0.2, 300);
}

#[test]
fn dfs_cache_is_never_stale_heavy_updates() {
    replay_and_compare(Strategy::DfsCache, 0.6, 300);
}

#[test]
fn smart_low_arm_is_never_stale() {
    // Threshold above NumTop: SMART always runs its DFSCACHE arm.
    replay_and_compare(Strategy::Smart, 0.3, 300);
}

#[test]
fn smart_bfs_arm_is_never_stale() {
    // Threshold below NumTop: SMART always runs its breadth-first arm,
    // reading cached units without maintaining them.
    replay_and_compare(Strategy::Smart, 0.3, 1);
}

#[test]
fn inside_placed_cache_is_never_stale() {
    use complexobj::{CacheConfig, CachePlacement, CorDatabase};
    use cor_workload::make_pool;

    let p = params(0.3);
    let generated = cor_workload::generate(&p);
    let sequence = generate_sequence(&p);

    let inside_db = CorDatabase::build_standard(
        make_pool(&p),
        &generated.spec,
        Some(CacheConfig {
            capacity: p.size_cache,
            placement: CachePlacement::Inside,
            ..CacheConfig::default()
        }),
    )
    .expect("inside db");
    let baseline_db = build_for_strategy(&p, &generated, Strategy::Dfs).expect("baseline");
    let opts = ExecOptions::default();

    for (i, q) in sequence.iter().enumerate() {
        match q {
            Query::Retrieve(r) => {
                let mut got = execute_retrieve(&inside_db, Strategy::DfsCache, r, &opts)
                    .unwrap()
                    .values;
                let mut expect = execute_retrieve(&baseline_db, Strategy::Dfs, r, &opts)
                    .unwrap()
                    .values;
                got.sort_unstable();
                expect.sort_unstable();
                assert_eq!(got, expect, "inside cache stale at query {i}");
            }
            Query::Update(u) => {
                apply_update(&inside_db, u, true).unwrap();
                apply_update(&baseline_db, u, false).unwrap();
            }
        }
    }
    let k = inside_db.cache_counters().expect("counters");
    assert!(
        k.insertions > 0 && k.invalidations > 0,
        "inside cache exercised: {k:?}"
    );
}

#[test]
fn clustered_updates_are_visible() {
    // No cache involved, but updates must land in ClusterRel through the
    // OID index and be returned by subsequent scans.
    let p = params(0.4);
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    let clustered = build_for_strategy(&p, &generated, Strategy::DfsClust).expect("clustered db");
    let baseline = build_for_strategy(&p, &generated, Strategy::Dfs).expect("baseline db");
    let opts = ExecOptions::default();

    for q in &sequence {
        match q {
            Query::Retrieve(r) => {
                let mut got = execute_retrieve(&clustered, Strategy::DfsClust, r, &opts)
                    .unwrap()
                    .values;
                let mut expect = execute_retrieve(&baseline, Strategy::Dfs, r, &opts)
                    .unwrap()
                    .values;
                got.sort_unstable();
                expect.sort_unstable();
                assert_eq!(got, expect, "clustered update lost at {r:?}");
            }
            Query::Update(u) => {
                apply_update(&clustered, u, false).unwrap();
                apply_update(&baseline, u, false).unwrap();
            }
        }
    }
}

#[test]
fn capacity_pressure_does_not_corrupt_answers() {
    // A cache of 3 units thrashes constantly; correctness must survive.
    let mut p = params(0.3);
    p.size_cache = 3;
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    let cached_db = build_for_strategy(&p, &generated, Strategy::DfsCache).unwrap();
    let baseline_db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
    let opts = ExecOptions::default();

    for q in &sequence {
        match q {
            Query::Retrieve(r) => {
                let mut got = execute_retrieve(&cached_db, Strategy::DfsCache, r, &opts)
                    .unwrap()
                    .values;
                let mut expect = execute_retrieve(&baseline_db, Strategy::Dfs, r, &opts)
                    .unwrap()
                    .values;
                got.sort_unstable();
                expect.sort_unstable();
                assert_eq!(got, expect);
            }
            Query::Update(u) => {
                apply_update(&cached_db, u, true).unwrap();
                apply_update(&baseline_db, u, false).unwrap();
            }
        }
    }
    let c = cached_db.cache_mut().unwrap().counters();
    assert!(c.evictions > 0, "tiny cache must evict (got {c:?})");
    assert!(cached_db.cache_mut().unwrap().len() <= 3);
}
