//! The paper's qualitative results as assertions.
//!
//! The figure benches print `[OK]`/`[MISMATCH]` for a human; this test
//! pins the same shape claims in CI at a small scale, so a regression in
//! any strategy's cost model fails the build. Absolute I/O counts are
//! never asserted — only orderings and trends, which is what the
//! reproduction owes the paper.

use complexobj::Strategy;
use cor_workload::{run_point, Params};

fn base() -> Params {
    Params {
        parent_card: 1000,
        size_cache: 100,
        buffer_pages: 16,
        sequence_len: 40,
        ..Params::paper_default()
    }
}

fn cost(p: &Params, s: Strategy) -> f64 {
    run_point(p, s).expect("point runs").avg_retrieve_io()
}

/// Figure 3: DFS beats BFS at NumTop = 1 (temporary formation cost), BFS
/// beats DFS decisively at large NumTop.
#[test]
fn fig3_dfs_bfs_crossover() {
    let lo = Params {
        num_top: 1,
        pr_update: 0.0,
        ..base()
    };
    assert!(
        cost(&lo, Strategy::Dfs) <= cost(&lo, Strategy::Bfs),
        "at NumTop=1 DFS must not lose to BFS"
    );
    let hi = Params {
        num_top: 400,
        pr_update: 0.0,
        ..base()
    };
    let dfs = cost(&hi, Strategy::Dfs);
    let bfs = cost(&hi, Strategy::Bfs);
    assert!(
        dfs > 2.0 * bfs,
        "at NumTop=400 DFS ({dfs}) must lose big to BFS ({bfs})"
    );
}

/// Figure 3: BFSNODUP is never much better than BFS at ShareFactor 5.
#[test]
fn fig3_nodup_is_marginal() {
    for num_top in [10, 100, 500] {
        let p = Params {
            num_top,
            pr_update: 0.0,
            ..base()
        };
        let bfs = cost(&p, Strategy::Bfs);
        let nodup = cost(&p, Strategy::BfsNoDup);
        assert!(
            nodup > 0.5 * bfs && nodup < 1.3 * bfs,
            "NumTop={num_top}: BFSNODUP {nodup} vs BFS {bfs} out of the marginal band"
        );
    }
}

/// Figure 4 / Sec. 5.2: at ShareFactor = 1 clustering is ideal and beats
/// both BFS and DFSCACHE.
#[test]
fn fig4_clustering_ideal_at_sharefactor_one() {
    let p = Params {
        use_factor: 1,
        overlap_factor: 1,
        num_top: 20,
        pr_update: 0.0,
        ..base()
    };
    let clust = cost(&p, Strategy::DfsClust);
    assert!(
        clust < cost(&p, Strategy::Bfs),
        "DFSCLUST must beat BFS at ShareFactor 1"
    );
    assert!(
        clust < cost(&p, Strategy::DfsCache),
        "DFSCLUST must beat DFSCACHE at ShareFactor 1"
    );
}

/// Figure 4 / Sec. 5.2.1: at high sharing and large NumTop, BFS beats
/// clustering.
#[test]
fn fig4_bfs_beats_clustering_under_sharing() {
    let p = Params {
        use_factor: 10,
        overlap_factor: 1,
        num_top: 200,
        pr_update: 0.0,
        ..base()
    };
    assert!(
        cost(&p, Strategy::Bfs) < cost(&p, Strategy::DfsClust),
        "BFS must beat DFSCLUST at ShareFactor 10, NumTop 200"
    );
}

/// Figure 5 trends: DFSCLUST's ParCost rises as ShareFactor falls, its
/// ChildCost falls; BFS's ChildCost falls as ShareFactor rises.
#[test]
fn fig5_cost_breakup_trends() {
    let at = |uf: u32, s: Strategy| {
        let p = Params {
            use_factor: uf,
            num_top: 50,
            pr_update: 0.0,
            ..base()
        };
        let r = run_point(&p, s).expect("runs");
        (r.avg_par_cost(), r.avg_child_cost())
    };
    let (clu_par_1, clu_child_1) = at(1, Strategy::DfsClust);
    let (clu_par_10, clu_child_10) = at(10, Strategy::DfsClust);
    assert!(
        clu_par_1 > clu_par_10,
        "DFSCLUST ParCost must rise as ShareFactor falls"
    );
    assert!(
        clu_child_1 < clu_child_10,
        "DFSCLUST ChildCost must fall as ShareFactor falls"
    );
    let (_, bfs_child_1) = at(1, Strategy::Bfs);
    let (_, bfs_child_10) = at(10, Strategy::Bfs);
    assert!(
        bfs_child_1 > bfs_child_10,
        "BFS ChildCost must fall as ShareFactor rises (eqn 1)"
    );
}

/// Figure 7: realizing ShareFactor 5 through OverlapFactor 5 degrades
/// clustering relative to realizing it through UseFactor 5.
#[test]
fn fig7_overlap_degrades_clustering() {
    let use_based = Params {
        use_factor: 5,
        overlap_factor: 1,
        num_top: 50,
        pr_update: 0.0,
        ..base()
    };
    let overlap_based = Params {
        use_factor: 1,
        overlap_factor: 5,
        num_top: 50,
        pr_update: 0.0,
        ..base()
    };
    let ratio_use = cost(&use_based, Strategy::DfsClust) / cost(&use_based, Strategy::Bfs);
    let ratio_overlap =
        cost(&overlap_based, Strategy::DfsClust) / cost(&overlap_based, Strategy::Bfs);
    assert!(
        ratio_overlap > ratio_use,
        "overlap-realized sharing ({ratio_overlap:.2}) must hurt clustering more \
         than use-realized sharing ({ratio_use:.2})"
    );
}

/// Sec. 5.2.1: high update frequency sinks caching (invalidation +
/// shrunken cache), so BFS beats DFSCACHE there; at zero updates and low
/// NumTop with high sharing, caching wins.
#[test]
fn fig4_update_frequency_flips_caching() {
    let hot = Params {
        use_factor: 10,
        num_top: 20,
        pr_update: 0.8,
        sequence_len: 80,
        ..base()
    };
    let calm = Params {
        use_factor: 10,
        num_top: 20,
        pr_update: 0.0,
        sequence_len: 80,
        ..base()
    };
    let hot_ratio = {
        let c = run_point(&hot, Strategy::DfsCache)
            .unwrap()
            .avg_io_per_query();
        let b = run_point(&hot, Strategy::Bfs).unwrap().avg_io_per_query();
        c / b
    };
    let calm_ratio = {
        let c = run_point(&calm, Strategy::DfsCache)
            .unwrap()
            .avg_io_per_query();
        let b = run_point(&calm, Strategy::Bfs).unwrap().avg_io_per_query();
        c / b
    };
    assert!(
        calm_ratio < hot_ratio,
        "caching must be relatively better without updates (calm {calm_ratio:.2} vs hot {hot_ratio:.2})"
    );
    assert!(
        calm_ratio < 1.0,
        "with high sharing, low NumTop and no updates, DFSCACHE must win"
    );
}

/// Sec. 6.2: NumChildRel barely moves any strategy while it is far below
/// NumTop.
#[test]
fn sec62_numchildrel_is_benign() {
    for s in [Strategy::Dfs, Strategy::Bfs] {
        let one = Params {
            num_child_rels: 1,
            num_top: 40,
            pr_update: 0.0,
            ..base()
        };
        let five = Params {
            num_child_rels: 5,
            num_top: 40,
            pr_update: 0.0,
            ..base()
        };
        let (a, b) = (cost(&one, s), cost(&five, s));
        let ratio = if a > b { a / b } else { b / a };
        assert!(
            ratio < 1.6,
            "{s}: NumChildRel 1 vs 5 changed cost by x{ratio:.2}"
        );
    }
}

/// Sec. 5.3: SMART is never much worse than the better of BFS and
/// DFSCACHE at either extreme of NumTop.
#[test]
fn sec53_smart_tracks_the_best() {
    for num_top in [5u64, 400] {
        let p = Params {
            num_top,
            pr_update: 0.0,
            use_factor: 10,
            ..base()
        };
        let smart = cost(&p, Strategy::Smart);
        let best = cost(&p, Strategy::Bfs).min(cost(&p, Strategy::DfsCache));
        assert!(
            smart <= best * 1.4,
            "NumTop={num_top}: SMART {smart} vs best pure {best}"
        );
    }
}
